//! Property-based equivalence tests for the O(n log n) ranking loss.
//!
//! The merge-sort inversion counter in [`hypertune_core::ranking`] must
//! return exactly the count produced by the quadratic reference
//! implementation on every input — including heavy ties in the
//! predictions, the targets, or both, which is where the sort-based
//! formulation is easiest to get wrong (tied predictions are *skipped*
//! by Eq. 1, not counted half).

use hypertune_core::ranking::{ranking_loss, ranking_loss_naive};
use proptest::prelude::*;

proptest! {
    /// Continuous values: ties are rare, ordering dominates.
    #[test]
    fn matches_naive_on_continuous_values(
        pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 0..80),
    ) {
        let preds: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assert_eq!(ranking_loss(&preds, &ys), ranking_loss_naive(&preds, &ys));
    }

    /// Coarsely quantized values: ties everywhere, in predictions and
    /// targets independently.
    #[test]
    fn matches_naive_under_heavy_ties(
        pairs in proptest::collection::vec((0u8..5, 0u8..5), 0..80),
    ) {
        let preds: Vec<f64> = pairs.iter().map(|p| f64::from(p.0)).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| f64::from(p.1)).collect();
        prop_assert_eq!(ranking_loss(&preds, &ys), ranking_loss_naive(&preds, &ys));
    }

    /// Constant predictions: every pair is pred-tied, so the loss must be
    /// exactly zero no matter what the targets do.
    #[test]
    fn constant_predictions_give_zero_loss(
        ys in proptest::collection::vec(-5.0f64..5.0, 0..60),
        c in -5.0f64..5.0,
    ) {
        let preds = vec![c; ys.len()];
        prop_assert_eq!(ranking_loss(&preds, &ys), 0);
        prop_assert_eq!(ranking_loss_naive(&preds, &ys), 0);
    }

    /// Mixed granularity: quantized predictions against continuous
    /// targets exercises pred-tie blocks with strict target ordering.
    #[test]
    fn matches_naive_with_tied_preds_distinct_ys(
        pairs in proptest::collection::vec((0u8..3, -1.0f64..1.0), 0..60),
    ) {
        let preds: Vec<f64> = pairs.iter().map(|p| f64::from(p.0)).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assert_eq!(ranking_loss(&preds, &ys), ranking_loss_naive(&preds, &ys));
    }
}

#[test]
fn signed_zero_predictions_count_as_tied() {
    // The naive loop compares with `==`, under which -0.0 == 0.0; the
    // sort-based path must agree that such pairs are skipped.
    let preds = [0.0, -0.0, 0.0, -0.0];
    let ys = [1.0, 2.0, 3.0, 4.0];
    assert_eq!(ranking_loss_naive(&preds, &ys), 0);
    assert_eq!(ranking_loss(&preds, &ys), ranking_loss_naive(&preds, &ys));
}

#[test]
fn reversed_ranking_counts_every_pair() {
    let preds = [4.0, 3.0, 2.0, 1.0];
    let ys = [1.0, 2.0, 3.0, 4.0];
    assert_eq!(ranking_loss(&preds, &ys), 6);
    assert_eq!(ranking_loss(&preds, &ys), ranking_loss_naive(&preds, &ys));
}
