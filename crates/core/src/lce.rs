//! Learning-curve extrapolation (the early-stopping alternative of the
//! paper's related work §2: Domhan et al. 2015, Klein et al. 2017).
//!
//! Instead of rank-based halving, extrapolation methods fit parametric
//! curve families to a configuration's partial learning curve
//! `(r_1, y_1), …, (r_j, y_j)` and stop the configuration if the
//! predicted value at the maximum resource is unlikely to beat the
//! incumbent. This module fits three standard families by grid-searched
//! least squares (derivative-free, robust for the 2–5 points a rung
//! ladder produces):
//!
//! | family | form |
//! |---|---|
//! | pow3 | `y(r) = c + a·r^(−α)` |
//! | exp  | `y(r) = c + a·exp(−k·r)` |
//! | log  | `y(r) = c − a·ln(r + 1)⁻¹·(−1)` (log-linear decay) |
//!
//! The best-fitting family (lowest SSE) provides the extrapolation; its
//! residual spread provides a crude uncertainty band.

/// One fitted curve family with its parameters and training error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveFit {
    /// Which family fit best.
    pub family: CurveFamily,
    /// Asymptote `c` (the predicted converged value).
    pub asymptote: f64,
    /// Amplitude `a`.
    pub amplitude: f64,
    /// Rate parameter (`α` for pow3, `k` for exp, unused for log).
    pub rate: f64,
    /// Sum of squared residuals on the observed points.
    pub sse: f64,
}

/// Parametric curve families; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveFamily {
    /// Power-law decay `c + a·r^(−α)`.
    Pow3,
    /// Exponential decay `c + a·exp(−k·r)`.
    Exp,
    /// Logarithmic decay `c + a/ln(r + e)`.
    Log,
}

impl CurveFit {
    /// Predicts the value at resource `r`.
    pub fn predict(&self, r: f64) -> f64 {
        match self.family {
            CurveFamily::Pow3 => self.asymptote + self.amplitude * r.powf(-self.rate),
            CurveFamily::Exp => self.asymptote + self.amplitude * (-self.rate * r).exp(),
            CurveFamily::Log => self.asymptote + self.amplitude / (r + std::f64::consts::E).ln(),
        }
    }

    /// Root-mean-square residual of the fit (crude uncertainty proxy).
    pub fn rmse(&self, n_points: usize) -> f64 {
        (self.sse / n_points.max(1) as f64).sqrt()
    }
}

/// Grid of rate parameters tried for the pow3/exp families.
const RATE_GRID: [f64; 8] = [0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.5, 4.0];

/// Fits all families to the partial curve and returns the best by SSE.
///
/// Returns `None` with fewer than 2 points (no extrapolation signal) or
/// when inputs are degenerate (non-positive resources, non-finite
/// values).
pub fn fit_curve(points: &[(f64, f64)]) -> Option<CurveFit> {
    if points.len() < 2 {
        return None;
    }
    if points
        .iter()
        .any(|&(r, y)| r <= 0.0 || !r.is_finite() || !y.is_finite())
    {
        return None;
    }
    let mut best: Option<CurveFit> = None;
    let mut consider = |fit: CurveFit| {
        if fit.asymptote.is_finite()
            && fit.amplitude.is_finite()
            && best.map(|b| fit.sse < b.sse).unwrap_or(true)
        {
            best = Some(fit);
        }
    };

    // For a fixed rate, both pow3 and exp reduce to linear least squares
    // y = c + a·φ(r) with basis φ; solve the 2×2 normal equations.
    for &rate in &RATE_GRID {
        if let Some((c, a, sse)) = linear_fit(points, |r| r.powf(-rate)) {
            consider(CurveFit {
                family: CurveFamily::Pow3,
                asymptote: c,
                amplitude: a,
                rate,
                sse,
            });
        }
        if let Some((c, a, sse)) = linear_fit(points, |r| (-rate * r).exp()) {
            consider(CurveFit {
                family: CurveFamily::Exp,
                asymptote: c,
                amplitude: a,
                rate,
                sse,
            });
        }
    }
    if let Some((c, a, sse)) = linear_fit(points, |r| 1.0 / (r + std::f64::consts::E).ln()) {
        consider(CurveFit {
            family: CurveFamily::Log,
            asymptote: c,
            amplitude: a,
            rate: 0.0,
            sse,
        });
    }
    best
}

/// Least-squares fit of `y = c + a·φ(r)`; returns `(c, a, sse)`.
fn linear_fit(points: &[(f64, f64)], phi: impl Fn(f64) -> f64) -> Option<(f64, f64, f64)> {
    let n = points.len() as f64;
    let mut s_x = 0.0;
    let mut s_y = 0.0;
    let mut s_xx = 0.0;
    let mut s_xy = 0.0;
    for &(r, y) in points {
        let x = phi(r);
        if !x.is_finite() {
            return None;
        }
        s_x += x;
        s_y += y;
        s_xx += x * x;
        s_xy += x * y;
    }
    let det = n * s_xx - s_x * s_x;
    if det.abs() < 1e-12 {
        return None;
    }
    let a = (n * s_xy - s_x * s_y) / det;
    let c = (s_y - a * s_x) / n;
    let sse = points
        .iter()
        .map(|&(r, y)| {
            let e = y - (c + a * phi(r));
            e * e
        })
        .sum();
    Some((c, a, sse))
}

/// The stop decision of an extrapolation-based scheduler: continue the
/// configuration only if its predicted value at `r_max`, minus a safety
/// band of `band_rmse` × RMSE, could still beat `incumbent`.
pub fn should_continue(points: &[(f64, f64)], r_max: f64, incumbent: f64, band_rmse: f64) -> bool {
    match fit_curve(points) {
        // No reliable fit: keep training (the conservative default).
        None => true,
        Some(fit) => {
            let predicted = fit.predict(r_max);
            let band = band_rmse * fit.rmse(points.len());
            predicted - band <= incumbent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(f: impl Fn(f64) -> f64, rs: &[f64]) -> Vec<(f64, f64)> {
        rs.iter().map(|&r| (r, f(r))).collect()
    }

    #[test]
    fn recovers_power_law_asymptote() {
        let pts = curve(|r| 0.1 + 0.8 * r.powf(-1.0), &[1.0, 3.0, 9.0, 27.0]);
        let fit = fit_curve(&pts).unwrap();
        assert!((fit.asymptote - 0.1).abs() < 0.02, "{fit:?}");
        assert!(fit.sse < 1e-6);
        // Extrapolation approaches the asymptote.
        assert!((fit.predict(1000.0) - 0.1).abs() < 0.02);
    }

    #[test]
    fn recovers_exponential_asymptote() {
        let pts = curve(|r| 0.2 + 0.7 * (-0.5 * r).exp(), &[1.0, 3.0, 9.0, 27.0]);
        let fit = fit_curve(&pts).unwrap();
        assert!((fit.asymptote - 0.2).abs() < 0.05, "{fit:?}");
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_curve(&[(1.0, 0.5)]).is_none());
        assert!(fit_curve(&[]).is_none());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_curve(&[(0.0, 0.5), (1.0, 0.4)]).is_none());
        assert!(fit_curve(&[(1.0, f64::NAN), (2.0, 0.4)]).is_none());
    }

    #[test]
    fn flat_curve_predicts_flat() {
        let pts = curve(|_| 0.3, &[1.0, 3.0, 9.0]);
        let fit = fit_curve(&pts).unwrap();
        assert!((fit.predict(27.0) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn promising_curve_continues() {
        // Fast-improving curve headed below the incumbent.
        let pts = curve(|r| 0.05 + 0.8 * r.powf(-1.5), &[1.0, 3.0, 9.0]);
        assert!(should_continue(&pts, 27.0, 0.2, 1.0));
    }

    #[test]
    fn hopeless_curve_stops() {
        // Plateaued curve far above the incumbent.
        let pts = curve(|r| 0.5 + 0.01 * r.powf(-1.0), &[1.0, 3.0, 9.0]);
        assert!(!should_continue(&pts, 27.0, 0.1, 1.0));
    }

    #[test]
    fn single_point_always_continues() {
        assert!(should_continue(&[(1.0, 0.9)], 27.0, 0.1, 1.0));
    }

    #[test]
    fn noisy_curve_widens_band() {
        // Noisy observations inflate RMSE, making the rule conservative:
        // the same plateau with large noise should continue when the band
        // multiplier is generous.
        let pts = vec![(1.0, 0.5), (3.0, 0.3), (9.0, 0.55), (27.0, 0.35)];
        let stop_tight = should_continue(&pts, 81.0, 0.1, 0.0);
        let stop_wide = should_continue(&pts, 81.0, 0.1, 5.0);
        // Wide band is at least as permissive as no band.
        assert!(stop_wide || !stop_tight);
    }

    #[test]
    fn best_family_selected_by_sse() {
        // Data generated from log decay should not be fit terribly by
        // whatever family wins — SSE bounded.
        let pts = curve(
            |r| 0.2 + 0.5 / (r + std::f64::consts::E).ln(),
            &[1.0, 3.0, 9.0, 27.0],
        );
        let fit = fit_curve(&pts).unwrap();
        assert!(fit.sse < 1e-9, "{fit:?}");
        assert_eq!(fit.family, CurveFamily::Log);
    }
}
