//! The resource allocator: bracket selection by trial-and-error (§4.1).
//!
//! Each Hyperband bracket corresponds to one partial-evaluation design
//! (initial resource `r₁ = η^b`). The selector learns which design best
//! balances precision against cost:
//!
//! - `θ_b` — the probability that level `b`'s partial evaluations best
//!   preserve the full-fidelity ranking (from [`crate::ranking`]);
//! - `c_b = 1/r_b` — the cost coefficient favouring cheap designs;
//! - `w = normalize(c ∘ θ)` — the sampling distribution over brackets.
//!
//! The first `3K` selections are round-robin (the paper's three
//! initialization passes); afterwards brackets are sampled from `w`,
//! falling back to round-robin whenever `θ` is not yet estimable.

use hypertune_telemetry::TelemetryHandle;
use rand::Rng;

use crate::levels::ResourceLevels;

/// Number of round-robin passes over all brackets before sampling from
/// the learned weights.
pub const INIT_ROUND_ROBIN_PASSES: usize = 3;

/// Learns and samples the bracket distribution `w`; see the module docs.
#[derive(Debug, Clone)]
pub struct BracketSelector {
    resources: Vec<f64>,
    weights: Option<Vec<f64>>,
    selections: usize,
    telemetry: TelemetryHandle,
}

impl BracketSelector {
    /// A selector over the brackets of `levels` (one per base level).
    pub fn new(levels: &ResourceLevels) -> Self {
        Self {
            resources: levels.resources().to_vec(),
            weights: None,
            selections: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry handle; the selector publishes its weight
    /// vector as `allocator.w.<b>` gauges and counts θ installs and
    /// selections. The default disabled handle makes all of it free.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// Number of brackets `K`.
    pub fn k(&self) -> usize {
        self.resources.len()
    }

    /// Installs fresh precision estimates `θ` and recomputes
    /// `w = normalize(c ∘ θ)` with `c_b = 1/r_b`.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != K`.
    pub fn update_theta(&mut self, theta: &[f64]) {
        assert_eq!(
            theta.len(),
            self.k(),
            "theta must have one entry per bracket"
        );
        let mut raw: Vec<f64> = theta
            .iter()
            .zip(&self.resources)
            .map(|(&t, &r)| (t.max(0.0)) / r)
            .collect();
        let total: f64 = raw.iter().sum();
        if total > 0.0 && total.is_finite() {
            // Normalize in place; θ refreshes land on the scheduler's hot
            // path and there is no need for a second buffer.
            for w in &mut raw {
                *w /= total;
            }
            self.weights = Some(raw);
        }
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("allocator.theta_updates", 1);
            if let Some(w) = &self.weights {
                for (b, &wb) in w.iter().enumerate() {
                    self.telemetry.gauge_set(&format!("allocator.w.{b}"), wb);
                }
            }
        }
    }

    /// The current sampling distribution `w`, if learned.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// `true` while still in the round-robin initialization phase.
    pub fn in_init_phase(&self) -> bool {
        self.selections < INIT_ROUND_ROBIN_PASSES * self.k()
    }

    /// Selects the bracket for the next partial-evaluation design.
    pub fn select<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let pick = match &self.weights {
            Some(w) if !self.in_init_phase() => sample_categorical(w, rng),
            _ => self.selections % self.k(),
        };
        self.selections += 1;
        self.telemetry.counter_add("allocator.selections", 1);
        pick
    }

    /// Total selections made so far.
    pub fn selections(&self) -> usize {
        self.selections
    }
}

/// Draws an index from an (already normalized) categorical distribution.
fn sample_categorical<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

/// A round-robin stand-in with the same interface, used by the
/// no-bracket-selection ablation and by A-Hyperband.
#[derive(Debug, Clone)]
pub struct RoundRobinSelector {
    k: usize,
    selections: usize,
}

impl RoundRobinSelector {
    /// A selector cycling through the brackets of `levels`.
    pub fn new(levels: &ResourceLevels) -> Self {
        Self {
            k: levels.k(),
            selections: 0,
        }
    }

    /// Selects the next bracket in cyclic order.
    pub fn select(&mut self) -> usize {
        let pick = self.selections % self.k;
        self.selections += 1;
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn selector() -> BracketSelector {
        BracketSelector::new(&ResourceLevels::new(27.0, 3))
    }

    #[test]
    fn init_phase_is_round_robin_three_passes() {
        let mut s = selector();
        let mut rng = StdRng::seed_from_u64(0);
        let picks: Vec<usize> = (0..12).map(|_| s.select(&mut rng)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(!s.in_init_phase());
    }

    #[test]
    fn weights_multiply_theta_by_inverse_resource() {
        let mut s = selector();
        // Equal precision everywhere → cheap brackets dominate via 1/r.
        s.update_theta(&[0.25, 0.25, 0.25, 0.25]);
        let w = s.weights().unwrap();
        // raw = [1/1, 1/3, 1/9, 1/27]·0.25 → normalized.
        let z = 1.0 + 1.0 / 3.0 + 1.0 / 9.0 + 1.0 / 27.0;
        assert!((w[0] - 1.0 / z).abs() < 1e-12);
        assert!((w[3] - (1.0 / 27.0) / z).abs() < 1e-12);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precise_expensive_bracket_can_still_win() {
        let mut s = selector();
        // All precision mass on the full-fidelity bracket.
        s.update_theta(&[0.0, 0.0, 0.0, 1.0]);
        let w = s.weights().unwrap();
        assert_eq!(w, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn sampling_follows_weights_after_init() {
        let mut s = selector();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..12 {
            s.select(&mut rng);
        }
        s.update_theta(&[1.0, 0.0, 0.0, 0.0]);
        for _ in 0..50 {
            assert_eq!(s.select(&mut rng), 0);
        }
    }

    #[test]
    fn without_theta_falls_back_to_round_robin() {
        let mut s = selector();
        let mut rng = StdRng::seed_from_u64(3);
        let picks: Vec<usize> = (0..16).map(|_| s.select(&mut rng)).collect();
        // Even past the init phase, no theta → keep cycling.
        assert_eq!(picks[12..], [0, 1, 2, 3]);
    }

    #[test]
    fn mixed_weights_sample_proportionally() {
        let mut s = selector();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..12 {
            s.select(&mut rng);
        }
        // θ = [0.5, 0.5, 0, 0] → w ∝ [0.5, 0.5/3] = [0.75, 0.25].
        s.update_theta(&[0.5, 0.5, 0.0, 0.0]);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[s.select(&mut rng)] += 1;
        }
        assert_eq!(counts[2] + counts[3], 0);
        let frac0 = counts[0] as f64 / 4000.0;
        assert!((frac0 - 0.75).abs() < 0.05, "frac0 {frac0}");
    }

    #[test]
    fn round_robin_selector_cycles() {
        let mut s = RoundRobinSelector::new(&ResourceLevels::new(27.0, 3));
        let picks: Vec<usize> = (0..6).map(|_| s.select()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn telemetry_publishes_weights_and_counters() {
        let t = hypertune_telemetry::Telemetry::new().build();
        let mut s = selector();
        s.set_telemetry(t.clone());
        let mut rng = StdRng::seed_from_u64(0);
        s.select(&mut rng);
        s.update_theta(&[0.0, 0.0, 0.0, 1.0]);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counter("allocator.selections"), Some(1));
        assert_eq!(snap.counter("allocator.theta_updates"), Some(1));
        assert_eq!(snap.gauge("allocator.w.3"), Some(1.0));
        assert_eq!(snap.gauge("allocator.w.0"), Some(0.0));
    }

    #[test]
    fn degenerate_theta_ignored() {
        let mut s = selector();
        s.update_theta(&[0.0, 0.0, 0.0, 0.0]);
        assert!(s.weights().is_none());
    }
}
