//! The multi-fidelity measurement store (`D_1 … D_K` of §4).
//!
//! Every finished evaluation lands here, grouped by resource level. The
//! store feeds three consumers: the base surrogates (one per level), the
//! ranking-loss computation behind `θ`, and the incumbent/anytime-curve
//! bookkeeping the experiment harness reports.

use hypertune_space::Config;

use crate::levels::ResourceLevels;

/// One finished evaluation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Measurement {
    /// The evaluated configuration.
    pub config: Config,
    /// Resource-level index (0-based; `K − 1` is a complete evaluation).
    pub level: usize,
    /// Training resources actually used (`η^level` units).
    pub resource: f64,
    /// Validation objective (minimized).
    pub value: f64,
    /// Held-out test objective (reported for incumbents only).
    pub test_value: f64,
    /// Virtual cost of the evaluation in seconds.
    pub cost: f64,
    /// Virtual completion time.
    pub finished_at: f64,
}

/// Measurements grouped by resource level, plus incumbent tracking.
#[derive(Debug, Clone)]
pub struct History {
    levels: ResourceLevels,
    groups: Vec<Vec<Measurement>>,
    /// Best (lowest validation value) complete evaluation so far.
    best_full: Option<usize>,
    /// Best measurement at any level so far.
    best_any: Option<(usize, usize)>,
    total_cost: f64,
}

impl History {
    /// An empty store over the given level ladder.
    pub fn new(levels: ResourceLevels) -> Self {
        let k = levels.k();
        Self {
            levels,
            groups: vec![Vec::new(); k],
            best_full: None,
            best_any: None,
            total_cost: 0.0,
        }
    }

    /// The level ladder.
    pub fn levels(&self) -> &ResourceLevels {
        &self.levels
    }

    /// Records a measurement.
    ///
    /// # Panics
    ///
    /// Panics if the measurement's level is out of range.
    pub fn record(&mut self, m: Measurement) {
        assert!(m.level < self.groups.len(), "level out of range");
        self.total_cost += m.cost;
        let level = m.level;
        let idx = self.groups[level].len();
        let value = m.value;
        self.groups[level].push(m);
        if level == self.levels.max_level()
            && self
                .best_full
                .is_none_or(|b| value < self.groups[level][b].value)
        {
            self.best_full = Some(idx);
        }
        if self
            .best_any
            .map(|(l, i)| value < self.groups[l][i].value)
            .unwrap_or(true)
        {
            self.best_any = Some((level, idx));
        }
    }

    /// Measurements at `level` (`D_{level+1}` in paper notation).
    pub fn group(&self, level: usize) -> &[Measurement] {
        &self.groups[level]
    }

    /// Number of measurements at `level`.
    pub fn len_at(&self, level: usize) -> usize {
        self.groups[level].len()
    }

    /// Total number of measurements at all levels.
    pub fn len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of evaluation costs recorded so far.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Best complete evaluation (lowest validation value at level `K−1`).
    pub fn incumbent_full(&self) -> Option<&Measurement> {
        self.best_full
            .map(|i| &self.groups[self.levels.max_level()][i])
    }

    /// Best measurement at any level; falls back gracefully when no
    /// complete evaluation exists yet.
    pub fn incumbent_any(&self) -> Option<&Measurement> {
        self.best_any.map(|(l, i)| &self.groups[l][i])
    }

    /// The incumbent the experiment harness reports: the best complete
    /// evaluation when one exists, otherwise the best at any level.
    pub fn incumbent(&self) -> Option<&Measurement> {
        self.incumbent_full().or_else(|| self.incumbent_any())
    }

    /// Indices (into [`History::group`]) of the `n` best measurements at
    /// `level`, ascending by value. A full sort of the level would be
    /// `O(m log m)` per call on the dispatch hot path; a partial select +
    /// sort of the winning prefix is `O(m + n log n)`.
    pub fn top_indices(&self, level: usize, n: usize) -> Vec<usize> {
        let g = &self.groups[level];
        let mut idx: Vec<usize> = (0..g.len()).collect();
        // Ties break by insertion order, matching what a stable full sort
        // would return — callers depend on this for reproducibility.
        let by_value = |&a: &usize, &b: &usize| {
            g[a].value
                .partial_cmp(&g[b].value)
                .expect("values are finite")
                .then(a.cmp(&b))
        };
        if n < idx.len() {
            idx.select_nth_unstable_by(n, by_value);
            idx.truncate(n);
        }
        idx.sort_by(by_value);
        idx
    }

    /// The `n` best configurations at `level` (ascending value), borrowed
    /// from the store — used to seed local acquisition search without
    /// cloning every `Config` on each call.
    pub fn top_configs_ref(&self, level: usize, n: usize) -> Vec<&Config> {
        self.top_indices(level, n)
            .into_iter()
            .map(|i| &self.groups[level][i].config)
            .collect()
    }

    /// Cloning variant of [`History::top_configs_ref`], for callers that
    /// need owned configurations.
    pub fn top_configs(&self, level: usize, n: usize) -> Vec<Config> {
        self.top_configs_ref(level, n)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Unit-cube design matrix and targets of `level`, ready for
    /// surrogate fitting.
    pub fn training_data(
        &self,
        level: usize,
        space: &hypertune_space::ConfigSpace,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        self.training_data_capped(level, space, usize::MAX)
    }

    /// Like [`History::training_data`], but keeps only the most recent
    /// `cap` measurements — surrogate refits stay `O(cap)` as the run
    /// grows, bounding the per-sample optimization overhead.
    pub fn training_data_capped(
        &self,
        level: usize,
        space: &hypertune_space::ConfigSpace,
        cap: usize,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let g = &self.groups[level];
        let skip = g.len().saturating_sub(cap);
        let n = g.len() - skip;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for m in &g[skip..] {
            xs.push(space.encode(&m.config));
            ys.push(m.value);
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::{ConfigSpace, ParamValue};

    fn levels() -> ResourceLevels {
        ResourceLevels::new(27.0, 3)
    }

    fn m(level: usize, value: f64, t: f64) -> Measurement {
        Measurement {
            config: Config::new(vec![ParamValue::Float(value)]),
            level,
            resource: 3f64.powi(level as i32),
            value,
            test_value: value + 0.01,
            cost: 10.0,
            finished_at: t,
        }
    }

    #[test]
    fn groups_by_level() {
        let mut h = History::new(levels());
        h.record(m(0, 0.5, 1.0));
        h.record(m(0, 0.4, 2.0));
        h.record(m(3, 0.2, 3.0));
        assert_eq!(h.len_at(0), 2);
        assert_eq!(h.len_at(3), 1);
        assert_eq!(h.len(), 3);
        assert_eq!(h.total_cost(), 30.0);
    }

    #[test]
    fn incumbent_prefers_full_fidelity() {
        let mut h = History::new(levels());
        h.record(m(0, 0.1, 1.0)); // lower value but partial
        assert_eq!(h.incumbent().unwrap().value, 0.1);
        h.record(m(3, 0.3, 2.0));
        // Complete evaluation wins even though its value is higher.
        assert_eq!(h.incumbent().unwrap().value, 0.3);
        assert_eq!(h.incumbent_any().unwrap().value, 0.1);
    }

    #[test]
    fn incumbent_full_tracks_minimum() {
        let mut h = History::new(levels());
        h.record(m(3, 0.5, 1.0));
        h.record(m(3, 0.3, 2.0));
        h.record(m(3, 0.4, 3.0));
        assert_eq!(h.incumbent_full().unwrap().value, 0.3);
    }

    #[test]
    fn top_configs_sorted_ascending() {
        let mut h = History::new(levels());
        h.record(m(1, 0.9, 1.0));
        h.record(m(1, 0.1, 2.0));
        h.record(m(1, 0.5, 3.0));
        let top = h.top_configs(1, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].values()[0], ParamValue::Float(0.1));
        assert_eq!(top[1].values()[0], ParamValue::Float(0.5));
        // Requesting more than available returns all.
        assert_eq!(h.top_configs(1, 10).len(), 3);
    }

    #[test]
    fn training_data_encodes_configs() {
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let mut h = History::new(levels());
        h.record(m(2, 0.25, 1.0));
        let (xs, ys) = h.training_data(2, &space);
        assert_eq!(xs, vec![vec![0.25]]);
        assert_eq!(ys, vec![0.25]);
        let (xs0, ys0) = h.training_data(0, &space);
        assert!(xs0.is_empty() && ys0.is_empty());
    }

    #[test]
    fn empty_history() {
        let h = History::new(levels());
        assert!(h.is_empty());
        assert!(h.incumbent().is_none());
        assert!(h.incumbent_full().is_none());
    }
}
