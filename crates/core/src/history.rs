//! The multi-fidelity measurement store (`D_1 … D_K` of §4).
//!
//! Every finished evaluation lands here, grouped by resource level. The
//! store feeds three consumers: the base surrogates (one per level), the
//! ranking-loss computation behind `θ`, and the incumbent/anytime-curve
//! bookkeeping the experiment harness reports.

use std::collections::HashMap;
use std::sync::Mutex;

use hypertune_space::Config;

use crate::levels::ResourceLevels;

/// One finished evaluation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Measurement {
    /// The evaluated configuration.
    pub config: Config,
    /// Resource-level index (0-based; `K − 1` is a complete evaluation).
    pub level: usize,
    /// Training resources actually used (`η^level` units).
    pub resource: f64,
    /// Validation objective (minimized).
    pub value: f64,
    /// Held-out test objective (reported for incumbents only).
    pub test_value: f64,
    /// Virtual cost of the evaluation in seconds.
    pub cost: f64,
    /// Virtual completion time.
    pub finished_at: f64,
}

/// Read-only view of a multi-fidelity measurement store.
///
/// Everything a method, sampler, or θ estimator consumes goes through
/// this trait, so the same code runs against the plain owned [`History`]
/// (the sim runner) and against concurrent snapshot views over shared
/// state (the threaded runner's [`crate::shared::HistoryView`]) without
/// cloning the store. `Sync` is a supertrait because θ refreshes fan
/// level fits out across threads with the history captured by reference.
pub trait HistoryRead: Sync {
    /// The level ladder.
    fn levels(&self) -> &ResourceLevels;

    /// Measurements at `level` (`D_{level+1}` in paper notation).
    fn group(&self, level: usize) -> &[Measurement];

    /// Sum of evaluation costs recorded so far.
    fn total_cost(&self) -> f64;

    /// Best complete evaluation (lowest validation value at level `K−1`).
    fn incumbent_full(&self) -> Option<&Measurement>;

    /// Best measurement at any level; falls back gracefully when no
    /// complete evaluation exists yet.
    fn incumbent_any(&self) -> Option<&Measurement>;

    /// Number of measurements at `level`.
    fn len_at(&self, level: usize) -> usize {
        self.group(level).len()
    }

    /// Total number of measurements at all levels.
    fn len(&self) -> usize {
        (0..self.levels().k()).map(|l| self.len_at(l)).sum()
    }

    /// `true` when nothing has been recorded.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The incumbent the experiment harness reports: the best complete
    /// evaluation when one exists, otherwise the best at any level.
    fn incumbent(&self) -> Option<&Measurement> {
        self.incumbent_full().or_else(|| self.incumbent_any())
    }

    /// Indices (into [`HistoryRead::group`]) of the `n` best measurements
    /// at `level`, ascending by value. Implementations may cache; the
    /// result must equal [`top_indices_uncached`] on the same group.
    fn top_indices(&self, level: usize, n: usize) -> Vec<usize> {
        top_indices_uncached(self.group(level), n)
    }

    /// The `n` best configurations at `level` (ascending value), borrowed
    /// from the store — used to seed local acquisition search without
    /// cloning every `Config` on each call.
    fn top_configs_ref(&self, level: usize, n: usize) -> Vec<&Config> {
        let g = self.group(level);
        self.top_indices(level, n)
            .into_iter()
            .map(|i| &g[i].config)
            .collect()
    }

    /// Cloning variant of [`HistoryRead::top_configs_ref`], for callers
    /// that need owned configurations.
    fn top_configs(&self, level: usize, n: usize) -> Vec<Config> {
        self.top_configs_ref(level, n)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Unit-cube design matrix and targets of `level`, ready for
    /// surrogate fitting.
    fn training_data(
        &self,
        level: usize,
        space: &hypertune_space::ConfigSpace,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        self.training_data_capped(level, space, usize::MAX)
    }

    /// Like [`HistoryRead::training_data`], but keeps only the most
    /// recent `cap` measurements — surrogate refits stay `O(cap)` as the
    /// run grows, bounding the per-sample optimization overhead.
    fn training_data_capped(
        &self,
        level: usize,
        space: &hypertune_space::ConfigSpace,
        cap: usize,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let g = self.group(level);
        let skip = g.len().saturating_sub(cap);
        let n = g.len() - skip;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for m in &g[skip..] {
            xs.push(space.encode(&m.config));
            ys.push(m.value);
        }
        (xs, ys)
    }
}

/// Uncached top-`n` selection over one level's measurements, ascending by
/// value with ties broken by insertion order (what a stable full sort
/// returns — callers depend on this for reproducibility). A full sort
/// would be `O(m log m)` per call on the dispatch hot path; partial
/// select + sort of the winning prefix is `O(m + n log n)`.
pub fn top_indices_uncached(g: &[Measurement], n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..g.len()).collect();
    let by_value = |&a: &usize, &b: &usize| {
        g[a].value
            .partial_cmp(&g[b].value)
            .expect("values are finite")
            .then(a.cmp(&b))
    };
    if n < idx.len() {
        idx.select_nth_unstable_by(n, by_value);
        idx.truncate(n);
    }
    idx.sort_by(by_value);
    idx
}

/// Memoized top-k selections: `(level, n) → (len_at(level) when
/// computed, indices)`. The group length doubles as the invalidation
/// tag since groups are append-only.
type TopCache = Mutex<HashMap<(usize, usize), (usize, Vec<usize>)>>;

/// Measurements grouped by resource level, plus incumbent tracking.
#[derive(Debug)]
pub struct History {
    levels: ResourceLevels,
    groups: Vec<Vec<Measurement>>,
    /// Best (lowest validation value) complete evaluation so far.
    best_full: Option<usize>,
    /// Best measurement at any level so far.
    best_any: Option<(usize, usize)>,
    total_cost: f64,
    /// The suggest hot path asks for the same top-k between appends.
    top_cache: TopCache,
}

impl Clone for History {
    fn clone(&self) -> Self {
        Self {
            levels: self.levels.clone(),
            groups: self.groups.clone(),
            best_full: self.best_full,
            best_any: self.best_any,
            total_cost: self.total_cost,
            // The cache is derived state; a clone starts cold.
            top_cache: Mutex::new(HashMap::new()),
        }
    }
}

impl History {
    /// An empty store over the given level ladder.
    pub fn new(levels: ResourceLevels) -> Self {
        let k = levels.k();
        Self {
            levels,
            groups: vec![Vec::new(); k],
            best_full: None,
            best_any: None,
            total_cost: 0.0,
            top_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The level ladder.
    pub fn levels(&self) -> &ResourceLevels {
        &self.levels
    }

    /// Records a measurement.
    ///
    /// # Panics
    ///
    /// Panics if the measurement's level is out of range.
    pub fn record(&mut self, m: Measurement) {
        assert!(m.level < self.groups.len(), "level out of range");
        self.total_cost += m.cost;
        let level = m.level;
        // Invalidate cached top-k selections for the touched level. The
        // length tag would catch staleness on lookup too; dropping the
        // entries keeps the cache from holding dead index vectors.
        self.top_cache
            .get_mut()
            .expect("cache lock poisoned")
            .retain(|&(l, _), _| l != level);
        let idx = self.groups[level].len();
        let value = m.value;
        self.groups[level].push(m);
        if level == self.levels.max_level()
            && self
                .best_full
                .is_none_or(|b| value < self.groups[level][b].value)
        {
            self.best_full = Some(idx);
        }
        if self
            .best_any
            .map(|(l, i)| value < self.groups[l][i].value)
            .unwrap_or(true)
        {
            self.best_any = Some((level, idx));
        }
    }

    /// Measurements at `level` (`D_{level+1}` in paper notation).
    pub fn group(&self, level: usize) -> &[Measurement] {
        &self.groups[level]
    }

    /// Number of measurements at `level`.
    pub fn len_at(&self, level: usize) -> usize {
        self.groups[level].len()
    }

    /// Total number of measurements at all levels.
    pub fn len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of evaluation costs recorded so far.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Best complete evaluation (lowest validation value at level `K−1`).
    pub fn incumbent_full(&self) -> Option<&Measurement> {
        self.best_full
            .map(|i| &self.groups[self.levels.max_level()][i])
    }

    /// Best measurement at any level; falls back gracefully when no
    /// complete evaluation exists yet.
    pub fn incumbent_any(&self) -> Option<&Measurement> {
        self.best_any.map(|(l, i)| &self.groups[l][i])
    }

    /// The incumbent the experiment harness reports: the best complete
    /// evaluation when one exists, otherwise the best at any level.
    pub fn incumbent(&self) -> Option<&Measurement> {
        self.incumbent_full().or_else(|| self.incumbent_any())
    }

    /// Indices (into [`History::group`]) of the `n` best measurements at
    /// `level`, ascending by value (see [`top_indices_uncached`] for the
    /// selection itself). Results are memoized per `(level, n)` until the
    /// next append to that level, so the suggest hot path — which asks
    /// for the same top-k every sample between completions — pays the
    /// `O(m)` select once per append instead of once per call.
    pub fn top_indices(&self, level: usize, n: usize) -> Vec<usize> {
        let g = &self.groups[level];
        let mut cache = self.top_cache.lock().expect("cache lock poisoned");
        if let Some((len, idx)) = cache.get(&(level, n)) {
            if *len == g.len() {
                return idx.clone();
            }
        }
        let idx = top_indices_uncached(g, n);
        cache.insert((level, n), (g.len(), idx.clone()));
        idx
    }

    /// The `n` best configurations at `level` (ascending value), borrowed
    /// from the store — used to seed local acquisition search without
    /// cloning every `Config` on each call.
    pub fn top_configs_ref(&self, level: usize, n: usize) -> Vec<&Config> {
        self.top_indices(level, n)
            .into_iter()
            .map(|i| &self.groups[level][i].config)
            .collect()
    }

    /// Cloning variant of [`History::top_configs_ref`], for callers that
    /// need owned configurations.
    pub fn top_configs(&self, level: usize, n: usize) -> Vec<Config> {
        self.top_configs_ref(level, n)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Unit-cube design matrix and targets of `level`, ready for
    /// surrogate fitting.
    pub fn training_data(
        &self,
        level: usize,
        space: &hypertune_space::ConfigSpace,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        self.training_data_capped(level, space, usize::MAX)
    }

    /// Like [`History::training_data`], but keeps only the most recent
    /// `cap` measurements — surrogate refits stay `O(cap)` as the run
    /// grows, bounding the per-sample optimization overhead.
    pub fn training_data_capped(
        &self,
        level: usize,
        space: &hypertune_space::ConfigSpace,
        cap: usize,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let g = &self.groups[level];
        let skip = g.len().saturating_sub(cap);
        let n = g.len() - skip;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for m in &g[skip..] {
            xs.push(space.encode(&m.config));
            ys.push(m.value);
        }
        (xs, ys)
    }
}

impl HistoryRead for History {
    fn levels(&self) -> &ResourceLevels {
        History::levels(self)
    }

    fn group(&self, level: usize) -> &[Measurement] {
        History::group(self, level)
    }

    fn total_cost(&self) -> f64 {
        History::total_cost(self)
    }

    fn incumbent_full(&self) -> Option<&Measurement> {
        History::incumbent_full(self)
    }

    fn incumbent_any(&self) -> Option<&Measurement> {
        History::incumbent_any(self)
    }

    fn len_at(&self, level: usize) -> usize {
        History::len_at(self, level)
    }

    fn len(&self) -> usize {
        History::len(self)
    }

    // Route the trait path through the memoizing inherent method.
    fn top_indices(&self, level: usize, n: usize) -> Vec<usize> {
        History::top_indices(self, level, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::{ConfigSpace, ParamValue};

    fn levels() -> ResourceLevels {
        ResourceLevels::new(27.0, 3)
    }

    fn m(level: usize, value: f64, t: f64) -> Measurement {
        Measurement {
            config: Config::new(vec![ParamValue::Float(value)]),
            level,
            resource: 3f64.powi(level as i32),
            value,
            test_value: value + 0.01,
            cost: 10.0,
            finished_at: t,
        }
    }

    #[test]
    fn groups_by_level() {
        let mut h = History::new(levels());
        h.record(m(0, 0.5, 1.0));
        h.record(m(0, 0.4, 2.0));
        h.record(m(3, 0.2, 3.0));
        assert_eq!(h.len_at(0), 2);
        assert_eq!(h.len_at(3), 1);
        assert_eq!(h.len(), 3);
        assert_eq!(h.total_cost(), 30.0);
    }

    #[test]
    fn incumbent_prefers_full_fidelity() {
        let mut h = History::new(levels());
        h.record(m(0, 0.1, 1.0)); // lower value but partial
        assert_eq!(h.incumbent().unwrap().value, 0.1);
        h.record(m(3, 0.3, 2.0));
        // Complete evaluation wins even though its value is higher.
        assert_eq!(h.incumbent().unwrap().value, 0.3);
        assert_eq!(h.incumbent_any().unwrap().value, 0.1);
    }

    #[test]
    fn incumbent_full_tracks_minimum() {
        let mut h = History::new(levels());
        h.record(m(3, 0.5, 1.0));
        h.record(m(3, 0.3, 2.0));
        h.record(m(3, 0.4, 3.0));
        assert_eq!(h.incumbent_full().unwrap().value, 0.3);
    }

    #[test]
    fn top_configs_sorted_ascending() {
        let mut h = History::new(levels());
        h.record(m(1, 0.9, 1.0));
        h.record(m(1, 0.1, 2.0));
        h.record(m(1, 0.5, 3.0));
        let top = h.top_configs(1, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].values()[0], ParamValue::Float(0.1));
        assert_eq!(top[1].values()[0], ParamValue::Float(0.5));
        // Requesting more than available returns all.
        assert_eq!(h.top_configs(1, 10).len(), 3);
    }

    #[test]
    fn cached_top_indices_matches_uncached_across_appends() {
        let mut h = History::new(levels());
        let values = [0.9, 0.1, 0.5, 0.1, 0.3, 0.7, 0.0, 0.2];
        for (i, &v) in values.iter().enumerate() {
            h.record(m(1, v, i as f64));
            for n in [0usize, 1, 2, 3, 100] {
                // First call populates the cache, second must hit it;
                // both agree with the from-scratch selection.
                let expect = top_indices_uncached(h.group(1), n);
                assert_eq!(h.top_indices(1, n), expect);
                assert_eq!(h.top_indices(1, n), expect);
            }
        }
        // Appends to *other* levels leave level-1 cache entries valid.
        h.record(m(2, 0.4, 99.0));
        assert_eq!(h.top_indices(1, 3), top_indices_uncached(h.group(1), 3));
    }

    #[test]
    fn history_read_trait_object_matches_inherent() {
        let mut h = History::new(levels());
        h.record(m(0, 0.5, 1.0));
        h.record(m(3, 0.2, 2.0));
        let dynref: &dyn HistoryRead = &h;
        assert_eq!(dynref.len(), 2);
        assert_eq!(dynref.len_at(0), 1);
        assert!(!dynref.is_empty());
        assert_eq!(dynref.total_cost(), 20.0);
        assert_eq!(dynref.incumbent().unwrap().value, 0.2);
        assert_eq!(dynref.top_configs(0, 5), h.top_configs(0, 5));
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        assert_eq!(dynref.training_data(0, &space), h.training_data(0, &space));
    }

    #[test]
    fn training_data_encodes_configs() {
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let mut h = History::new(levels());
        h.record(m(2, 0.25, 1.0));
        let (xs, ys) = h.training_data(2, &space);
        assert_eq!(xs, vec![vec![0.25]]);
        assert_eq!(ys, vec![0.25]);
        let (xs0, ys0) = h.training_data(0, &space);
        assert!(xs0.is_empty() && ys0.is_empty());
    }

    #[test]
    fn empty_history() {
        let h = History::new(levels());
        assert!(h.is_empty());
        assert!(h.incumbent().is_none());
        assert!(h.incumbent_full().is_none());
    }
}
