use hypertune_space::Config;

use crate::levels::ResourceLevels;

/// One synchronous successive-halving procedure (one column of Table 1).
///
/// Life cycle:
///
/// 1. the owner feeds `n₁` fresh configurations via
///    [`SyncBracket::add_config`] (as many as [`SyncBracket::needs_configs`]
///    asks for);
/// 2. [`SyncBracket::next_job`] hands out queued evaluations of the
///    current rung;
/// 3. every completion goes to [`SyncBracket::on_result`]; when the rung
///    is complete, the top `1/η` configurations are promoted into the next
///    rung's queue (the synchronization barrier);
/// 4. after the final rung completes, [`SyncBracket::is_done`] turns true.
#[derive(Debug, Clone)]
pub struct SyncBracket {
    base_level: usize,
    /// `(n_j, r_j)` per rung, from [`ResourceLevels::bracket_schedule`].
    schedule: Vec<(usize, f64)>,
    /// Current rung index (0-based within the bracket).
    rung: usize,
    /// Configs waiting to be dispatched at the current rung.
    queue: Vec<Config>,
    /// Jobs dispatched but not yet returned.
    outstanding: usize,
    /// Completed `(config, value)` pairs of the current rung.
    results: Vec<(Config, f64)>,
    /// Fresh configs still to be supplied for rung 0.
    awaiting_seed: usize,
    done: bool,
}

impl SyncBracket {
    /// Creates the bracket whose first rung runs at `base_level`.
    pub fn new(levels: &ResourceLevels, base_level: usize) -> Self {
        let schedule = levels.bracket_schedule(base_level);
        let n1 = schedule[0].0;
        Self {
            base_level,
            schedule,
            rung: 0,
            queue: Vec::with_capacity(n1),
            outstanding: 0,
            results: Vec::with_capacity(n1),
            awaiting_seed: n1,
            done: false,
        }
    }

    /// The bracket's base (first-rung) level.
    pub fn base_level(&self) -> usize {
        self.base_level
    }

    /// Absolute resource level of the current rung.
    pub fn current_level(&self) -> usize {
        self.base_level + self.rung
    }

    /// How many fresh configurations the bracket still needs (rung 0
    /// only); the owner samples these from its optimizer.
    pub fn needs_configs(&self) -> usize {
        self.awaiting_seed
    }

    /// Supplies one fresh configuration for rung 0.
    ///
    /// # Panics
    ///
    /// Panics if the bracket is not waiting for seeds.
    pub fn add_config(&mut self, config: Config) {
        assert!(self.awaiting_seed > 0, "bracket is not accepting seeds");
        self.awaiting_seed -= 1;
        self.queue.push(config);
    }

    /// Pops the next queued evaluation: `(config, absolute level)`.
    /// Returns `None` at the barrier (queue empty, results outstanding).
    pub fn next_job(&mut self) -> Option<(Config, usize)> {
        let config = self.queue.pop()?;
        self.outstanding += 1;
        Some((config, self.current_level()))
    }

    /// Records a completed evaluation of the current rung. When the rung
    /// is complete, promotes the top `1/η` into the next rung.
    pub fn on_result(&mut self, config: Config, value: f64) {
        debug_assert!(self.outstanding > 0, "result without outstanding job");
        self.outstanding -= 1;
        self.results.push((config, value));
        let rung_size = self.schedule[self.rung].0;
        if self.results.len() < rung_size {
            return;
        }
        debug_assert!(self.queue.is_empty() && self.outstanding == 0);
        if self.rung + 1 >= self.schedule.len() {
            self.done = true;
            return;
        }
        // Promote the best n_{j+1} configurations (ascending value).
        let n_next = self.schedule[self.rung + 1].0;
        self.results
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("values are finite"));
        // Queue is popped from the back; push in reverse so the best
        // config is evaluated first.
        let promoted: Vec<Config> = self
            .results
            .drain(..)
            .take(n_next)
            .map(|(c, _)| c)
            .collect();
        self.queue.extend(promoted.into_iter().rev());
        self.rung += 1;
    }

    /// `true` once the final rung has fully completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Jobs dispatched but not yet returned.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::ParamValue;

    fn cfg(v: f64) -> Config {
        Config::new(vec![ParamValue::Float(v)])
    }

    fn levels() -> ResourceLevels {
        ResourceLevels::new(27.0, 3)
    }

    /// Drives a full bracket where a config's value equals its id; checks
    /// the SHA promotion pattern of Figure 2.
    #[test]
    fn full_sha_iteration_bracket0() {
        let l = levels();
        let mut b = SyncBracket::new(&l, 0);
        assert_eq!(b.needs_configs(), 27);
        for i in 0..27 {
            b.add_config(cfg(i as f64 / 27.0));
        }
        assert_eq!(b.needs_configs(), 0);

        // Rung 0: 27 configs at level 0.
        let mut jobs = Vec::new();
        while let Some((c, lvl)) = b.next_job() {
            assert_eq!(lvl, 0);
            jobs.push(c);
        }
        assert_eq!(jobs.len(), 27);
        for c in jobs {
            let v = c.values()[0].as_f64().unwrap();
            b.on_result(c, v);
        }

        // Rung 1: top 9 (lowest ids) at level 1.
        let mut rung1 = Vec::new();
        while let Some((c, lvl)) = b.next_job() {
            assert_eq!(lvl, 1);
            rung1.push(c);
        }
        assert_eq!(rung1.len(), 9);
        // The best config is dispatched first.
        assert_eq!(rung1[0].values()[0].as_f64().unwrap(), 0.0);
        for c in &rung1 {
            let v = c.values()[0].as_f64().unwrap();
            assert!(v < 9.0 / 27.0, "only top third promoted, got {v}");
        }
        for c in rung1 {
            let v = c.values()[0].as_f64().unwrap();
            b.on_result(c, v);
        }

        // Rung 2: top 3; rung 3: top 1.
        for (expect_n, expect_lvl) in [(3usize, 2usize), (1, 3)] {
            let mut rung = Vec::new();
            while let Some((c, lvl)) = b.next_job() {
                assert_eq!(lvl, expect_lvl);
                rung.push(c);
            }
            assert_eq!(rung.len(), expect_n);
            for c in rung {
                let v = c.values()[0].as_f64().unwrap();
                b.on_result(c, v);
            }
        }
        assert!(b.is_done());
        // The surviving config was the global best.
    }

    #[test]
    fn barrier_blocks_until_rung_complete() {
        let l = levels();
        let mut b = SyncBracket::new(&l, 2); // schedule: (6, 9.0), (2, 27.0)
        for i in 0..6 {
            b.add_config(cfg(i as f64));
        }
        let mut dispatched = Vec::new();
        for _ in 0..6 {
            dispatched.push(b.next_job().unwrap().0);
        }
        // Queue drained; barrier until all six return.
        assert!(b.next_job().is_none());
        for c in dispatched.drain(..5) {
            let v = c.values()[0].as_f64().unwrap();
            b.on_result(c, v);
        }
        // Five of six back: still blocked (straggler sensitivity).
        assert!(b.next_job().is_none());
        let last = dispatched.pop().unwrap();
        let v = last.values()[0].as_f64().unwrap();
        b.on_result(last, v);
        // Now rung 1 is ready with the top 2.
        let (c, lvl) = b.next_job().unwrap();
        assert_eq!(lvl, 3);
        assert!(c.values()[0].as_f64().unwrap() < 2.0);
    }

    #[test]
    fn single_rung_bracket() {
        let l = levels();
        let mut b = SyncBracket::new(&l, 3); // (4, 27.0) only
        assert_eq!(b.needs_configs(), 4);
        for i in 0..4 {
            b.add_config(cfg(i as f64));
        }
        for _ in 0..4 {
            let (c, lvl) = b.next_job().unwrap();
            assert_eq!(lvl, 3);
            let v = c.values()[0].as_f64().unwrap();
            b.on_result(c, v);
        }
        assert!(b.is_done());
    }

    #[test]
    #[should_panic(expected = "not accepting")]
    fn overfeeding_panics() {
        let l = levels();
        let mut b = SyncBracket::new(&l, 3);
        for i in 0..5 {
            b.add_config(cfg(i as f64));
        }
    }

    #[test]
    fn outstanding_tracked() {
        let l = levels();
        let mut b = SyncBracket::new(&l, 3);
        for i in 0..4 {
            b.add_config(cfg(i as f64));
        }
        let j1 = b.next_job().unwrap();
        let _j2 = b.next_job().unwrap();
        assert_eq!(b.outstanding(), 2);
        b.on_result(j1.0, 0.0);
        assert_eq!(b.outstanding(), 1);
    }
}
