use std::collections::HashSet;

use hypertune_space::Config;

use crate::levels::ResourceLevels;

/// An asynchronous successive-halving bracket: ASHA, or D-ASHA when the
/// delay condition is enabled (Algorithm 1 of the paper).
///
/// Unlike [`crate::bracket::SyncBracket`] there is no barrier: whenever a
/// worker frees up, the owner first asks [`AsyncBracket::try_promote`];
/// if no promotion is possible it samples a fresh configuration and
/// registers it at the base rung with [`AsyncBracket::add_base_job`]
/// (lines 13–14 of Algorithm 1).
///
/// **ASHA rule** (delay off): promote any configuration in the top
/// `⌊|D_k|/η⌋` of its rung that has not been promoted yet — eager, but
/// incurs inaccurate promotions early when `|D_k|` is small.
///
/// **D-ASHA rule** (delay on): additionally require
/// `|D_k| / (|D_{k+1}| + 1) ≥ η` (lines 9–10), i.e. the current rung must
/// hold η measurements for every one the next rung would have after the
/// promotion. In-flight promotions count towards `|D_{k+1}|` so several
/// idle workers cannot rush past the threshold together.
#[derive(Debug, Clone)]
pub struct AsyncBracket {
    base_level: usize,
    eta: usize,
    delay: bool,
    rungs: Vec<Rung>,
}

#[derive(Debug, Clone, Default)]
struct Rung {
    /// Completed `(config, value)` measurements of this rung.
    results: Vec<(Config, f64)>,
    /// Configurations already promoted out of this rung.
    promoted: HashSet<Config>,
    /// Jobs dispatched to this rung that have not yet returned.
    outstanding: usize,
}

impl AsyncBracket {
    /// Creates the bracket whose lowest rung runs at `base_level`; it has
    /// `K − base_level` rungs up to the complete evaluation.
    pub fn new(levels: &ResourceLevels, base_level: usize, delay: bool) -> Self {
        assert!(base_level < levels.k());
        Self {
            base_level,
            eta: levels.eta(),
            delay,
            rungs: vec![Rung::default(); levels.k() - base_level],
        }
    }

    /// The bracket's base level.
    pub fn base_level(&self) -> usize {
        self.base_level
    }

    /// Whether the delay condition (D-ASHA) is active.
    pub fn is_delayed(&self) -> bool {
        self.delay
    }

    /// Completed measurements at absolute `level`.
    pub fn rung_len(&self, level: usize) -> usize {
        self.rungs[level - self.base_level].results.len()
    }

    /// Scans rungs from second-highest down to base (the `for k = …` loop
    /// of Algorithm 1) and returns a promotion `(config, absolute level)`
    /// if one is admissible. The promoted config is immediately counted
    /// as outstanding at its new rung.
    pub fn try_promote(&mut self) -> Option<(Config, usize)> {
        self.try_promote_inner(None)
    }

    /// Exactly [`AsyncBracket::try_promote`], but additionally pushes the
    /// absolute level of every rung where the D-ASHA delay condition
    /// blocked an otherwise admissible candidate into `delayed` — the
    /// signal behind [`hypertune_telemetry::Event::PromotionDelayed`].
    /// The promotion decision itself is identical to `try_promote`; the
    /// extra candidate checks only run on delay-blocked rungs.
    pub fn try_promote_traced(&mut self, delayed: &mut Vec<usize>) -> Option<(Config, usize)> {
        self.try_promote_inner(Some(delayed))
    }

    fn try_promote_inner(
        &mut self,
        mut delayed: Option<&mut Vec<usize>>,
    ) -> Option<(Config, usize)> {
        for j in (0..self.rungs.len().saturating_sub(1)).rev() {
            // Delay condition (Cond. 2): |D_k| / (|D_{k+1}| + 1) >= eta,
            // with in-flight next-rung jobs counted in |D_{k+1}|.
            if self.delay {
                let d_k = self.rungs[j].results.len();
                let d_next = self.rungs[j + 1].results.len() + self.rungs[j + 1].outstanding;
                if d_k < self.eta * (d_next + 1) {
                    if let Some(d) = delayed.as_deref_mut() {
                        if self.candidate(j).is_some() {
                            d.push(self.base_level + j);
                        }
                    }
                    continue;
                }
            }
            if let Some(config) = self.candidate(j) {
                self.rungs[j].promoted.insert(config.clone());
                self.rungs[j + 1].outstanding += 1;
                return Some((config, self.base_level + j + 1));
            }
        }
        None
    }

    /// Cond. 1: best unpromoted config within the top 1/eta of rung `j`.
    /// Quarantined configs sit in the rung with value = +inf: they count
    /// toward |D_k| (their slot was spent) but are never promotable, so a
    /// failure-riddled rung keeps admitting fresh work instead of
    /// stalling.
    fn candidate(&self, j: usize) -> Option<Config> {
        let rung = &self.rungs[j];
        let n_top = rung.results.len() / self.eta;
        if n_top == 0 {
            return None;
        }
        let mut order: Vec<usize> = (0..rung.results.len()).collect();
        order.sort_by(|&a, &b| {
            rung.results[a]
                .1
                .partial_cmp(&rung.results[b].1)
                .expect("values are not NaN")
        });
        order
            .into_iter()
            .take(n_top)
            .filter(|&i| rung.results[i].1.is_finite())
            .map(|i| &rung.results[i].0)
            .find(|c| !rung.promoted.contains(*c))
            .cloned()
    }

    /// Registers a freshly sampled configuration dispatched at the base
    /// rung.
    pub fn add_base_job(&mut self) {
        self.rungs[0].outstanding += 1;
    }

    /// Records a completed evaluation at absolute `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside this bracket's rungs.
    pub fn on_result(&mut self, config: Config, level: usize, value: f64) {
        let j = level
            .checked_sub(self.base_level)
            .expect("level below bracket base");
        let rung = &mut self.rungs[j];
        debug_assert!(rung.outstanding > 0, "result without outstanding job");
        rung.outstanding = rung.outstanding.saturating_sub(1);
        rung.results.push((config, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::ParamValue;

    fn cfg(v: f64) -> Config {
        Config::new(vec![ParamValue::Float(v)])
    }

    fn levels() -> ResourceLevels {
        ResourceLevels::new(27.0, 3)
    }

    fn feed(b: &mut AsyncBracket, level: usize, values: &[f64]) {
        for &v in values {
            if level == b.base_level() {
                b.add_base_job();
            }
            b.on_result(cfg(v), level, v);
        }
    }

    #[test]
    fn asha_promotes_after_eta_results() {
        let mut b = AsyncBracket::new(&levels(), 0, false);
        feed(&mut b, 0, &[0.3, 0.1]);
        // Two results: floor(2/3) = 0, nothing promotable yet.
        assert!(b.try_promote().is_none());
        feed(&mut b, 0, &[0.2]);
        // Three results: the best (0.1) is promoted to level 1.
        let (c, lvl) = b.try_promote().unwrap();
        assert_eq!(lvl, 1);
        assert_eq!(c, cfg(0.1));
        // No second candidate within top 1/3 of 3.
        assert!(b.try_promote().is_none());
    }

    #[test]
    fn asha_never_promotes_same_config_twice() {
        let mut b = AsyncBracket::new(&levels(), 0, false);
        feed(&mut b, 0, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let first = b.try_promote().unwrap();
        let second = b.try_promote().unwrap();
        assert_ne!(first.0, second.0);
        assert!(b.try_promote().is_none());
    }

    #[test]
    fn dasha_delays_promotion_until_quota() {
        let mut b = AsyncBracket::new(&levels(), 0, true);
        feed(&mut b, 0, &[0.1, 0.2, 0.3]);
        // ASHA would promote now; D-ASHA requires |D_0| >= eta*(0+1) = 3,
        // which holds, so first promotion goes through.
        let p = b.try_promote().unwrap();
        assert_eq!(p.1, 1);
        // Second promotion now needs |D_0| >= eta*(|D_1|+outstanding+1)
        // = 3*(0+1+1) = 6; with 3 base results it must wait.
        feed(&mut b, 0, &[0.05, 0.15]);
        assert!(b.try_promote().is_none(), "delay must hold at 5 results");
        feed(&mut b, 0, &[0.25]);
        let p2 = b.try_promote().unwrap();
        assert_eq!(p2.1, 1);
        assert_eq!(p2.0, cfg(0.05));
    }

    #[test]
    fn dasha_counts_inflight_promotions() {
        let mut b = AsyncBracket::new(&levels(), 0, true);
        feed(
            &mut b,
            0,
            &(0..9).map(|i| i as f64 / 10.0).collect::<Vec<_>>(),
        );
        // 9 base results: quota allows |D_1| + 1 <= 3 promotions.
        assert!(b.try_promote().is_some());
        assert!(b.try_promote().is_some());
        // Third would make |D_1|-after = 3; requires |D_0| >= 3*3 = 9 — ok.
        assert!(b.try_promote().is_some());
        // Fourth requires 12 base results.
        assert!(b.try_promote().is_none());
    }

    #[test]
    fn promotion_chain_reaches_top_level() {
        let mut b = AsyncBracket::new(&levels(), 0, false);
        // Feed plenty of base results.
        feed(&mut b, 0, &(0..9).map(|i| i as f64).collect::<Vec<_>>());
        // Promote three configs to level 1 and finish them there.
        for _ in 0..3 {
            let (c, lvl) = b.try_promote().unwrap();
            assert_eq!(lvl, 1);
            let v = c.values()[0].as_f64().unwrap();
            b.on_result(c, 1, v);
        }
        // Best of level 1 promotes to level 2 (scan starts at the top).
        let (c, lvl) = b.try_promote().unwrap();
        assert_eq!(lvl, 2);
        assert_eq!(c, cfg(0.0));
        b.on_result(c, 2, 0.0);
        // Level 2 has one result — not promotable (floor(1/3) = 0).
        assert!(b.try_promote().is_none());
    }

    #[test]
    fn higher_rungs_scanned_first() {
        let mut b = AsyncBracket::new(&levels(), 0, false);
        feed(&mut b, 0, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        // Promote two to level 1, complete them.
        for _ in 0..2 {
            let (c, _) = b.try_promote().unwrap();
            let v = c.values()[0].as_f64().unwrap();
            b.on_result(c, 1, v);
        }
        feed(&mut b, 0, &[0.7, 0.8, 0.9]);
        // Nine base results: the third-best (0.3) promotes to level 1.
        let (c, lvl) = b.try_promote().unwrap();
        assert_eq!((c.clone(), lvl), (cfg(0.3), 1));
        b.on_result(c, 1, 0.3);
        // Level 1 now has 3 results (promotable) and level 0 still has
        // unpromoted top candidates; the scan must pick level 1 first.
        let (_, lvl) = b.try_promote().unwrap();
        assert_eq!(lvl, 2);
    }

    #[test]
    fn base_level_offset_respected() {
        let mut b = AsyncBracket::new(&levels(), 2, false);
        feed(&mut b, 2, &[0.1, 0.2, 0.3]);
        let (_, lvl) = b.try_promote().unwrap();
        assert_eq!(lvl, 3);
        // A bracket based at the top level never promotes.
        let mut top = AsyncBracket::new(&levels(), 3, false);
        feed(&mut top, 3, &[0.1, 0.2, 0.3, 0.4]);
        assert!(top.try_promote().is_none());
    }

    #[test]
    fn quarantined_results_never_promote_but_count_toward_rung() {
        let mut b = AsyncBracket::new(&levels(), 0, false);
        // Two quarantined configs (value = +inf) and one success.
        feed(&mut b, 0, &[f64::INFINITY, f64::INFINITY, 0.2]);
        // Three results make floor(3/3) = 1 slot, and the finite config is
        // the rung's best, so it promotes.
        let (c, lvl) = b.try_promote().unwrap();
        assert_eq!((c, lvl), (cfg(0.2), 1));
        // Nothing else is promotable: the remaining top entries are inf.
        assert!(b.try_promote().is_none());
        feed(&mut b, 0, &[f64::INFINITY, f64::INFINITY, f64::INFINITY]);
        // Six results, two slots, but slot 2 would be an inf config.
        assert!(b.try_promote().is_none(), "inf entries must never promote");
    }

    #[test]
    fn all_failed_rung_does_not_stall_scan() {
        let mut b = AsyncBracket::new(&levels(), 0, true);
        feed(&mut b, 0, &[f64::INFINITY; 6]);
        // D-ASHA quota is satisfied but every candidate is quarantined:
        // the caller falls through to sampling a fresh config.
        assert!(b.try_promote().is_none());
    }

    #[test]
    fn traced_promotion_matches_untraced_and_reports_delays() {
        // Build a state where the delay quota blocks a live candidate:
        // promote once, then land two *better* configs at the base rung
        // while the quota (|D_0| >= eta*(|D_1|+1) = 6) is not yet met.
        let mut traced = AsyncBracket::new(&levels(), 0, true);
        feed(&mut traced, 0, &[0.3, 0.2, 0.4]);
        assert_eq!(traced.try_promote().unwrap().0, cfg(0.2));
        feed(&mut traced, 0, &[0.1, 0.15]);
        let mut plain = traced.clone();
        let mut delayed = Vec::new();
        let a = traced.try_promote_traced(&mut delayed);
        let b = plain.try_promote();
        assert_eq!(a, b, "traced promotion must not change decisions");
        assert!(a.is_none(), "5 results < quota 6: promotion must wait");
        assert_eq!(delayed, vec![0], "0.1 was admissible but delayed");
        // One more base result satisfies the quota; both variants now
        // promote the same config and report no delay.
        feed(&mut traced, 0, &[0.5]);
        feed(&mut plain, 0, &[0.5]);
        delayed.clear();
        let a = traced.try_promote_traced(&mut delayed);
        assert_eq!(a, plain.try_promote());
        assert_eq!(a.unwrap().0, cfg(0.1));
        assert!(delayed.is_empty());
    }

    #[test]
    fn traced_promotion_reports_nothing_without_blocked_candidate() {
        let mut b = AsyncBracket::new(&levels(), 0, true);
        feed(&mut b, 0, &[0.1, 0.2]);
        let mut delayed = Vec::new();
        // floor(2/3) = 0: no candidate exists, so even though the delay
        // condition fails nothing is reported.
        assert!(b.try_promote_traced(&mut delayed).is_none());
        assert!(delayed.is_empty());
    }

    #[test]
    fn rung_len_reports_results() {
        let mut b = AsyncBracket::new(&levels(), 0, false);
        feed(&mut b, 0, &[0.5, 0.6]);
        assert_eq!(b.rung_len(0), 2);
        assert_eq!(b.rung_len(1), 0);
    }
}
