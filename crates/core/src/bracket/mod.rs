//! Bracket state machines: the successive-halving bookkeeping shared by
//! every Hyperband-family method.
//!
//! - [`SyncBracket`] executes one synchronous SHA procedure (§3.2,
//!   Figure 2): rungs advance only when *all* evaluations of the current
//!   rung have returned — the synchronization barrier of Figure 1.
//! - [`AsyncBracket`] implements ASHA-style asynchronous promotion
//!   ([Li et al. 2020]) and, with the delay condition enabled, the
//!   paper's D-ASHA (Algorithm 1).

mod async_bracket;
mod sync_bracket;

pub use async_bracket::AsyncBracket;
pub use sync_bracket::SyncBracket;
