//! Per-study runtime state, extracted from the threaded runner loop.
//!
//! The single-study drivers in [`crate::runner_threaded`] weave three
//! things into one loop: the *suggestion state* (method + RNG + read
//! views), the *run state* (single-writer history/pending stores + the
//! dispatch id counter), and the *pool loop* (fill idle workers, wait
//! for completions). A multi-tenant service needs the first two per
//! study while sharing one pool loop across all of them — so this
//! module packages them as a [`StudyRuntime`]: everything one study
//! owns, with the exact call ordering the inline driver uses, and
//! nothing about where its jobs execute.
//!
//! The fidelity contract: driving one `StudyRuntime` with the same
//! fill/complete sequence as [`crate::runner_threaded::run_threaded`]
//! (inline driver, same seed, same `n_workers`) produces a bit-identical
//! suggestion and measurement stream. The service-level equivalence
//! test pins this against a one-worker pool.

use std::sync::Arc;

use hypertune_benchmarks::Eval;
use hypertune_cluster::JobStatus;
use hypertune_space::ConfigSpace;
use hypertune_telemetry::TelemetryHandle;
use rand::{rngs::StdRng, SeedableRng};

use crate::history::{HistoryRead, Measurement};
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome, OutcomeStatus};
use crate::shared::{HistoryView, ShardedPending, SharedHistory};

/// One study's isolated tuning state: the method, its RNG, the
/// single-writer history/pending stores, and the dispatch id counter.
///
/// The embedding driver owns scheduling and execution; the runtime owns
/// everything the method can observe. Isolation between studies is
/// structural — each runtime has its own stores and RNG, so tenants
/// cannot perturb each other's suggestion streams no matter how the
/// shared pool interleaves them.
pub struct StudyRuntime {
    method: Box<dyn Method>,
    space: ConfigSpace,
    levels: ResourceLevels,
    history: Arc<SharedHistory>,
    view: HistoryView,
    pending: Arc<ShardedPending>,
    pending_snap: Arc<[JobSpec]>,
    rng: StdRng,
    n_workers: usize,
    telemetry: TelemetryHandle,
    next_job_id: u64,
}

impl std::fmt::Debug for StudyRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyRuntime")
            .field("method", &self.method.name())
            .field("history_len", &self.view.len())
            .field("pending", &self.pending.len())
            .field("next_job_id", &self.next_job_id)
            .finish_non_exhaustive()
    }
}

impl StudyRuntime {
    /// Builds the runtime. `n_workers` is the parallelism the *method*
    /// plans for — the study's in-flight quota, not the pool width.
    /// `telemetry` is typically a tenant-stamped handle
    /// ([`TelemetryHandle::with_tenant`]); it reaches the method and
    /// both shared stores.
    pub fn new(
        mut method: Box<dyn Method>,
        space: ConfigSpace,
        levels: ResourceLevels,
        seed: u64,
        n_workers: usize,
        telemetry: TelemetryHandle,
    ) -> Self {
        method.set_telemetry(telemetry.clone());
        let history = Arc::new(SharedHistory::new(levels.clone(), telemetry.clone()));
        let pending = Arc::new(ShardedPending::new(telemetry.clone()));
        Self {
            method,
            space,
            levels,
            view: history.view(),
            history,
            pending_snap: pending.snapshot(),
            pending,
            rng: StdRng::seed_from_u64(seed),
            n_workers,
            telemetry,
            next_job_id: 1,
        }
    }

    /// Replays recovered measurements into the history without touching
    /// the method — [`crate::persist::Checkpoint`] semantics: derived
    /// state (surrogates, θ, incumbents) refits from the restored
    /// history as the method runs fresh rounds against it.
    pub fn restore(&mut self, measurements: &[Measurement]) {
        for m in measurements {
            self.history.append(m.clone());
        }
        self.view.sync();
    }

    /// One suggestion round: syncs the read views, asks the method for
    /// up to `k` jobs, and registers the batch (dispatch ids assigned,
    /// pending set updated and published) — the same order as the
    /// inline driver's fill step. An empty batch means the method is at
    /// a barrier and needs a completion before it can continue.
    pub fn suggest(&mut self, k: usize, now: f64) -> Vec<JobSpec> {
        self.view.sync();
        self.pending_snap = self.pending.snapshot();
        let mut ctx = MethodContext {
            space: &self.space,
            levels: &self.levels,
            history: &self.view,
            pending: &self.pending_snap,
            rng: &mut self.rng,
            n_workers: self.n_workers,
            now,
        };
        let span = self.telemetry.span("suggest_batch");
        let mut batch = self.method.next_jobs(&mut ctx, k);
        drop(span);
        for job in batch.iter_mut() {
            job.id = self.next_job_id;
            self.next_job_id += 1;
            self.pending.insert(job.clone());
        }
        self.pending.publish();
        batch
    }

    /// Books a successful completion: removes the job from pending,
    /// appends the measurement, publishes, and feeds the outcome to the
    /// method against refreshed views — the inline driver's completion
    /// path. Returns the recorded measurement for the caller's own
    /// bookkeeping (WAL append, telemetry, tallies).
    pub fn complete_success(&mut self, spec: &JobSpec, eval: &Eval, now: f64) -> Measurement {
        let m = Measurement {
            config: spec.config.clone(),
            level: spec.level,
            resource: spec.resource,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: now,
        };
        let outcome = Outcome {
            spec: spec.clone(),
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: now,
            status: OutcomeStatus::Success,
            fail_status: None,
        };
        self.pending.remove(spec);
        self.history.append(m.clone());
        self.pending.publish();
        self.on_result(outcome, now);
        m
    }

    /// Books a quarantined job (final attempt failed, retries
    /// exhausted): removes it from pending and feeds the method a
    /// `Failed` outcome so it can replace the configuration.
    pub fn complete_quarantine(&mut self, spec: JobSpec, status: JobStatus, now: f64) {
        self.pending.remove(&spec);
        self.pending.publish();
        let outcome = Outcome {
            spec,
            value: f64::INFINITY,
            test_value: f64::INFINITY,
            cost: 0.0,
            finished_at: now,
            status: OutcomeStatus::Failed,
            fail_status: Some(status),
        };
        self.on_result(outcome, now);
    }

    fn on_result(&mut self, outcome: Outcome, now: f64) {
        self.view.sync();
        self.pending_snap = self.pending.snapshot();
        let mut ctx = MethodContext {
            space: &self.space,
            levels: &self.levels,
            history: &self.view,
            pending: &self.pending_snap,
            rng: &mut self.rng,
            n_workers: self.n_workers,
            now,
        };
        self.method.on_result(&outcome, &mut ctx);
    }

    /// The method's display name.
    pub fn method_name(&self) -> &str {
        self.method.name()
    }

    /// Completed measurements recorded so far.
    pub fn history_len(&self) -> usize {
        self.history.with(|h| h.len())
    }

    /// Jobs registered but not yet completed or quarantined.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The study's incumbent (best complete evaluation, falling back to
    /// any level), cloned out of the shared store.
    pub fn incumbent(&self) -> Option<Measurement> {
        self.history.with(|h| h.incumbent().cloned())
    }

    /// Runs `f` against the study's history.
    pub fn with_history<R>(&self, f: impl FnOnce(&crate::history::History) -> R) -> R {
        self.history.with(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hypertune_benchmarks::{Benchmark, CountingOnes};

    fn runtime(seed: u64) -> (StudyRuntime, CountingOnes) {
        let bench = CountingOnes::new(4, 4, seed);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let rt = StudyRuntime::new(
            MethodKind::HyperTune.build(&levels, seed),
            bench.space().clone(),
            levels,
            seed,
            1,
            TelemetryHandle::disabled(),
        );
        (rt, bench)
    }

    /// Sequentially drive the runtime the way a one-worker pool would.
    fn drive(seed: u64, n: usize) -> Vec<Measurement> {
        let (mut rt, bench) = runtime(seed);
        let mut out = Vec::new();
        while out.len() < n {
            let batch = rt.suggest(1, out.len() as f64);
            assert_eq!(batch.len(), 1, "k=1 suggestion cannot be empty mid-run");
            let spec = batch.into_iter().next().unwrap();
            let eval = bench.evaluate(&spec.config, spec.resource, seed);
            out.push(rt.complete_success(&spec, &eval, out.len() as f64));
        }
        out
    }

    #[test]
    fn ids_are_assigned_from_one() {
        let (mut rt, _) = runtime(3);
        let batch = rt.suggest(1, 0.0);
        assert_eq!(batch[0].id, 1);
        assert_eq!(rt.pending_len(), 1);
    }

    #[test]
    fn sequential_drive_is_deterministic_in_seed() {
        let a = drive(11, 12);
        let b = drive(11, 12);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.value.to_bits(), y.value.to_bits());
        }
        let c = drive(12, 12);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.config != y.config),
            "different seeds must explore differently"
        );
    }

    #[test]
    fn restore_rebuilds_incumbent_and_counts() {
        let ms = drive(5, 8);
        let (mut rt, _) = runtime(5);
        rt.restore(&ms);
        assert_eq!(rt.history_len(), 8);
        let best = rt.incumbent().expect("non-empty history");
        assert!(ms.iter().any(|m| m.value == best.value));
        // And the method keeps running against the restored history.
        let batch = rt.suggest(1, 99.0);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn quarantine_feeds_failed_outcome_and_clears_pending() {
        let (mut rt, _) = runtime(9);
        let batch = rt.suggest(1, 0.0);
        let spec = batch.into_iter().next().unwrap();
        rt.complete_quarantine(spec, JobStatus::Crashed, 1.0);
        assert_eq!(rt.pending_len(), 0);
        assert_eq!(rt.history_len(), 0, "quarantines never enter history");
        // The method must still be able to continue.
        assert_eq!(rt.suggest(1, 2.0).len(), 1);
    }
}
