//! The method abstraction: how tuning algorithms talk to the runner.
//!
//! Methods are *pull-based* state machines. The runner repeatedly asks
//! [`Method::next_job`] while workers are idle; a synchronous method
//! returns `None` at its barrier (leaving workers idle — the cost the
//! paper's Figure 1 illustrates), while an asynchronous method always has
//! work. Completions flow back through [`Method::on_result`] after the
//! runner has recorded them into the shared [`crate::History`].

use hypertune_cluster::JobStatus;
use hypertune_space::{Config, ConfigSpace};
use hypertune_telemetry::TelemetryHandle;
use rand::rngs::StdRng;

use crate::history::HistoryRead;
use crate::levels::ResourceLevels;

/// A unit of work: evaluate `config` with `resource` units.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Configuration to evaluate.
    pub config: Config,
    /// Resource-level index (0-based).
    pub level: usize,
    /// Training resources in units (`levels.resource(level)`).
    pub resource: f64,
    /// Bracket the job belongs to, when applicable (used for traces and
    /// per-bracket bookkeeping).
    pub bracket: Option<usize>,
    /// Dispatch id assigned by the runner (monotone per run, `0` until
    /// dispatched). Keys the runner's pending-set so completions resolve
    /// by id instead of comparing `Config`s (float equality footgun).
    #[serde(default)]
    pub id: u64,
}

/// Whether an evaluation produced a usable result.
///
/// The runner retries failed jobs transparently; a method only ever sees
/// [`OutcomeStatus::Failed`] when a job exhausted its retry budget and was
/// *quarantined*. Failed outcomes carry `value = f64::INFINITY`, are never
/// recorded into the [`crate::History`], and exist so schedulers can release the
/// bookkeeping slot (rung quota, batch barrier, population seed) the job
/// occupied — otherwise a dead config would stall its rung forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutcomeStatus {
    /// The evaluation completed with a valid result.
    #[default]
    Success,
    /// The job failed repeatedly and was quarantined by the runner.
    Failed,
}

/// A finished evaluation delivered back to the method.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The job that finished.
    pub spec: JobSpec,
    /// Validation objective (minimized); `f64::INFINITY` for failures.
    pub value: f64,
    /// Held-out test objective; `f64::INFINITY` for failures.
    pub test_value: f64,
    /// Virtual cost in seconds (for failures: the cost of the attempts,
    /// including wasted retries).
    pub cost: f64,
    /// Virtual completion time.
    pub finished_at: f64,
    /// Whether the evaluation succeeded or was quarantined.
    pub status: OutcomeStatus,
    /// For quarantined jobs, how the *final* attempt died (crash, error,
    /// timeout, corrupt result); `None` on success. Lets schedulers keep
    /// per-failure-mode diagnostics without re-deriving cluster state.
    pub fail_status: Option<JobStatus>,
}

impl Outcome {
    /// `true` when this job was quarantined after exhausting retries.
    pub fn is_failed(&self) -> bool {
        self.status == OutcomeStatus::Failed
    }
}

/// Shared state the runner lends to the method on every call.
pub struct MethodContext<'a> {
    /// The search space.
    pub space: &'a ConfigSpace,
    /// The resource-level ladder.
    pub levels: &'a ResourceLevels,
    /// All recorded measurements.
    pub history: &'a dyn HistoryRead,
    /// Configurations currently being evaluated (for pending-imputation
    /// sampling, Algorithm 2).
    pub pending: &'a [JobSpec],
    /// Run-scoped RNG; methods must draw all randomness from here so runs
    /// are reproducible per seed.
    pub rng: &'a mut StdRng,
    /// Cluster size, for batch-sized decisions.
    pub n_workers: usize,
    /// Current virtual time.
    pub now: f64,
}

/// A tuning algorithm (Hyper-Tune itself or any baseline).
///
/// `Send` is required so the threaded runner can hand the method to its
/// background suggestion thread (prefetch); methods hold only owned state,
/// seeded RNGs, and thread-safe telemetry handles, so this is free.
pub trait Method: Send {
    /// Display name used in reports (e.g. `"BOHB"`).
    fn name(&self) -> &str;

    /// Produces the next job, or `None` to leave remaining workers idle
    /// until the next completion (synchronization barrier).
    ///
    /// Invariant: when the cluster is quiescent (no pending jobs) the
    /// method must return `Some`, otherwise the run would deadlock; the
    /// runner enforces this with a panic.
    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec>;

    /// Produces up to `k` jobs for a batch of idle workers.
    ///
    /// The default simply loops [`Method::next_job`], stopping at the
    /// first barrier (`None`). Model-based methods override this to fit
    /// their surrogate **once** and draw all `k` candidates from a single
    /// acquisition round with constant-liar pending-imputation, which is
    /// what takes the per-worker fit cost off the dispatch critical path.
    ///
    /// Contract: `next_jobs(ctx, 1)` must be *bit-identical* to
    /// `next_job(ctx)` (same RNG consumption, same caches) — the sim
    /// runner relies on this to keep paper-figure runs reproducible.
    /// Note the jobs in the returned batch are **not** in `ctx.pending`
    /// yet; overrides that impute pending configs must treat already-drawn
    /// batch members as pending themselves (the constant liar).
    fn next_jobs(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(k);
        while jobs.len() < k {
            match self.next_job(ctx) {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        jobs
    }

    /// Notifies the method of a completed evaluation. The measurement is
    /// already in `ctx.history`.
    fn on_result(&mut self, outcome: &Outcome, ctx: &mut MethodContext<'_>);

    /// Hands the method a telemetry handle before the run starts. The
    /// default ignores it; methods that emit events (or own samplers that
    /// do) override this and forward clones downstream. Runners call it
    /// once, before the first [`Method::next_job`].
    fn set_telemetry(&mut self, _telemetry: TelemetryHandle) {}

    /// Toggles graceful degradation (the runner's quarantine-storm circuit
    /// breaker, [`crate::breaker::Breaker`]). While degraded a method
    /// should stop trusting its models: samplers fall back to uniform
    /// random draws and promotion machinery pauses. The default ignores
    /// the signal — simple methods (random search, fixed schedules) have
    /// nothing to degrade. Implementations must not consume run RNG here,
    /// so a run in which the breaker never fires stays bit-identical.
    fn set_degraded(&mut self, _degraded: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::ParamValue;

    #[test]
    fn jobspec_carries_bracket() {
        let j = JobSpec {
            config: Config::new(vec![ParamValue::Int(1)]),
            level: 2,
            resource: 9.0,
            bracket: Some(1),
            id: 0,
        };
        assert_eq!(j.bracket, Some(1));
        let o = Outcome {
            spec: j.clone(),
            value: 0.5,
            test_value: 0.51,
            cost: 12.0,
            finished_at: 100.0,
            status: OutcomeStatus::Success,
            fail_status: None,
        };
        assert_eq!(o.spec, j);
        assert!(!o.is_failed());
    }

    #[test]
    fn failed_outcome_reports_failure() {
        let o = Outcome {
            spec: JobSpec {
                config: Config::new(vec![ParamValue::Int(0)]),
                level: 0,
                resource: 1.0,
                bracket: None,
                id: 0,
            },
            value: f64::INFINITY,
            test_value: f64::INFINITY,
            cost: 4.0,
            finished_at: 8.0,
            status: OutcomeStatus::Failed,
            fail_status: Some(JobStatus::Crashed),
        };
        assert!(o.is_failed());
        assert_eq!(o.fail_status, Some(JobStatus::Crashed));
    }
}
