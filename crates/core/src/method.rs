//! The method abstraction: how tuning algorithms talk to the runner.
//!
//! Methods are *pull-based* state machines. The runner repeatedly asks
//! [`Method::next_job`] while workers are idle; a synchronous method
//! returns `None` at its barrier (leaving workers idle — the cost the
//! paper's Figure 1 illustrates), while an asynchronous method always has
//! work. Completions flow back through [`Method::on_result`] after the
//! runner has recorded them into the shared [`History`].

use hypertune_space::{Config, ConfigSpace};
use rand::rngs::StdRng;

use crate::history::History;
use crate::levels::ResourceLevels;

/// A unit of work: evaluate `config` with `resource` units.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Configuration to evaluate.
    pub config: Config,
    /// Resource-level index (0-based).
    pub level: usize,
    /// Training resources in units (`levels.resource(level)`).
    pub resource: f64,
    /// Bracket the job belongs to, when applicable (used for traces and
    /// per-bracket bookkeeping).
    pub bracket: Option<usize>,
}

/// A finished evaluation delivered back to the method.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The job that finished.
    pub spec: JobSpec,
    /// Validation objective (minimized).
    pub value: f64,
    /// Held-out test objective.
    pub test_value: f64,
    /// Virtual cost in seconds.
    pub cost: f64,
    /// Virtual completion time.
    pub finished_at: f64,
}

/// Shared state the runner lends to the method on every call.
pub struct MethodContext<'a> {
    /// The search space.
    pub space: &'a ConfigSpace,
    /// The resource-level ladder.
    pub levels: &'a ResourceLevels,
    /// All recorded measurements.
    pub history: &'a History,
    /// Configurations currently being evaluated (for pending-imputation
    /// sampling, Algorithm 2).
    pub pending: &'a [JobSpec],
    /// Run-scoped RNG; methods must draw all randomness from here so runs
    /// are reproducible per seed.
    pub rng: &'a mut StdRng,
    /// Cluster size, for batch-sized decisions.
    pub n_workers: usize,
    /// Current virtual time.
    pub now: f64,
}

/// A tuning algorithm (Hyper-Tune itself or any baseline).
pub trait Method {
    /// Display name used in reports (e.g. `"BOHB"`).
    fn name(&self) -> &str;

    /// Produces the next job, or `None` to leave remaining workers idle
    /// until the next completion (synchronization barrier).
    ///
    /// Invariant: when the cluster is quiescent (no pending jobs) the
    /// method must return `Some`, otherwise the run would deadlock; the
    /// runner enforces this with a panic.
    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec>;

    /// Notifies the method of a completed evaluation. The measurement is
    /// already in `ctx.history`.
    fn on_result(&mut self, outcome: &Outcome, ctx: &mut MethodContext<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::ParamValue;

    #[test]
    fn jobspec_carries_bracket() {
        let j = JobSpec {
            config: Config::new(vec![ParamValue::Int(1)]),
            level: 2,
            resource: 9.0,
            bracket: Some(1),
        };
        assert_eq!(j.bracket, Some(1));
        let o = Outcome {
            spec: j.clone(),
            value: 0.5,
            test_value: 0.51,
            cost: 12.0,
            finished_at: 100.0,
        };
        assert_eq!(o.spec, j);
    }
}
