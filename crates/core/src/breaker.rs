//! Quarantine-storm circuit breaker: the graceful-degradation ladder.
//!
//! Under heavy fault pressure (crash storms, mass worker churn) the
//! measurement history stops growing while quarantines pile up. Model-based
//! samplers then refit surrogates on a shrinking, increasingly stale `D_K`,
//! and the allocator keeps promoting configurations on the strength of
//! noise. The breaker watches the recent terminal-outcome stream and, when
//! the failure fraction over a sliding window crosses a threshold,
//! **opens**: the runner tells the method to degrade — samplers fall back
//! to uniform random draws and promotion machinery pauses — until the
//! failure fraction drops back below a (lower) close threshold and the
//! breaker **closes** again. Hysteresis between the two thresholds stops
//! the ladder from flapping.
//!
//! The breaker is entirely driver-side: it never consumes run RNG, so a
//! run in which it never opens is bit-identical to a run without it.

use std::collections::VecDeque;

/// Tuning knobs for the [`Breaker`]. The defaults open at a 50% failure
/// rate over the last 20 terminal outcomes and close once it falls below
/// 20%.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length (terminal outcomes: completions and
    /// quarantines both count).
    pub window: usize,
    /// Failure fraction at or above which the breaker opens.
    pub open_threshold: f64,
    /// Failure fraction at or below which an open breaker closes.
    /// Must not exceed `open_threshold`.
    pub close_threshold: f64,
    /// Minimum outcomes observed before the breaker may open (a single
    /// early failure is not a storm).
    pub min_samples: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 20,
            open_threshold: 0.5,
            close_threshold: 0.2,
            min_samples: 10,
        }
    }
}

impl BreakerConfig {
    /// Panics on malformed knobs (zero window, thresholds outside `[0,1]`
    /// or inverted hysteresis).
    pub fn validate(&self) {
        assert!(self.window > 0, "breaker window must be > 0");
        assert!(
            (0.0..=1.0).contains(&self.open_threshold)
                && (0.0..=1.0).contains(&self.close_threshold),
            "breaker thresholds must be in [0, 1]"
        );
        assert!(
            self.close_threshold <= self.open_threshold,
            "close_threshold must not exceed open_threshold"
        );
    }
}

/// A state change produced by [`Breaker::record`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerTransition {
    /// The failure rate crossed the open threshold; carries the rate at
    /// the moment of opening.
    Opened(f64),
    /// The failure rate fell back below the close threshold.
    Closed,
}

/// Sliding-window failure-rate breaker; see the module docs.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    /// Recent terminal outcomes, `true` = failure.
    recent: VecDeque<bool>,
    open: bool,
}

impl Breaker {
    /// Creates a closed breaker.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`BreakerConfig::validate`].
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        Self {
            recent: VecDeque::with_capacity(config.window),
            config,
            open: false,
        }
    }

    /// `true` while the breaker is open (the method should be degraded).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Failure fraction over the current window (`0.0` when empty).
    pub fn failure_rate(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let failures = self.recent.iter().filter(|&&f| f).count();
        failures as f64 / self.recent.len() as f64
    }

    /// Feeds one terminal outcome (`failed` = quarantine or orphan-storm
    /// casualty) and returns the transition it caused, if any.
    pub fn record(&mut self, failed: bool) -> Option<BreakerTransition> {
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(failed);
        let rate = self.failure_rate();
        if !self.open {
            if self.recent.len() >= self.config.min_samples && rate >= self.config.open_threshold {
                self.open = true;
                return Some(BreakerTransition::Opened(rate));
            }
        } else if rate <= self.config.close_threshold {
            self.open = false;
            return Some(BreakerTransition::Closed);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            open_threshold: 0.5,
            close_threshold: 0.25,
            min_samples: 2,
        }
    }

    #[test]
    fn stays_closed_under_light_failure() {
        let mut b = Breaker::new(quick());
        for _ in 0..20 {
            assert_eq!(b.record(false), None);
        }
        assert!(!b.is_open());
        assert_eq!(b.failure_rate(), 0.0);
    }

    #[test]
    fn opens_on_storm_and_closes_with_hysteresis() {
        let mut b = Breaker::new(quick());
        assert_eq!(b.record(false), None);
        // Window [f, t]: rate 0.5 hits the open threshold at min_samples.
        assert_eq!(b.record(true), Some(BreakerTransition::Opened(0.5)));
        assert!(b.is_open());
        // Window [f, t, f]: rate 1/3 sits between the thresholds — the
        // hysteresis band — so the breaker stays open.
        assert_eq!(b.record(false), None);
        assert!(b.is_open());
        // Window [f, t, f, f]: rate 0.25 reaches the close threshold.
        assert_eq!(b.record(false), Some(BreakerTransition::Closed));
        assert!(!b.is_open());
    }

    #[test]
    fn min_samples_gates_opening() {
        let cfg = BreakerConfig {
            min_samples: 4,
            ..quick()
        };
        let mut b = Breaker::new(cfg);
        assert_eq!(b.record(true), None);
        assert_eq!(b.record(true), None);
        assert_eq!(b.record(true), None);
        assert!(!b.is_open(), "three failures < min_samples");
        assert_eq!(b.record(true), Some(BreakerTransition::Opened(1.0)));
        assert!(b.is_open());
    }

    #[test]
    fn window_slides() {
        let mut b = Breaker::new(quick());
        for _ in 0..4 {
            b.record(true);
        }
        assert!(b.is_open());
        assert_eq!(b.failure_rate(), 1.0);
        // Four successes push every failure out of the window.
        let mut transitions = Vec::new();
        for _ in 0..4 {
            if let Some(t) = b.record(false) {
                transitions.push(t);
            }
        }
        assert_eq!(transitions, vec![BreakerTransition::Closed]);
        assert_eq!(b.failure_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "close_threshold")]
    fn inverted_hysteresis_panics() {
        Breaker::new(BreakerConfig {
            open_threshold: 0.2,
            close_threshold: 0.5,
            ..Default::default()
        });
    }
}
