//! Run diagnostics: the internal signals behind Hyper-Tune's decisions.
//!
//! The ablation binaries use these to *explain* results, not just score
//! them: how `θ` (partial-evaluation precision) evolved as complete
//! evaluations accumulated, which brackets the allocator favoured, and
//! how many promotions each bracket made. All of this is derivable from
//! the method's internal state, so the engine records it as it goes.

use hypertune_cluster::JobStatus;
use hypertune_telemetry::FailureKind;

/// Failed-attempt tallies broken down by [`JobStatus`].
///
/// Both runners keep one of these (counting *every* failed attempt,
/// retried or not), and [`Diagnostics`] keeps a second one restricted to
/// quarantined jobs. The split mirrors the runner's retry semantics:
/// attempts measure fault pressure, quarantines measure what leaked
/// through the retry budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureCounts {
    /// Worker died mid-evaluation.
    pub crashed: usize,
    /// Evaluation raised an error.
    pub errored: usize,
    /// Evaluation exceeded the per-job timeout.
    pub timed_out: usize,
    /// Evaluation finished but the result was unusable.
    pub corrupt: usize,
    /// Worker left the cluster mid-evaluation; the job's lease expired
    /// and it was reclaimed unfinished.
    pub orphaned: usize,
}

impl FailureCounts {
    /// Tallies one failed attempt. [`JobStatus::Succeeded`] is ignored so
    /// callers can feed every completion through unconditionally.
    pub fn record(&mut self, status: JobStatus) {
        match status {
            JobStatus::Succeeded => {}
            JobStatus::Crashed => self.crashed += 1,
            JobStatus::Errored => self.errored += 1,
            JobStatus::TimedOut => self.timed_out += 1,
            JobStatus::Corrupt => self.corrupt += 1,
            JobStatus::Orphaned => self.orphaned += 1,
        }
    }

    /// Adds another tally into this one (for aggregating over runs).
    pub fn merge(&mut self, other: &FailureCounts) {
        self.crashed += other.crashed;
        self.errored += other.errored;
        self.timed_out += other.timed_out;
        self.corrupt += other.corrupt;
        self.orphaned += other.orphaned;
    }

    /// Total failed attempts across all modes.
    pub fn total(&self) -> usize {
        self.crashed + self.errored + self.timed_out + self.corrupt + self.orphaned
    }

    /// `true` when nothing failed.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

impl std::fmt::Display for FailureCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crashed={} errored={} timed_out={} corrupt={} orphaned={}",
            self.crashed, self.errored, self.timed_out, self.corrupt, self.orphaned
        )
    }
}

/// Maps a failed [`JobStatus`] onto the telemetry [`FailureKind`];
/// `None` for [`JobStatus::Succeeded`].
pub fn failure_kind(status: JobStatus) -> Option<FailureKind> {
    match status {
        JobStatus::Succeeded => None,
        JobStatus::Crashed => Some(FailureKind::Crashed),
        JobStatus::Errored => Some(FailureKind::Errored),
        JobStatus::TimedOut => Some(FailureKind::TimedOut),
        JobStatus::Corrupt => Some(FailureKind::Corrupt),
        JobStatus::Orphaned => Some(FailureKind::Orphaned),
    }
}

/// Diagnostics accumulated by [`crate::methods::AsyncHb`] during a run.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// `(|D_K| at refresh time, θ)` snapshots, in order.
    pub theta_history: Vec<(usize, Vec<f64>)>,
    /// Number of fresh configurations assigned to each bracket.
    pub bracket_starts: Vec<usize>,
    /// Number of promotions issued per bracket.
    pub bracket_promotions: Vec<usize>,
    /// Number of quarantined (permanently failed) jobs per bracket.
    pub bracket_failures: Vec<usize>,
    /// Quarantined jobs broken down by how their final attempt died.
    pub failure_counts: FailureCounts,
}

impl Diagnostics {
    /// Creates empty diagnostics over `k` brackets.
    pub fn new(k: usize) -> Self {
        Self {
            theta_history: Vec::new(),
            bracket_starts: vec![0; k],
            bracket_promotions: vec![0; k],
            bracket_failures: vec![0; k],
            failure_counts: FailureCounts::default(),
        }
    }

    /// Records a θ refresh.
    pub fn record_theta(&mut self, n_full: usize, theta: &[f64]) {
        self.theta_history.push((n_full, theta.to_vec()));
    }

    /// Records a fresh configuration start in `bracket`.
    pub fn record_start(&mut self, bracket: usize) {
        self.bracket_starts[bracket] += 1;
    }

    /// Records a promotion in `bracket`.
    pub fn record_promotion(&mut self, bracket: usize) {
        self.bracket_promotions[bracket] += 1;
    }

    /// Records a quarantined job in `bracket`.
    pub fn record_failure(&mut self, bracket: usize) {
        self.bracket_failures[bracket] += 1;
    }

    /// Records the failure mode of a quarantined job's final attempt.
    pub fn record_failure_status(&mut self, status: JobStatus) {
        self.failure_counts.record(status);
    }

    /// Total quarantined jobs across all brackets.
    pub fn total_failures(&self) -> usize {
        self.bracket_failures.iter().sum()
    }

    /// The final θ snapshot, if any.
    pub fn final_theta(&self) -> Option<&[f64]> {
        self.theta_history.last().map(|(_, t)| t.as_slice())
    }

    /// Empirical bracket-selection distribution (fractions of starts).
    pub fn bracket_distribution(&self) -> Vec<f64> {
        let total: usize = self.bracket_starts.iter().sum();
        if total == 0 {
            return vec![0.0; self.bracket_starts.len()];
        }
        self.bracket_starts
            .iter()
            .map(|&n| n as f64 / total as f64)
            .collect()
    }

    /// Renders a compact multi-line report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "bracket starts:     {:?}\nbracket promotions: {:?}\n",
            self.bracket_starts, self.bracket_promotions
        ));
        if let Some(theta) = self.final_theta() {
            s.push_str("final theta:        [");
            for (i, t) in theta.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{t:.3}"));
            }
            s.push_str("]\n");
        }
        s.push_str(&format!(
            "theta refreshes:    {}\n",
            self.theta_history.len()
        ));
        if self.total_failures() > 0 {
            s.push_str(&format!(
                "bracket failures:   {:?}\n",
                self.bracket_failures
            ));
        }
        if !self.failure_counts.is_empty() {
            s.push_str(&format!("failure modes:      {}\n", self.failure_counts));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut d = Diagnostics::new(4);
        d.record_start(0);
        d.record_start(0);
        d.record_start(2);
        d.record_promotion(0);
        d.record_theta(5, &[0.5, 0.3, 0.1, 0.1]);
        d.record_theta(8, &[0.6, 0.2, 0.1, 0.1]);
        d.record_failure(3);
        assert_eq!(d.bracket_starts, vec![2, 0, 1, 0]);
        assert_eq!(d.bracket_promotions, vec![1, 0, 0, 0]);
        assert_eq!(d.bracket_failures, vec![0, 0, 0, 1]);
        assert_eq!(d.total_failures(), 1);
        assert_eq!(d.final_theta().unwrap()[0], 0.6);
        assert_eq!(d.theta_history.len(), 2);
    }

    #[test]
    fn distribution_normalizes() {
        let mut d = Diagnostics::new(2);
        d.record_start(0);
        d.record_start(0);
        d.record_start(1);
        let dist = d.bracket_distribution();
        assert!((dist[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = Diagnostics::new(3);
        assert_eq!(d.bracket_distribution(), vec![0.0; 3]);
        assert!(d.final_theta().is_none());
    }

    #[test]
    fn failure_counts_tally_by_status() {
        let mut c = FailureCounts::default();
        c.record(JobStatus::Crashed);
        c.record(JobStatus::Crashed);
        c.record(JobStatus::Errored);
        c.record(JobStatus::TimedOut);
        c.record(JobStatus::Corrupt);
        c.record(JobStatus::Orphaned);
        c.record(JobStatus::Succeeded); // ignored
        assert_eq!(c.crashed, 2);
        assert_eq!(c.errored, 1);
        assert_eq!(c.timed_out, 1);
        assert_eq!(c.corrupt, 1);
        assert_eq!(c.orphaned, 1);
        assert_eq!(c.total(), 6);
        assert!(!c.is_empty());
        let mut merged = FailureCounts::default();
        merged.record(JobStatus::Errored);
        merged.merge(&c);
        assert_eq!(merged.errored, 2);
        assert_eq!(merged.total(), 7);
        let shown = c.to_string();
        assert!(shown.contains("crashed=2"));
        assert!(shown.contains("corrupt=1"));
        assert!(shown.contains("orphaned=1"));
    }

    #[test]
    fn failure_kind_maps_every_failure_mode() {
        use hypertune_telemetry::FailureKind;
        assert_eq!(failure_kind(JobStatus::Succeeded), None);
        assert_eq!(failure_kind(JobStatus::Crashed), Some(FailureKind::Crashed));
        assert_eq!(failure_kind(JobStatus::Errored), Some(FailureKind::Errored));
        assert_eq!(
            failure_kind(JobStatus::TimedOut),
            Some(FailureKind::TimedOut)
        );
        assert_eq!(failure_kind(JobStatus::Corrupt), Some(FailureKind::Corrupt));
        assert_eq!(
            failure_kind(JobStatus::Orphaned),
            Some(FailureKind::Orphaned)
        );
    }

    #[test]
    fn report_mentions_everything() {
        let mut d = Diagnostics::new(2);
        d.record_start(1);
        d.record_theta(4, &[0.7, 0.3]);
        let r = d.report();
        assert!(r.contains("bracket starts"));
        assert!(r.contains("0.700"));
        assert!(r.contains("theta refreshes:    1"));
    }
}
