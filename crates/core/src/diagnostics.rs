//! Run diagnostics: the internal signals behind Hyper-Tune's decisions.
//!
//! The ablation binaries use these to *explain* results, not just score
//! them: how `θ` (partial-evaluation precision) evolved as complete
//! evaluations accumulated, which brackets the allocator favoured, and
//! how many promotions each bracket made. All of this is derivable from
//! the method's internal state, so the engine records it as it goes.

/// Diagnostics accumulated by [`crate::methods::AsyncHb`] during a run.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// `(|D_K| at refresh time, θ)` snapshots, in order.
    pub theta_history: Vec<(usize, Vec<f64>)>,
    /// Number of fresh configurations assigned to each bracket.
    pub bracket_starts: Vec<usize>,
    /// Number of promotions issued per bracket.
    pub bracket_promotions: Vec<usize>,
    /// Number of quarantined (permanently failed) jobs per bracket.
    pub bracket_failures: Vec<usize>,
}

impl Diagnostics {
    /// Creates empty diagnostics over `k` brackets.
    pub fn new(k: usize) -> Self {
        Self {
            theta_history: Vec::new(),
            bracket_starts: vec![0; k],
            bracket_promotions: vec![0; k],
            bracket_failures: vec![0; k],
        }
    }

    /// Records a θ refresh.
    pub fn record_theta(&mut self, n_full: usize, theta: &[f64]) {
        self.theta_history.push((n_full, theta.to_vec()));
    }

    /// Records a fresh configuration start in `bracket`.
    pub fn record_start(&mut self, bracket: usize) {
        self.bracket_starts[bracket] += 1;
    }

    /// Records a promotion in `bracket`.
    pub fn record_promotion(&mut self, bracket: usize) {
        self.bracket_promotions[bracket] += 1;
    }

    /// Records a quarantined job in `bracket`.
    pub fn record_failure(&mut self, bracket: usize) {
        self.bracket_failures[bracket] += 1;
    }

    /// Total quarantined jobs across all brackets.
    pub fn total_failures(&self) -> usize {
        self.bracket_failures.iter().sum()
    }

    /// The final θ snapshot, if any.
    pub fn final_theta(&self) -> Option<&[f64]> {
        self.theta_history.last().map(|(_, t)| t.as_slice())
    }

    /// Empirical bracket-selection distribution (fractions of starts).
    pub fn bracket_distribution(&self) -> Vec<f64> {
        let total: usize = self.bracket_starts.iter().sum();
        if total == 0 {
            return vec![0.0; self.bracket_starts.len()];
        }
        self.bracket_starts
            .iter()
            .map(|&n| n as f64 / total as f64)
            .collect()
    }

    /// Renders a compact multi-line report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "bracket starts:     {:?}\nbracket promotions: {:?}\n",
            self.bracket_starts, self.bracket_promotions
        ));
        if let Some(theta) = self.final_theta() {
            s.push_str("final theta:        [");
            for (i, t) in theta.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{t:.3}"));
            }
            s.push_str("]\n");
        }
        s.push_str(&format!(
            "theta refreshes:    {}\n",
            self.theta_history.len()
        ));
        if self.total_failures() > 0 {
            s.push_str(&format!(
                "bracket failures:   {:?}\n",
                self.bracket_failures
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut d = Diagnostics::new(4);
        d.record_start(0);
        d.record_start(0);
        d.record_start(2);
        d.record_promotion(0);
        d.record_theta(5, &[0.5, 0.3, 0.1, 0.1]);
        d.record_theta(8, &[0.6, 0.2, 0.1, 0.1]);
        d.record_failure(3);
        assert_eq!(d.bracket_starts, vec![2, 0, 1, 0]);
        assert_eq!(d.bracket_promotions, vec![1, 0, 0, 0]);
        assert_eq!(d.bracket_failures, vec![0, 0, 0, 1]);
        assert_eq!(d.total_failures(), 1);
        assert_eq!(d.final_theta().unwrap()[0], 0.6);
        assert_eq!(d.theta_history.len(), 2);
    }

    #[test]
    fn distribution_normalizes() {
        let mut d = Diagnostics::new(2);
        d.record_start(0);
        d.record_start(0);
        d.record_start(1);
        let dist = d.bracket_distribution();
        assert!((dist[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = Diagnostics::new(3);
        assert_eq!(d.bracket_distribution(), vec![0.0; 3]);
        assert!(d.final_theta().is_none());
    }

    #[test]
    fn report_mentions_everything() {
        let mut d = Diagnostics::new(2);
        d.record_start(1);
        d.record_theta(4, &[0.7, 0.3]);
        let r = d.report();
        assert!(r.contains("bracket starts"));
        assert!(r.contains("0.700"));
        assert!(r.contains("theta refreshes:    1"));
    }
}
