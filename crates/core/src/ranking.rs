//! Ranking-loss estimation of partial-evaluation precision (§4.1).
//!
//! For each resource level `i`, a base surrogate `M_i` is fit on `D_i` and
//! scored by how well it reproduces the *ordering* of the high-fidelity
//! measurements `D_K` (Eq. 1, counted miss-ranked pairs; the top-level
//! surrogate `M_K` is scored by 5-fold cross-validation so it cannot
//! trivially win by memorizing `D_K`). A bootstrap Monte-Carlo procedure
//! (the paper's MCMC step, Eq. 2) converts the losses into
//! `θ_i = P(level i has the least loss)` — the weights that drive both
//! bracket selection and the MFES ensemble.

use hypertune_space::ConfigSpace;
use hypertune_surrogate::{RandomForest, SurrogateModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::history::History;

/// Number of bootstrap samples `S` in Eq. 2.
pub const BOOTSTRAP_SAMPLES: usize = 100;

/// Cap on the number of `D_K` points used per bootstrap replicate, to
/// bound the `O(n²)` pair count as the history grows.
const MAX_BOOT_POINTS: usize = 64;

/// Minimum measurements a level needs before its surrogate participates.
pub const MIN_POINTS_PER_LEVEL: usize = 3;

/// Minimum complete evaluations before `θ` can be estimated at all.
pub const MIN_FULL_EVALS: usize = 4;

/// Eq. 1: number of pairs `(j, k)` whose predicted order disagrees with
/// the observed order (the exclusive-or in the paper). Ties in either
/// ranking count as ordered both ways and never disagree.
pub fn ranking_loss(preds: &[f64], ys: &[f64]) -> usize {
    debug_assert_eq!(preds.len(), ys.len());
    let n = ys.len();
    let mut loss = 0;
    for j in 0..n {
        for k in (j + 1)..n {
            let pred_less = preds[j] < preds[k];
            let obs_less = ys[j] < ys[k];
            // Skip exact ties, which carry no ordering information.
            if preds[j] == preds[k] || ys[j] == ys[k] {
                continue;
            }
            if pred_less != obs_less {
                loss += 1;
            }
        }
    }
    loss
}

/// Per-level predictions on the `D_K` configurations, the raw material of
/// the θ computation. `None` for levels without enough data.
struct LevelPredictions {
    /// `preds[i]` aligns with `ys`; `None` when level `i` is unfittable.
    preds: Vec<Option<Vec<f64>>>,
    /// Observed complete-evaluation targets.
    ys: Vec<f64>,
}

/// Computes `θ` (Eq. 2): the probability, under bootstrap resampling of
/// `D_K`, that each level's surrogate attains the least ranking loss.
///
/// Returns `None` until at least [`MIN_FULL_EVALS`] complete evaluations
/// exist. Levels whose surrogates cannot be fit get `θ_i = 0`.
pub fn compute_theta(history: &History, space: &ConfigSpace, seed: u64) -> Option<Vec<f64>> {
    let lp = level_predictions(history, space, seed)?;
    let k = lp.preds.len();
    let n = lp.ys.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda7a);
    let mut wins = vec![0usize; k];
    let boot_n = n.min(MAX_BOOT_POINTS);
    let mut idx = vec![0usize; boot_n];
    for _ in 0..BOOTSTRAP_SAMPLES {
        for slot in idx.iter_mut() {
            *slot = rng.gen_range(0..n);
        }
        let ys: Vec<f64> = idx.iter().map(|&i| lp.ys[i]).collect();
        let mut best_loss = usize::MAX;
        let mut best_levels: Vec<usize> = Vec::new();
        for (level, preds) in lp.preds.iter().enumerate() {
            let Some(preds) = preds else { continue };
            let p: Vec<f64> = idx.iter().map(|&i| preds[i]).collect();
            let loss = ranking_loss(&p, &ys);
            match loss.cmp(&best_loss) {
                std::cmp::Ordering::Less => {
                    best_loss = loss;
                    best_levels.clear();
                    best_levels.push(level);
                }
                std::cmp::Ordering::Equal => best_levels.push(level),
                std::cmp::Ordering::Greater => {}
            }
        }
        if let Some(&w) = pick_random(&best_levels, &mut rng) {
            wins[w] += 1;
        }
    }
    let total: usize = wins.iter().sum();
    if total == 0 {
        return None;
    }
    Some(wins.iter().map(|&w| w as f64 / total as f64).collect())
}

fn pick_random<'a, T>(xs: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

/// Fits the per-level base surrogates and evaluates them on the `D_K`
/// configurations; `M_K` itself is evaluated by 5-fold cross-validation.
fn level_predictions(
    history: &History,
    space: &ConfigSpace,
    seed: u64,
) -> Option<LevelPredictions> {
    let top = history.levels().max_level();
    let full = history.group(top);
    if full.len() < MIN_FULL_EVALS {
        return None;
    }
    let xs_full: Vec<Vec<f64>> = full.iter().map(|m| space.encode(&m.config)).collect();
    let ys: Vec<f64> = full.iter().map(|m| m.value).collect();

    let mut preds: Vec<Option<Vec<f64>>> = Vec::with_capacity(top + 1);
    for level in 0..top {
        if history.len_at(level) < MIN_POINTS_PER_LEVEL {
            preds.push(None);
            continue;
        }
        let (x, y) = history.training_data_capped(level, space, crate::sampler::bo::MAX_TRAIN_POINTS);
        let mut rf = RandomForest::new(seed ^ (level as u64) << 8);
        if rf.fit(&x, &y).is_err() {
            preds.push(None);
            continue;
        }
        let p: Option<Vec<f64>> = xs_full
            .iter()
            .map(|x| rf.predict(x).ok().map(|p| p.mean))
            .collect();
        preds.push(p);
    }
    preds.push(cross_val_predictions(&xs_full, &ys, seed));
    Some(LevelPredictions { preds, ys })
}

/// 5-fold cross-validated predictions of the top-level surrogate on its
/// own training data (the paper's treatment of `M_K` in Eq. 1).
fn cross_val_predictions(xs: &[Vec<f64>], ys: &[f64], seed: u64) -> Option<Vec<f64>> {
    let n = xs.len();
    if n < MIN_FULL_EVALS {
        return None;
    }
    let folds = 5.min(n);
    let mut out = vec![0.0; n];
    for fold in 0..folds {
        let train_idx: Vec<usize> = (0..n).filter(|i| i % folds != fold).collect();
        let test_idx: Vec<usize> = (0..n).filter(|i| i % folds == fold).collect();
        if train_idx.is_empty() || test_idx.is_empty() {
            continue;
        }
        let tx: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
        let ty: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();
        let mut rf = RandomForest::new(seed ^ 0xcf ^ (fold as u64) << 16);
        rf.fit(&tx, &ty).ok()?;
        for &i in &test_idx {
            out[i] = rf.predict(&xs[i]).ok()?.mean;
        }
    }
    Some(out)
}

/// Caches `θ` across calls, recomputing only after enough new complete
/// evaluations have arrived (refitting `K` forests per completion would
/// dominate the optimization overhead otherwise).
#[derive(Debug, Clone)]
pub struct ThetaTracker {
    seed: u64,
    last_nk: usize,
    theta: Option<Vec<f64>>,
    /// Recompute after this many new complete evaluations.
    refresh_every: usize,
}

impl ThetaTracker {
    /// Creates a tracker that refreshes every 3 complete evaluations.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            last_nk: 0,
            theta: None,
            refresh_every: 3,
        }
    }

    /// The latest `θ`, if estimable.
    pub fn theta(&self) -> Option<&[f64]> {
        self.theta.as_deref()
    }

    /// Refreshes `θ` when due; returns the new value only when it changed.
    pub fn maybe_refresh(
        &mut self,
        history: &History,
        space: &ConfigSpace,
    ) -> Option<Vec<f64>> {
        let nk = history.len_at(history.levels().max_level());
        if nk < MIN_FULL_EVALS || nk < self.last_nk + self.refresh_every {
            return None;
        }
        self.last_nk = nk;
        let theta = compute_theta(history, space, self.seed)?;
        self.theta = Some(theta.clone());
        Some(theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Measurement;
    use crate::levels::ResourceLevels;
    use hypertune_space::{Config, ParamValue};

    #[test]
    fn loss_zero_for_perfect_order() {
        assert_eq!(ranking_loss(&[1.0, 2.0, 3.0], &[0.1, 0.2, 0.3]), 0);
    }

    #[test]
    fn loss_max_for_reversed_order() {
        // 3 points → 3 pairs, all misordered.
        assert_eq!(ranking_loss(&[3.0, 2.0, 1.0], &[0.1, 0.2, 0.3]), 3);
    }

    #[test]
    fn loss_partial() {
        // Only the (1.0 vs 0.5) pair against (0.2 vs 0.3) disagrees…
        let preds = [1.0, 0.5, 2.0];
        let ys = [0.2, 0.3, 0.4];
        // pairs: (0,1): pred 1.0>0.5 vs obs 0.2<0.3 → disagree;
        //        (0,2): 1.0<2.0 vs 0.2<0.4 → agree;
        //        (1,2): 0.5<2.0 vs 0.3<0.4 → agree.
        assert_eq!(ranking_loss(&preds, &ys), 1);
    }

    #[test]
    fn ties_carry_no_information() {
        assert_eq!(ranking_loss(&[1.0, 1.0], &[0.1, 0.2]), 0);
        assert_eq!(ranking_loss(&[1.0, 2.0], &[0.1, 0.1]), 0);
    }

    fn history_with_structure(informative_low: bool) -> (History, ConfigSpace) {
        // 1-D space; true objective y = x at full fidelity. The low
        // fidelity either matches (informative) or is anti-correlated.
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        for i in 0..30 {
            let x = i as f64 / 29.0;
            let config = Config::new(vec![ParamValue::Float(x)]);
            let low_val = if informative_low { x } else { 1.0 - x };
            h.record(Measurement {
                config: config.clone(),
                level: 0,
                resource: 1.0,
                value: low_val,
                test_value: low_val,
                cost: 1.0,
                finished_at: i as f64,
            });
            if i % 2 == 0 {
                h.record(Measurement {
                    config,
                    level: 3,
                    resource: 27.0,
                    value: x,
                    test_value: x,
                    cost: 27.0,
                    finished_at: i as f64 + 0.5,
                });
            }
        }
        (h, space)
    }

    #[test]
    fn informative_low_fidelity_earns_weight() {
        let (h, space) = history_with_structure(true);
        let theta = compute_theta(&h, &space, 1).unwrap();
        assert_eq!(theta.len(), 4);
        // Level 0 perfectly predicts the full-fidelity ordering and has
        // 2x the data; it should earn substantial weight.
        assert!(theta[0] > 0.2, "theta {theta:?}");
        // Levels 1 and 2 have no data at all.
        assert_eq!(theta[1], 0.0);
        assert_eq!(theta[2], 0.0);
        let total: f64 = theta.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn misleading_low_fidelity_loses_weight() {
        let (h, space) = history_with_structure(false);
        let theta = compute_theta(&h, &space, 1).unwrap();
        // The anti-correlated level must lose to the CV'd top level.
        assert!(
            theta[0] < theta[3],
            "misleading level should be downweighted: {theta:?}"
        );
        assert!(theta[3] > 0.8, "theta {theta:?}");
    }

    #[test]
    fn too_few_full_evals_returns_none() {
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let mut h = History::new(ResourceLevels::new(27.0, 3));
        for i in 0..3 {
            h.record(Measurement {
                config: Config::new(vec![ParamValue::Float(i as f64 / 3.0)]),
                level: 3,
                resource: 27.0,
                value: i as f64,
                test_value: i as f64,
                cost: 1.0,
                finished_at: i as f64,
            });
        }
        assert!(compute_theta(&h, &space, 0).is_none());
    }

    #[test]
    fn theta_deterministic_per_seed() {
        let (h, space) = history_with_structure(true);
        assert_eq!(compute_theta(&h, &space, 7), compute_theta(&h, &space, 7));
    }
}
