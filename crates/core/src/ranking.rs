//! Ranking-loss estimation of partial-evaluation precision (§4.1).
//!
//! For each resource level `i`, a base surrogate `M_i` is fit on `D_i` and
//! scored by how well it reproduces the *ordering* of the high-fidelity
//! measurements `D_K` (Eq. 1, counted miss-ranked pairs; the top-level
//! surrogate `M_K` is scored by 5-fold cross-validation so it cannot
//! trivially win by memorizing `D_K`). A bootstrap Monte-Carlo procedure
//! (the paper's MCMC step, Eq. 2) converts the losses into
//! `θ_i = P(level i has the least loss)` — the weights that drive both
//! bracket selection and the MFES ensemble.
//!
//! This module sits on the tuner's hot path — θ is re-estimated as the
//! history grows, and each estimate fits `K` forests and counts ordered
//! pairs over `S` bootstrap replicates — so it is built for speed:
//!
//! - [`ranking_loss`] counts discordant pairs in `O(n log n)` by sorting
//!   on predictions and merge-counting strict inversions in the observed
//!   targets (the naive `O(n²)` scan survives as
//!   [`ranking_loss_naive`], the reference the property tests check
//!   against);
//! - per-level surrogates are cached in [`ThetaModelCache`] keyed by the
//!   level's measurement count, so append-only history growth at other
//!   levels never triggers a refit — and because each fit's seed depends
//!   only on `(seed, level)`, a cache hit is bit-identical to a refit;
//! - level fits and cross-validation folds run on scoped threads when the
//!   machine has more than one core, and all level predictions go through
//!   the forest's tree-major batch path.

use std::collections::HashMap;

use hypertune_space::ConfigSpace;
use hypertune_surrogate::{RandomForest, SurrogateModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::history::HistoryRead;

/// Number of bootstrap samples `S` in Eq. 2.
pub const BOOTSTRAP_SAMPLES: usize = 100;

/// Cap on the number of `D_K` points used per bootstrap replicate, to
/// bound the pair count as the history grows.
const MAX_BOOT_POINTS: usize = 64;

/// Minimum measurements a level needs before its surrogate participates.
pub const MIN_POINTS_PER_LEVEL: usize = 3;

/// Minimum complete evaluations before `θ` can be estimated at all.
pub const MIN_FULL_EVALS: usize = 4;

fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

/// Eq. 1: number of pairs `(j, k)` whose predicted order disagrees with
/// the observed order (the exclusive-or in the paper). Ties in either
/// ranking carry no ordering information and never disagree. Points with
/// a NaN or infinite prediction or target carry no *usable* ordering
/// information either — a crashed trial's poisoned value would otherwise
/// decide pair orderings arbitrarily — so every pair touching one is
/// skipped (in both the fast and the naive path, keeping them
/// bit-identical).
///
/// Runs in `O(n log n)`: indices are sorted by `(pred, y)` and the
/// discordant pairs are exactly the strict inversions of the observed
/// targets in that order — pred-tied pairs sort by `y` ascending (no
/// inversion), y-tied pairs are excluded by the strict comparison, and
/// every other pair inverts iff the two rankings disagree. Below a small
/// cutoff (`SMALL_LOSS_CUTOFF`) the quadratic loop is used instead: it allocates
/// nothing and beats the sort's constant factor on tiny inputs (the θ
/// bootstrap calls this hundreds of times per refresh); above it, sort
/// buffers come from a thread-local scratch, so steady-state calls do not
/// allocate either.
pub fn ranking_loss(preds: &[f64], ys: &[f64]) -> usize {
    debug_assert_eq!(preds.len(), ys.len());
    let n = ys.len();
    if n < SMALL_LOSS_CUTOFF {
        return ranking_loss_naive(preds, ys);
    }
    thread_local! {
        static BUFFERS: std::cell::RefCell<(Vec<usize>, Vec<f64>, Vec<f64>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
    }
    BUFFERS.with(|cell| {
        let (order, seq, scratch) = &mut *cell.borrow_mut();
        order.clear();
        order.extend((0..n).filter(|&i| preds[i].is_finite() && ys[i].is_finite()));
        let n = order.len();
        // Unstable sort: value-equal (pred, y) keys are interchangeable.
        order.sort_unstable_by(|&a, &b| {
            cmp_f64(preds[a], preds[b]).then_with(|| cmp_f64(ys[a], ys[b]))
        });
        seq.clear();
        seq.extend(order.iter().map(|&i| ys[i]));
        scratch.clear();
        scratch.resize(n, 0.0);
        count_strict_inversions(seq, scratch)
    })
}

/// Crossover below which the quadratic pair loop outruns the sort-based
/// inversion count (measured on the θ bootstrap's capped replicates).
const SMALL_LOSS_CUTOFF: usize = 33;

/// Reference `O(n²)` implementation of [`ranking_loss`], kept for the
/// property tests that pin the fast path to the paper's pair semantics.
pub fn ranking_loss_naive(preds: &[f64], ys: &[f64]) -> usize {
    debug_assert_eq!(preds.len(), ys.len());
    let n = ys.len();
    let mut loss = 0;
    for j in 0..n {
        if !preds[j].is_finite() || !ys[j].is_finite() {
            continue;
        }
        for k in (j + 1)..n {
            if !preds[k].is_finite() || !ys[k].is_finite() {
                continue;
            }
            let pred_less = preds[j] < preds[k];
            let obs_less = ys[j] < ys[k];
            // Skip exact ties, which carry no ordering information.
            if preds[j] == preds[k] || ys[j] == ys[k] {
                continue;
            }
            if pred_less != obs_less {
                loss += 1;
            }
        }
    }
    loss
}

/// Merge-sort count of pairs `(a, b)` with `a` before `b` and
/// `seq[a] > seq[b]` strictly. Sorts `seq` in place; `scratch` must be the
/// same length.
fn count_strict_inversions(seq: &mut [f64], scratch: &mut [f64]) -> usize {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left_half, right_half) = seq.split_at_mut(mid);
    let (scratch_l, scratch_r) = scratch.split_at_mut(mid);
    let mut inversions = count_strict_inversions(left_half, scratch_l)
        + count_strict_inversions(right_half, scratch_r);
    // Merge the sorted halves, counting how many left elements remain
    // (all strictly greater) each time a right element wins.
    let mut i = 0;
    let mut j = 0;
    for slot in scratch.iter_mut().take(n) {
        if i < mid && (j >= n - mid || left_half[i] <= right_half[j]) {
            *slot = left_half[i];
            i += 1;
        } else {
            inversions += mid - i;
            *slot = right_half[j];
            j += 1;
        }
    }
    seq.copy_from_slice(&scratch[..n]);
    inversions
}

/// Runs `f(0), .., f(count - 1)` — on scoped worker threads when the
/// machine has more than one core — returning results in index order.
/// Shared with the samplers for their per-level surrogate fits.
pub(crate) fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(count.max(1));
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let chunk = count.div_ceil(threads);
    let f = &f;
    let parts: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    ((w * chunk)..((w + 1) * chunk).min(count))
                        .map(f)
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("level fit worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Per-level predictions on the `D_K` configurations, the raw material of
/// the θ computation. `None` for levels without enough data.
struct LevelPredictions {
    /// `preds[i]` aligns with `ys`; `None` when level `i` is unfittable.
    preds: Vec<Option<Vec<f64>>>,
    /// Observed complete-evaluation targets.
    ys: Vec<f64>,
}

/// Caches the fitted per-level surrogates (and the top level's
/// cross-validated predictions) between θ computations.
///
/// History is append-only, so a level's measurement count identifies its
/// training set exactly; each entry is keyed by the count it was fitted
/// at and refit only when that count changes. Fit seeds depend only on
/// `(seed, level)` — never on call order — so a cache hit produces the
/// same θ, bit for bit, as a from-scratch recomputation.
#[derive(Debug, Clone, Default)]
pub struct ThetaModelCache {
    /// `level -> (measurement count when fitted, fitted forest)`.
    models: HashMap<usize, (usize, RandomForest)>,
    /// `level -> (fit count, full-level count, predictions on D_K)` —
    /// pure function of the cached model and `D_K`, so valid while both
    /// counts match.
    preds: HashMap<usize, (usize, usize, Vec<f64>)>,
    /// `(full-level count when computed, CV predictions)`.
    cv: Option<(usize, Vec<f64>)>,
}

impl ThetaModelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached level surrogates (test hook).
    pub fn cached_levels(&self) -> usize {
        self.models.len()
    }
}

/// Computes `θ` (Eq. 2): the probability, under bootstrap resampling of
/// `D_K`, that each level's surrogate attains the least ranking loss.
///
/// Returns `None` until at least [`MIN_FULL_EVALS`] complete evaluations
/// exist. Levels whose surrogates cannot be fit get `θ_i = 0`.
pub fn compute_theta(
    history: &dyn HistoryRead,
    space: &ConfigSpace,
    seed: u64,
) -> Option<Vec<f64>> {
    compute_theta_cached(history, space, seed, &mut ThetaModelCache::new())
}

/// [`compute_theta`] reusing fitted level surrogates from `cache`; callers
/// that re-estimate θ as the history grows (the [`ThetaTracker`]) only pay
/// for levels whose data actually changed.
pub fn compute_theta_cached(
    history: &dyn HistoryRead,
    space: &ConfigSpace,
    seed: u64,
    cache: &mut ThetaModelCache,
) -> Option<Vec<f64>> {
    let lp = level_predictions(history, space, seed, cache)?;
    let k = lp.preds.len();
    let n = lp.ys.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda7a);
    let mut wins = vec![0usize; k];
    let boot_n = n.min(MAX_BOOT_POINTS);
    let mut idx = vec![0usize; boot_n];
    let mut ys = vec![0.0; boot_n];
    let mut p = vec![0.0; boot_n];
    for _ in 0..BOOTSTRAP_SAMPLES {
        for slot in idx.iter_mut() {
            *slot = rng.gen_range(0..n);
        }
        for (slot, &i) in ys.iter_mut().zip(&idx) {
            *slot = lp.ys[i];
        }
        let mut best_loss = usize::MAX;
        let mut best_levels: Vec<usize> = Vec::new();
        for (level, preds) in lp.preds.iter().enumerate() {
            let Some(preds) = preds else { continue };
            for (slot, &i) in p.iter_mut().zip(&idx) {
                *slot = preds[i];
            }
            let loss = ranking_loss(&p, &ys);
            match loss.cmp(&best_loss) {
                std::cmp::Ordering::Less => {
                    best_loss = loss;
                    best_levels.clear();
                    best_levels.push(level);
                }
                std::cmp::Ordering::Equal => best_levels.push(level),
                std::cmp::Ordering::Greater => {}
            }
        }
        if let Some(&w) = pick_random(&best_levels, &mut rng) {
            wins[w] += 1;
        }
    }
    let total: usize = wins.iter().sum();
    if total == 0 {
        return None;
    }
    Some(wins.iter().map(|&w| w as f64 / total as f64).collect())
}

fn pick_random<'a, T>(xs: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

/// Fits the per-level base surrogates (reusing `cache` where the data is
/// unchanged) and evaluates them on the `D_K` configurations; `M_K` itself
/// is evaluated by 5-fold cross-validation.
fn level_predictions(
    history: &dyn HistoryRead,
    space: &ConfigSpace,
    seed: u64,
    cache: &mut ThetaModelCache,
) -> Option<LevelPredictions> {
    let top = history.levels().max_level();
    let full = history.group(top);
    if full.len() < MIN_FULL_EVALS {
        return None;
    }
    let xs_full: Vec<Vec<f64>> = full.iter().map(|m| space.encode(&m.config)).collect();
    let ys: Vec<f64> = full.iter().map(|m| m.value).collect();

    // Fit the lower levels whose data changed since the cache entry was
    // made — in parallel when cores allow; seeds depend only on
    // `(seed, level)` so the result never depends on which levels hit.
    let stale: Vec<usize> = (0..top)
        .filter(|&level| {
            history.len_at(level) >= MIN_POINTS_PER_LEVEL
                && cache.models.get(&level).map(|(n, _)| *n) != Some(history.len_at(level))
        })
        .collect();
    let refitted: Vec<(usize, Option<RandomForest>)> = run_indexed(stale.len(), |i| {
        let level = stale[i];
        let (x, y) =
            history.training_data_capped(level, space, crate::sampler::bo::MAX_TRAIN_POINTS);
        let mut rf = RandomForest::new(seed ^ (level as u64) << 8);
        match rf.fit(&x, &y) {
            Ok(()) => (level, Some(rf)),
            Err(_) => (level, None),
        }
    });
    for (level, rf) in refitted {
        match rf {
            Some(rf) => {
                cache.models.insert(level, (history.len_at(level), rf));
            }
            None => {
                cache.models.remove(&level);
            }
        }
    }

    let nk = full.len();
    let mut preds: Vec<Option<Vec<f64>>> = Vec::with_capacity(top + 1);
    for level in 0..top {
        let n_level = history.len_at(level);
        if n_level < MIN_POINTS_PER_LEVEL {
            preds.push(None);
            continue;
        }
        let p = match cache.preds.get(&level) {
            Some((pn, pnk, p)) if *pn == n_level && *pnk == nk => Some(p.clone()),
            _ => {
                let fresh: Option<Vec<f64>> = cache.models.get(&level).and_then(|(_, rf)| {
                    rf.predict_batch(&xs_full)
                        .ok()
                        .map(|ps| ps.into_iter().map(|p| p.mean).collect())
                });
                match &fresh {
                    Some(v) => {
                        cache.preds.insert(level, (n_level, nk, v.clone()));
                    }
                    None => {
                        cache.preds.remove(&level);
                    }
                }
                fresh
            }
        };
        preds.push(p);
    }

    if cache.cv.as_ref().map(|(n, _)| *n) != Some(nk) {
        cache.cv = cross_val_predictions(&xs_full, &ys, seed).map(|p| (nk, p));
    }
    preds.push(cache.cv.as_ref().map(|(_, p)| p.clone()));
    Some(LevelPredictions { preds, ys })
}

/// 5-fold cross-validated predictions of the top-level surrogate on its
/// own training data (the paper's treatment of `M_K` in Eq. 1). Folds are
/// independent and run on scoped threads when cores allow.
fn cross_val_predictions(xs: &[Vec<f64>], ys: &[f64], seed: u64) -> Option<Vec<f64>> {
    let n = xs.len();
    if n < MIN_FULL_EVALS {
        return None;
    }
    let folds = 5.min(n);
    let fold_preds: Vec<Option<Vec<(usize, f64)>>> = run_indexed(folds, |fold| {
        let train_idx: Vec<usize> = (0..n).filter(|i| i % folds != fold).collect();
        let test_idx: Vec<usize> = (0..n).filter(|i| i % folds == fold).collect();
        if train_idx.is_empty() || test_idx.is_empty() {
            return Some(Vec::new());
        }
        let tx: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
        let ty: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();
        let mut rf = RandomForest::new(seed ^ 0xcf ^ (fold as u64) << 16);
        rf.fit(&tx, &ty).ok()?;
        let test_x: Vec<Vec<f64>> = test_idx.iter().map(|&i| xs[i].clone()).collect();
        let ps = rf.predict_batch(&test_x).ok()?;
        Some(
            test_idx
                .into_iter()
                .zip(ps.into_iter().map(|p| p.mean))
                .collect(),
        )
    });
    let mut out = vec![0.0; n];
    for fp in fold_preds {
        for (i, mean) in fp? {
            out[i] = mean;
        }
    }
    Some(out)
}

/// Caches `θ` across calls, recomputing only after enough new complete
/// evaluations have arrived (refitting `K` forests per completion would
/// dominate the optimization overhead otherwise). Holds a
/// [`ThetaModelCache`] so even a due refresh only refits the levels whose
/// data changed.
#[derive(Debug, Clone)]
pub struct ThetaTracker {
    seed: u64,
    last_nk: usize,
    theta: Option<Vec<f64>>,
    /// Recompute after this many new complete evaluations.
    refresh_every: usize,
    cache: ThetaModelCache,
}

impl ThetaTracker {
    /// Creates a tracker that refreshes every 3 complete evaluations.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            last_nk: 0,
            theta: None,
            refresh_every: 3,
            cache: ThetaModelCache::new(),
        }
    }

    /// The latest `θ`, if estimable.
    pub fn theta(&self) -> Option<&[f64]> {
        self.theta.as_deref()
    }

    /// Refreshes `θ` when due; returns the new value only when it changed.
    pub fn maybe_refresh(
        &mut self,
        history: &dyn HistoryRead,
        space: &ConfigSpace,
    ) -> Option<Vec<f64>> {
        let nk = history.len_at(history.levels().max_level());
        if nk < MIN_FULL_EVALS || nk < self.last_nk + self.refresh_every {
            return None;
        }
        self.last_nk = nk;
        let theta = compute_theta_cached(history, space, self.seed, &mut self.cache)?;
        self.theta = Some(theta.clone());
        Some(theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, Measurement};
    use crate::levels::ResourceLevels;
    use hypertune_space::{Config, ParamValue};

    #[test]
    fn loss_zero_for_perfect_order() {
        assert_eq!(ranking_loss(&[1.0, 2.0, 3.0], &[0.1, 0.2, 0.3]), 0);
    }

    #[test]
    fn loss_max_for_reversed_order() {
        // 3 points → 3 pairs, all misordered.
        assert_eq!(ranking_loss(&[3.0, 2.0, 1.0], &[0.1, 0.2, 0.3]), 3);
    }

    #[test]
    fn loss_partial() {
        // Only the (1.0 vs 0.5) pair against (0.2 vs 0.3) disagrees…
        let preds = [1.0, 0.5, 2.0];
        let ys = [0.2, 0.3, 0.4];
        // pairs: (0,1): pred 1.0>0.5 vs obs 0.2<0.3 → disagree;
        //        (0,2): 1.0<2.0 vs 0.2<0.4 → agree;
        //        (1,2): 0.5<2.0 vs 0.3<0.4 → agree.
        assert_eq!(ranking_loss(&preds, &ys), 1);
    }

    #[test]
    fn ties_carry_no_information() {
        assert_eq!(ranking_loss(&[1.0, 1.0], &[0.1, 0.2]), 0);
        assert_eq!(ranking_loss(&[1.0, 2.0], &[0.1, 0.1]), 0);
    }

    #[test]
    fn fast_loss_matches_naive_on_fixed_cases() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.0, 2.0, 3.0], &[0.1, 0.2, 0.3]),
            (&[3.0, 2.0, 1.0], &[0.1, 0.2, 0.3]),
            (&[1.0, 0.5, 2.0], &[0.2, 0.3, 0.4]),
            (&[1.0, 1.0, 2.0, 2.0], &[0.4, 0.3, 0.2, 0.1]),
            (&[0.5, 0.5, 0.5], &[1.0, 2.0, 3.0]),
            (&[], &[]),
            (&[1.0], &[1.0]),
        ];
        for (preds, ys) in cases {
            assert_eq!(
                ranking_loss(preds, ys),
                ranking_loss_naive(preds, ys),
                "preds {preds:?} ys {ys:?}"
            );
        }
    }

    #[test]
    fn nonfinite_points_carry_no_information() {
        // The NaN/Inf point would have inverted against every neighbour;
        // skipping it leaves the clean pairs' loss unchanged.
        assert_eq!(ranking_loss(&[1.0, f64::NAN, 3.0], &[0.1, 0.0, 0.3]), 0);
        assert_eq!(
            ranking_loss(&[1.0, 2.0, 3.0], &[0.1, f64::INFINITY, 0.3]),
            0
        );
        assert_eq!(
            ranking_loss(&[3.0, f64::NAN, 1.0], &[0.1, 0.2, 0.3]),
            1,
            "remaining finite pair still counts"
        );
        // Fast and naive paths agree on mixed inputs, above and below
        // the small-input cutoff.
        let n = 64;
        let preds: Vec<f64> = (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    f64::NAN
                } else {
                    ((i * 37) % n) as f64
                }
            })
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| {
                if i % 11 == 0 {
                    f64::NEG_INFINITY
                } else {
                    ((i * 13) % n) as f64
                }
            })
            .collect();
        assert_eq!(ranking_loss(&preds, &ys), ranking_loss_naive(&preds, &ys));
        assert_eq!(
            ranking_loss(&preds[..20], &ys[..20]),
            ranking_loss_naive(&preds[..20], &ys[..20])
        );
    }

    fn history_with_structure(informative_low: bool) -> (History, ConfigSpace) {
        // 1-D space; true objective y = x at full fidelity. The low
        // fidelity either matches (informative) or is anti-correlated.
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        for i in 0..30 {
            let x = i as f64 / 29.0;
            let config = Config::new(vec![ParamValue::Float(x)]);
            let low_val = if informative_low { x } else { 1.0 - x };
            h.record(Measurement {
                config: config.clone(),
                level: 0,
                resource: 1.0,
                value: low_val,
                test_value: low_val,
                cost: 1.0,
                finished_at: i as f64,
            });
            if i % 2 == 0 {
                h.record(Measurement {
                    config,
                    level: 3,
                    resource: 27.0,
                    value: x,
                    test_value: x,
                    cost: 27.0,
                    finished_at: i as f64 + 0.5,
                });
            }
        }
        (h, space)
    }

    #[test]
    fn informative_low_fidelity_earns_weight() {
        let (h, space) = history_with_structure(true);
        let theta = compute_theta(&h, &space, 1).unwrap();
        assert_eq!(theta.len(), 4);
        // Level 0 perfectly predicts the full-fidelity ordering and has
        // 2x the data; it should earn substantial weight.
        assert!(theta[0] > 0.2, "theta {theta:?}");
        // Levels 1 and 2 have no data at all.
        assert_eq!(theta[1], 0.0);
        assert_eq!(theta[2], 0.0);
        let total: f64 = theta.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn misleading_low_fidelity_loses_weight() {
        let (h, space) = history_with_structure(false);
        let theta = compute_theta(&h, &space, 1).unwrap();
        // The anti-correlated level must lose to the CV'd top level.
        assert!(
            theta[0] < theta[3],
            "misleading level should be downweighted: {theta:?}"
        );
        assert!(theta[3] > 0.8, "theta {theta:?}");
    }

    #[test]
    fn too_few_full_evals_returns_none() {
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let mut h = History::new(ResourceLevels::new(27.0, 3));
        for i in 0..3 {
            h.record(Measurement {
                config: Config::new(vec![ParamValue::Float(i as f64 / 3.0)]),
                level: 3,
                resource: 27.0,
                value: i as f64,
                test_value: i as f64,
                cost: 1.0,
                finished_at: i as f64,
            });
        }
        assert!(compute_theta(&h, &space, 0).is_none());
    }

    #[test]
    fn theta_deterministic_per_seed() {
        let (h, space) = history_with_structure(true);
        assert_eq!(compute_theta(&h, &space, 7), compute_theta(&h, &space, 7));
    }

    #[test]
    fn cached_theta_matches_uncached() {
        let (h, space) = history_with_structure(true);
        let mut cache = ThetaModelCache::new();
        let warm = compute_theta_cached(&h, &space, 7, &mut cache);
        assert!(cache.cached_levels() > 0);
        // Second call hits the cache for every level; θ must be identical.
        let hit = compute_theta_cached(&h, &space, 7, &mut cache);
        let cold = compute_theta(&h, &space, 7);
        assert_eq!(warm, cold);
        assert_eq!(hit, cold);
    }

    #[test]
    fn cache_refits_only_changed_levels() {
        let (mut h, space) = history_with_structure(true);
        let mut cache = ThetaModelCache::new();
        compute_theta_cached(&h, &space, 7, &mut cache).unwrap();
        // Append at level 0 only: its entry must refresh, and the cached
        // result must still match a from-scratch computation.
        h.record(Measurement {
            config: Config::new(vec![ParamValue::Float(0.33)]),
            level: 0,
            resource: 1.0,
            value: 0.33,
            test_value: 0.33,
            cost: 1.0,
            finished_at: 99.0,
        });
        let cached = compute_theta_cached(&h, &space, 7, &mut cache);
        let cold = compute_theta(&h, &space, 7);
        assert_eq!(cached, cold);
    }
}
