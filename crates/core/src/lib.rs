//! The Hyper-Tune framework: schedulers, resource allocation, and
//! multi-fidelity optimization (the paper's primary contribution), plus
//! every baseline method it compares against.
//!
//! # Architecture (mirrors Figure 3 of the paper)
//!
//! An iteration of Hyper-Tune runs four steps:
//!
//! 1. the **resource allocator** ([`allocator::BracketSelector`]) picks
//!    the initial training resource `r₁` — i.e. a Hyperband bracket —
//!    using the learned precision-vs-cost weights `w = normalize(c ∘ θ)`;
//! 2. the **multi-fidelity optimizer** ([`sampler::MfesSampler`]) samples
//!    a configuration for each idle worker, combining the per-level base
//!    surrogates with the MFES ensemble (Eq. 3) and imputing pending
//!    evaluations with the median of `D_K` (Algorithm 2);
//! 3. the **evaluation scheduler** ([`bracket::AsyncBracket`] with the
//!    delay condition — D-ASHA, Algorithm 1) runs evaluations
//!    asynchronously and decides promotions;
//! 4. measurements flow back into the [`history::History`], updating both
//!    the allocator's `θ` (via [`ranking`]) and the optimizer.
//!
//! All methods implement the [`method::Method`] trait and are driven by
//! [`runner::run`] against any [`hypertune_benchmarks::Benchmark`] on a
//! simulated or real cluster. Failed evaluations (when fault injection is
//! on) flow through the bounded [`runner::RetryPolicy`] and are
//! quarantined as `Failed` outcomes after exhausting their retries;
//! [`runner::run_checkpointed`] and [`runner::resume`] give long runs
//! crash-safe, bit-identical restartability.
//!
//! # Module map
//!
//! | Module | Role |
//! |---|---|
//! | [`method`] | The `Method` trait: `next_job` / `on_result`, quarantine semantics |
//! | [`methods`] | Hyper-Tune + all baselines, behind [`MethodKind`] |
//! | [`runner`] | Simulated-cluster driver: budget loop, faults, retries, checkpoint/resume |
//! | [`runner_threaded`] | The same loop on real executors: OS threads or TCP workers |
//! | [`history`] | Per-level measurement store and incumbent tracking |
//! | [`levels`] | The geometric resource ladder `r₀ < r₁ < … < R` |
//! | [`bracket`] | Sync/async successive-halving rung bookkeeping (D-ASHA) |
//! | [`allocator`] | θ-weighted bracket selection (§4.1) |
//! | [`sampler`] | Random / BO / MFES configuration samplers (§4.3) |
//! | [`ranking`] | Cross-level ranking loss behind θ |
//! | [`lce`] | Learning-curve extrapolation for the LCE-Stop baseline |
//! | [`persist`] | Checkpoints and write-ahead run snapshots |
//! | [`tenant`] | Per-study runtime state for the multi-tenant service |
//! | [`breaker`] | Quarantine-storm circuit breaker (graceful degradation) |
//! | [`diagnostics`] | θ history, bracket starts/promotions/failures |
//!
//! # Baselines
//!
//! [`methods`] provides the paper's ten baselines (§5.1): A-Random,
//! Batch-BO, A-BO, SHA, ASHA, Hyperband, A-Hyperband, BOHB, A-BOHB,
//! MFES-HB — plus A-REA from §5.2 and the ablation variants of §5.7
//! (Hyper-Tune without bracket selection / D-ASHA / MFES).

pub mod allocator;
pub mod bracket;
pub mod breaker;
pub mod diagnostics;
pub mod history;
pub mod lce;
pub mod levels;
pub mod method;
pub mod methods;
pub(crate) mod pending;
pub mod persist;
pub mod ranking;
pub mod runner;
pub mod runner_threaded;
pub mod sampler;
pub mod shared;
pub mod tenant;

pub use breaker::{Breaker, BreakerConfig, BreakerTransition};
pub use diagnostics::{failure_kind, Diagnostics, FailureCounts};
pub use history::{top_indices_uncached, History, HistoryRead, Measurement};
pub use levels::ResourceLevels;
pub use method::{JobSpec, Method, MethodContext, Outcome, OutcomeStatus};
pub use methods::MethodKind;
pub use persist::{Checkpoint, RunRecord, RunSnapshot, SubmissionRecord, WalWriter};
pub use runner::{
    resume, run, run_checkpointed, CheckpointPolicy, ResumeError, RetryPolicy, RunConfig,
    RunResult, SpeculationConfig,
};
pub use runner_threaded::{
    run_distributed, run_threaded, ThreadedJob, ThreadedRunConfig, ThreadedRunResult,
};
pub use shared::{HistoryView, ShardedPending, SharedHistory};
pub use tenant::StudyRuntime;
