//! Configuration samplers: the paper's generic optimizer abstraction
//! (§4.3) behind a single trait.
//!
//! A [`Sampler`] proposes the next configuration to evaluate given the
//! multi-fidelity history and the set of *pending* configurations other
//! workers are still evaluating. All model-based samplers implement
//! Algorithm 2's algorithm-agnostic parallel wrapper: pending configs are
//! imputed with the median observed performance before refitting, so a
//! sequential BO method transparently supports sync/async parallelism.
//!
//! Implementations:
//! - [`RandomSampler`] — uniform random search;
//! - [`bo::BoSampler`] — single-fidelity Bayesian optimization on the
//!   highest level with enough data (the BOHB recipe);
//! - [`mfes::MfesSampler`] — the MFES ensemble over all levels (Eq. 3),
//!   Hyper-Tune's default optimizer;
//! - [`tpe::TpeSampler`] — the Tree-structured Parzen Estimator of the
//!   original BOHB, demonstrating drop-in optimizer replacement.

pub mod bo;
pub mod mfes;
pub mod tpe;

use hypertune_space::Config;

use crate::method::MethodContext;

pub use bo::BoSampler;
pub use mfes::MfesSampler;
pub use tpe::TpeSampler;

/// A configuration-proposal strategy; see the module docs.
pub trait Sampler {
    /// Display name fragment (e.g. `"BO"`), used to compose method names.
    fn name(&self) -> &str;

    /// Proposes the next configuration to evaluate.
    fn sample(&mut self, ctx: &mut MethodContext<'_>) -> Config;

    /// Receives fresh precision weights `θ` from the owner (only the
    /// multi-fidelity sampler uses them).
    fn set_theta(&mut self, _theta: &[f64]) {}
}

/// Uniform random search.
#[derive(Debug, Clone, Default)]
pub struct RandomSampler;

impl Sampler for RandomSampler {
    fn name(&self) -> &str {
        "Random"
    }

    fn sample(&mut self, ctx: &mut MethodContext<'_>) -> Config {
        ctx.space.sample(ctx.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::levels::ResourceLevels;
    use hypertune_space::ConfigSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_sampler_draws_valid_configs() {
        let space = ConfigSpace::builder()
            .float("x", 0.0, 1.0)
            .categorical("c", &["a", "b"])
            .build();
        let levels = ResourceLevels::new(27.0, 3);
        let history = History::new(levels.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = MethodContext {
            space: &space,
            levels: &levels,
            history: &history,
            pending: &[],
            rng: &mut rng,
            n_workers: 4,
            now: 0.0,
        };
        let mut s = RandomSampler;
        for _ in 0..20 {
            let c = s.sample(&mut ctx);
            assert!(space.check(&c).is_ok());
        }
    }
}
