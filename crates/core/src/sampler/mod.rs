//! Configuration samplers: the paper's generic optimizer abstraction
//! (§4.3) behind a single trait.
//!
//! A [`Sampler`] proposes the next configuration to evaluate given the
//! multi-fidelity history and the set of *pending* configurations other
//! workers are still evaluating. All model-based samplers implement
//! Algorithm 2's algorithm-agnostic parallel wrapper: pending configs are
//! imputed with the median observed performance before refitting, so a
//! sequential BO method transparently supports sync/async parallelism.
//!
//! Implementations:
//! - [`RandomSampler`] — uniform random search;
//! - [`bo::BoSampler`] — single-fidelity Bayesian optimization on the
//!   highest level with enough data (the BOHB recipe);
//! - [`mfes::MfesSampler`] — the MFES ensemble over all levels (Eq. 3),
//!   Hyper-Tune's default optimizer;
//! - [`tpe::TpeSampler`] — the Tree-structured Parzen Estimator of the
//!   original BOHB, demonstrating drop-in optimizer replacement.

pub mod bo;
pub mod mfes;
pub mod tpe;

use hypertune_space::{Config, ConfigSpace};

use crate::method::{JobSpec, MethodContext};

pub use bo::BoSampler;
pub use mfes::MfesSampler;
pub use tpe::TpeSampler;

/// Derives the seed for a cached per-level surrogate fit from everything
/// the fit depends on: the sampler seed, the level, the level's
/// measurement count, and the pending-set fingerprint (SplitMix64
/// finalizer). Because the seed carries no call-order state, refitting
/// after a cache hit would produce the same forest bit for bit — which is
/// what makes the model caches transparent.
pub(crate) fn derive_model_seed(seed: u64, level: usize, n_points: usize, pending_fp: u64) -> u64 {
    let mut z = seed
        ^ (level as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (n_points as u64).wrapping_mul(0xd134_2543_de82_ef95)
        ^ pending_fp;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-sensitive fingerprint of the pending configurations (FNV-1a over
/// the encoded unit-cube bits). Cached models that imputed pending
/// configs are keyed by this, so any change to the pending set — content
/// or order — forces a refit.
pub(crate) fn pending_fingerprint(space: &ConfigSpace, pending: &[JobSpec]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for job in pending {
        for v in space.encode(&job.config) {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so per-config boundaries matter.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A configuration-proposal strategy; see the module docs.
///
/// `Send` is required (transitively, through [`crate::Method`]) so the
/// threaded runner can move methods onto its background suggestion thread.
pub trait Sampler: Send {
    /// Display name fragment (e.g. `"BO"`), used to compose method names.
    fn name(&self) -> &str;

    /// Proposes the next configuration to evaluate.
    fn sample(&mut self, ctx: &mut MethodContext<'_>) -> Config;

    /// Proposes `k` configurations for a batch of idle workers.
    ///
    /// The default loops [`Sampler::sample`]. Model-based samplers
    /// override this to fit once and draw all `k` candidates from a
    /// single acquisition round, penalizing the neighborhood of each
    /// already-drawn candidate (constant liar) so the batch spreads out
    /// instead of collapsing onto one optimum.
    ///
    /// Contract: `sample_batch(ctx, 1)` must be bit-identical to
    /// `sample(ctx)` — same RNG draws, same cache effects — so the `k=1`
    /// dispatch path of the sim runner reproduces sequential semantics
    /// exactly.
    fn sample_batch(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<Config> {
        (0..k).map(|_| self.sample(ctx)).collect()
    }

    /// Receives fresh precision weights `θ` from the owner (only the
    /// multi-fidelity sampler uses them).
    fn set_theta(&mut self, _theta: &[f64]) {}

    /// Receives the run's telemetry handle from the owning method. The
    /// default ignores it; model-based samplers override to report
    /// surrogate fits and acquisition timing.
    fn set_telemetry(&mut self, _telemetry: hypertune_telemetry::TelemetryHandle) {}

    /// Toggles graceful degradation (forwarded from
    /// [`crate::Method::set_degraded`]). Model-based samplers override to
    /// fall back to uniform random draws while degraded; the default is a
    /// no-op because [`RandomSampler`] is already the floor of the ladder.
    fn set_degraded(&mut self, _degraded: bool) {}
}

/// Uniform random search.
#[derive(Debug, Clone, Default)]
pub struct RandomSampler;

impl Sampler for RandomSampler {
    fn name(&self) -> &str {
        "Random"
    }

    fn sample(&mut self, ctx: &mut MethodContext<'_>) -> Config {
        ctx.space.sample(ctx.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::levels::ResourceLevels;
    use hypertune_space::ConfigSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_sampler_draws_valid_configs() {
        let space = ConfigSpace::builder()
            .float("x", 0.0, 1.0)
            .categorical("c", &["a", "b"])
            .build();
        let levels = ResourceLevels::new(27.0, 3);
        let history = History::new(levels.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = MethodContext {
            space: &space,
            levels: &levels,
            history: &history,
            pending: &[],
            rng: &mut rng,
            n_workers: 4,
            now: 0.0,
        };
        let mut s = RandomSampler;
        for _ in 0..20 {
            let c = s.sample(&mut ctx);
            assert!(space.check(&c).is_ok());
        }
    }
}
