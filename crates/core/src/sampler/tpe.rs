//! Tree-structured Parzen Estimator sampler.
//!
//! The original BOHB paper samples from a TPE-style density model rather
//! than a regression surrogate; this implementation demonstrates the
//! generic optimizer abstraction of §4.3 — TPE drops into the same
//! [`Sampler`] slot as the RF-EI and MFES samplers with no changes to any
//! scheduler.
//!
//! TPE splits the observations at the γ-quantile into *good* (`l`) and
//! *bad* (`g`) sets, models each with a per-dimension kernel density in
//! unit space (Gaussian kernels for numeric dimensions, smoothed
//! histograms for categoricals), and proposes the candidate maximizing
//! the density ratio `l(x)/g(x)`. Pending configurations are appended to
//! the *bad* set — the density-model analogue of Algorithm 2's median
//! imputation, repelling concurrent workers from duplicate proposals.

use hypertune_space::{Config, ConfigSpace, ParamKind};
use rand::Rng;

use crate::method::MethodContext;
use crate::sampler::Sampler;

/// Kernel bandwidth floor in unit space.
const MIN_BANDWIDTH: f64 = 0.05;

/// TPE sampler; see the module docs.
#[derive(Debug, Clone)]
pub struct TpeSampler {
    /// Quantile separating good from bad observations.
    pub gamma: f64,
    /// Candidates drawn from the good density per proposal.
    pub n_candidates: usize,
    /// Minimum observations before modelling starts.
    pub min_points: usize,
    /// Fraction of purely random proposals mixed in.
    pub random_fraction: f64,
}

impl TpeSampler {
    /// Creates the sampler with BOHB-style defaults (γ = 0.15, 24
    /// candidates, random fraction 1/4).
    pub fn new() -> Self {
        Self {
            gamma: 0.15,
            n_candidates: 24,
            min_points: 8,
            random_fraction: 0.25,
        }
    }

    /// The highest level with enough observations, if any.
    fn modelling_level(&self, ctx: &MethodContext<'_>) -> Option<usize> {
        (0..=ctx.levels.max_level())
            .rev()
            .find(|&l| ctx.history.len_at(l) >= self.min_points)
    }
}

impl Default for TpeSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl Sampler for TpeSampler {
    fn name(&self) -> &str {
        "TPE"
    }

    fn sample(&mut self, ctx: &mut MethodContext<'_>) -> Config {
        if ctx.rng.gen::<f64>() < self.random_fraction {
            return ctx.space.sample(ctx.rng);
        }
        let Some(level) = self.modelling_level(ctx) else {
            return ctx.space.sample(ctx.rng);
        };
        let group = ctx.history.group(level);
        let mut order: Vec<usize> = (0..group.len()).collect();
        order.sort_by(|&a, &b| {
            group[a]
                .value
                .partial_cmp(&group[b].value)
                .expect("values are finite")
        });
        let n_good = ((group.len() as f64 * self.gamma).ceil() as usize)
            .clamp(2, group.len().saturating_sub(1).max(2));
        let good: Vec<Vec<f64>> = order[..n_good.min(order.len())]
            .iter()
            .map(|&i| ctx.space.encode(&group[i].config))
            .collect();
        let mut bad: Vec<Vec<f64>> = order[n_good.min(order.len())..]
            .iter()
            .map(|&i| ctx.space.encode(&group[i].config))
            .collect();
        // Pending evaluations repel proposals (Algorithm 2 analogue).
        for job in ctx.pending {
            bad.push(ctx.space.encode(&job.config));
        }
        if good.is_empty() || bad.is_empty() {
            return ctx.space.sample(ctx.rng);
        }
        let good_kde = Kde::fit(ctx.space, &good);
        let bad_kde = Kde::fit(ctx.space, &bad);

        // Draw candidates from the good density, keep the best ratio.
        let mut best: Option<(Vec<f64>, f64)> = None;
        for _ in 0..self.n_candidates {
            let x = good_kde.draw(ctx.rng);
            let score = good_kde.log_density(&x) - bad_kde.log_density(&x);
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((x, score));
            }
        }
        let (x, _) = best.expect("n_candidates >= 1");
        ctx.space.decode(&x).expect("kde output in unit cube")
    }
}

/// A per-dimension kernel density over unit-cube encodings.
struct Kde {
    /// One kernel centre set per dimension (shared points).
    points: Vec<Vec<f64>>,
    /// Per-dimension bandwidth (numeric) or `None` for categoricals.
    bandwidth: Vec<Option<f64>>,
    /// Per-dimension categorical probabilities (smoothed), when
    /// applicable: `probs[d][choice]`.
    cat_probs: Vec<Option<Vec<f64>>>,
    /// Per-dimension choice counts for categorical dims.
    cat_n: Vec<usize>,
}

impl Kde {
    fn fit(space: &ConfigSpace, xs: &[Vec<f64>]) -> Self {
        let d = space.len();
        let n = xs.len() as f64;
        let mut bandwidth = Vec::with_capacity(d);
        let mut cat_probs = Vec::with_capacity(d);
        let mut cat_n = Vec::with_capacity(d);
        for (dim, p) in space.params().iter().enumerate() {
            match &p.kind {
                ParamKind::Categorical { choices } | ParamKind::Ordinal { levels: choices } => {
                    let k = choices.len();
                    // Laplace-smoothed histogram over choice bins.
                    let mut counts = vec![1.0; k];
                    for x in xs {
                        let idx = ((x[dim] * k as f64).floor() as usize).min(k - 1);
                        counts[idx] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    cat_probs.push(Some(counts.into_iter().map(|c| c / total).collect()));
                    bandwidth.push(None);
                    cat_n.push(k);
                }
                _ => {
                    // Scott's-rule-ish bandwidth in unit space.
                    let bw = (n.powf(-0.2) * 0.3).max(MIN_BANDWIDTH);
                    bandwidth.push(Some(bw));
                    cat_probs.push(None);
                    cat_n.push(0);
                }
            }
        }
        Self {
            points: xs.to_vec(),
            bandwidth,
            cat_probs,
            cat_n,
        }
    }

    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        // Pick a kernel centre, then perturb per dimension.
        let centre = &self.points[rng.gen_range(0..self.points.len())];
        centre
            .iter()
            .enumerate()
            .map(
                |(dim, &c)| match (&self.bandwidth[dim], &self.cat_probs[dim]) {
                    (Some(bw), _) => {
                        // Truncated Gaussian around the centre.
                        for _ in 0..8 {
                            let v = c + bw * gaussian(rng);
                            if (0.0..=1.0).contains(&v) {
                                return v;
                            }
                        }
                        (c + bw * gaussian(rng)).clamp(0.0, 1.0)
                    }
                    (None, Some(probs)) => {
                        // Sample a choice from the smoothed histogram.
                        let u: f64 = rng.gen();
                        let mut acc = 0.0;
                        let k = probs.len();
                        for (i, &p) in probs.iter().enumerate() {
                            acc += p;
                            if u < acc {
                                return (i as f64 + 0.5) / k as f64;
                            }
                        }
                        (k as f64 - 0.5) / k as f64
                    }
                    _ => unreachable!("every dim is numeric or categorical"),
                },
            )
            .collect()
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        let mut log_p = 0.0;
        for (dim, &xi) in x.iter().enumerate() {
            match (&self.bandwidth[dim], &self.cat_probs[dim]) {
                (Some(bw), _) => {
                    // Mixture of Gaussians over the kernel centres.
                    let mut acc = 0.0;
                    for p in &self.points {
                        let z = (xi - p[dim]) / bw;
                        acc += (-0.5 * z * z).exp();
                    }
                    let norm = self.points.len() as f64 * bw * (2.0 * std::f64::consts::PI).sqrt();
                    log_p += (acc / norm).max(1e-300).ln();
                }
                (None, Some(probs)) => {
                    let k = self.cat_n[dim];
                    let idx = ((xi * k as f64).floor() as usize).min(k - 1);
                    log_p += probs[idx].max(1e-300).ln();
                }
                _ => unreachable!("every dim is numeric or categorical"),
            }
        }
        log_p
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, Measurement};
    use crate::levels::ResourceLevels;
    use hypertune_space::ParamValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .float("x", 0.0, 1.0)
            .categorical("c", &["a", "b", "c"])
            .build()
    }

    fn history_with_optimum_at(x_star: f64, cat_star: usize, n: usize) -> History {
        let mut h = History::new(ResourceLevels::new(27.0, 3));
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..n {
            use rand::Rng;
            let x: f64 = rng.gen();
            let c: usize = rng.gen_range(0..3);
            let value = (x - x_star).abs() + if c == cat_star { 0.0 } else { 0.5 };
            h.record(Measurement {
                config: Config::new(vec![ParamValue::Float(x), ParamValue::Cat(c)]),
                level: 3,
                resource: 27.0,
                value,
                test_value: value,
                cost: 1.0,
                finished_at: i as f64,
            });
        }
        h
    }

    fn sample_many(h: &History, n: usize, seed: u64) -> Vec<Config> {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = TpeSampler::new();
        s.random_fraction = 0.0;
        (0..n)
            .map(|_| {
                let mut ctx = MethodContext {
                    space: &space,
                    levels: &levels,
                    history: h,
                    pending: &[],
                    rng: &mut rng,
                    n_workers: 4,
                    now: 0.0,
                };
                s.sample(&mut ctx)
            })
            .collect()
    }

    #[test]
    fn falls_back_to_random_without_data() {
        let h = History::new(ResourceLevels::new(27.0, 3));
        let proposals = sample_many(&h, 5, 1);
        let space = space();
        for p in proposals {
            assert!(space.check(&p).is_ok());
        }
    }

    #[test]
    fn concentrates_near_good_region() {
        let h = history_with_optimum_at(0.3, 1, 60);
        let proposals = sample_many(&h, 40, 2);
        let near = proposals
            .iter()
            .filter(|p| (p.values()[0].as_f64().unwrap() - 0.3).abs() < 0.25)
            .count();
        assert!(near >= 25, "TPE should concentrate near 0.3: {near}/40");
    }

    #[test]
    fn prefers_good_categorical_choice() {
        let h = history_with_optimum_at(0.5, 2, 80);
        let proposals = sample_many(&h, 40, 3);
        let hits = proposals
            .iter()
            .filter(|p| p.values()[1].as_cat().unwrap() == 2)
            .count();
        assert!(hits >= 25, "TPE should prefer choice 2: {hits}/40");
    }

    #[test]
    fn proposals_always_valid() {
        let h = history_with_optimum_at(0.9, 0, 30);
        let space = space();
        for p in sample_many(&h, 30, 4) {
            assert!(space.check(&p).is_ok());
        }
    }

    #[test]
    fn kde_density_higher_at_data() {
        let space = space();
        let pts = vec![vec![0.2, 0.5], vec![0.25, 0.5], vec![0.22, 0.5]];
        let kde = Kde::fit(&space, &pts);
        assert!(kde.log_density(&[0.22, 0.5]) > kde.log_density(&[0.9, 0.5]));
    }

    #[test]
    fn kde_draws_in_unit_cube() {
        let space = space();
        let pts = vec![vec![0.01, 0.17], vec![0.99, 0.5]];
        let kde = Kde::fit(&space, &pts);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let x = kde.draw(&mut rng);
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
