//! The multi-fidelity ensemble sampler (§4.3, Hyper-Tune's default
//! optimizer, adapted from MFES-HB).
//!
//! Base surrogates `M_1..M_K` are fit on the per-level measurement groups
//! and combined by weighted bagging with the precision weights `θ`
//! (Eq. 3) — the same `θ` the resource allocator learns, pushed in by the
//! owning method through [`crate::sampler::Sampler::set_theta`]. The
//! top-level surrogate is refit on `D_K` augmented with median-imputed
//! pending configurations (Algorithm 2) before the ensemble's expected
//! improvement is maximized.

use std::collections::HashMap;

use hypertune_space::Config;
use hypertune_surrogate::acquisition::{maximize, Acquisition, BatchMaximizer, MaximizeConfig};
use hypertune_surrogate::{stats, MfEnsemble, Predictor, RandomForest, SurrogateModel};
use hypertune_telemetry::{Event, TelemetryHandle};
use rand::Rng;

use crate::method::MethodContext;
use crate::ranking::{run_indexed, MIN_POINTS_PER_LEVEL};
use crate::sampler::{derive_model_seed, pending_fingerprint, Sampler};

/// A fitted per-level surrogate plus the state it was fitted against.
#[derive(Debug, Clone)]
struct CachedLevelModel {
    /// Level measurement count at fit time (history is append-only, so
    /// this identifies the training set).
    n: usize,
    /// Fingerprint of the pending set imputed into the fit (0 for levels
    /// that saw no imputation).
    pending_fp: u64,
    rf: RandomForest,
}

/// Multi-fidelity ensemble sampler; see the module docs.
///
/// Per-level surrogates are cached between `sample` calls and refit only
/// when a level's data (or the imputed pending set at the reference
/// level) changes; fit seeds are derived from that same key, so a cache
/// hit is bit-identical to a refit.
#[derive(Debug, Clone)]
pub struct MfesSampler {
    /// Fraction of purely random proposals mixed in.
    pub random_fraction: f64,
    /// Minimum complete evaluations before modelling starts.
    pub min_full: usize,
    theta: Option<Vec<f64>>,
    seed: u64,
    cache: HashMap<usize, CachedLevelModel>,
    telemetry: TelemetryHandle,
    /// Degradation-ladder floor: while set (by the runner's circuit
    /// breaker) every proposal is a uniform random draw, no fits.
    degraded: bool,
}

impl MfesSampler {
    /// Creates the sampler with paper-standard defaults.
    pub fn new(seed: u64) -> Self {
        Self {
            random_fraction: 0.25,
            min_full: 4,
            theta: None,
            seed,
            cache: HashMap::new(),
            telemetry: TelemetryHandle::disabled(),
            degraded: false,
        }
    }

    /// Number of cached level surrogates (test hook).
    pub fn cached_levels(&self) -> usize {
        self.cache.len()
    }

    /// The reference level: complete evaluations once enough exist,
    /// otherwise the highest level with enough data; `None` before any
    /// level is modellable.
    fn ref_level(&self, ctx: &MethodContext<'_>) -> Option<usize> {
        let top = ctx.levels.max_level();
        if ctx.history.len_at(top) >= self.min_full {
            return Some(top);
        }
        (0..=top)
            .rev()
            .find(|&l| ctx.history.len_at(l) >= self.min_full)
    }

    /// Refits the per-level surrogates whose cache key (measurement
    /// count, pending fingerprint at the reference level) went stale.
    /// Consumes no RNG — fit seeds are derived — so cache hits stay
    /// bit-identical to cold refits.
    fn refresh_models(&mut self, ctx: &MethodContext<'_>, ref_level: usize) {
        let top = ctx.levels.max_level();
        let pending_fp = pending_fingerprint(ctx.space, ctx.pending);
        let stale: Vec<(usize, u64)> = (0..=top)
            .filter_map(|level| {
                let n = ctx.history.len_at(level);
                if n < MIN_POINTS_PER_LEVEL {
                    return None;
                }
                let fp = if level == ref_level { pending_fp } else { 0 };
                match self.cache.get(&level) {
                    Some(e) if e.n == n && e.pending_fp == fp => None,
                    _ => Some((level, fp)),
                }
            })
            .collect();
        let history = ctx.history;
        let space = ctx.space;
        let pending = ctx.pending;
        let seed = self.seed;
        let fit_span = if stale.is_empty() {
            None
        } else {
            Some(self.telemetry.span("surrogate_fit"))
        };
        let refitted: Vec<(usize, u64, usize, Option<RandomForest>)> =
            run_indexed(stale.len(), |i| {
                let (level, fp) = stale[i];
                let n = history.len_at(level);
                let (mut xs, mut ys) = history.training_data_capped(
                    level,
                    space,
                    crate::sampler::bo::MAX_TRAIN_POINTS,
                );
                if level == ref_level {
                    let med = stats::median(&ys).expect("level has measurements");
                    for job in pending {
                        xs.push(space.encode(&job.config));
                        ys.push(med);
                    }
                }
                let mut rf = RandomForest::new(derive_model_seed(seed, level, n, fp));
                let fit = rf.fit(&xs, &ys);
                let skipped = rf.skipped_nonfinite();
                (level, fp, skipped, fit.ok().map(|_| rf))
            });
        drop(fit_span);
        for (level, fp, skipped, rf) in refitted {
            if skipped > 0 {
                self.telemetry
                    .counter_add("surrogate.skipped_nonfinite", skipped as u64);
            }
            match rf {
                Some(rf) => {
                    let n_points = ctx.history.len_at(level);
                    self.telemetry
                        .emit_with(ctx.now, || Event::SurrogateFit { level, n_points });
                    self.telemetry.counter_add("surrogate.fits", 1);
                    self.cache.insert(
                        level,
                        CachedLevelModel {
                            n: n_points,
                            pending_fp: fp,
                            rf,
                        },
                    );
                }
                None => {
                    self.cache.remove(&level);
                }
            }
        }
    }

    /// Combines the cached per-level surrogates with θ (Eq. 3), falling
    /// back to uniform weights when θ is unavailable or puts no mass on
    /// the fitted levels. Returns the ensemble and its member count.
    fn build_ensemble<'a>(&'a self, ctx: &MethodContext<'_>) -> (Option<MfEnsemble<'a>>, usize) {
        let top = ctx.levels.max_level();
        let models: Vec<Option<&RandomForest>> = (0..=top)
            .map(|level| {
                if ctx.history.len_at(level) < MIN_POINTS_PER_LEVEL {
                    return None;
                }
                self.cache.get(&level).map(|e| &e.rf)
            })
            .collect();
        let n_models = models.iter().filter(|m| m.is_some()).count();
        let members = |theta: Option<&[f64]>| -> Vec<(&'a dyn Predictor, f64)> {
            models
                .iter()
                .enumerate()
                .filter_map(|(level, m)| {
                    m.map(|rf| {
                        let w = theta.map_or(1.0, |t| t[level]);
                        (rf as &dyn Predictor, w)
                    })
                })
                .collect()
        };
        let ensemble = MfEnsemble::new(members(self.theta.as_deref()))
            .or_else(|| MfEnsemble::new(members(None)));
        (ensemble, n_models)
    }
}

impl Sampler for MfesSampler {
    fn name(&self) -> &str {
        "MFES"
    }

    fn set_theta(&mut self, theta: &[f64]) {
        self.theta = Some(theta.to_vec());
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    fn sample(&mut self, ctx: &mut MethodContext<'_>) -> Config {
        if self.degraded {
            return ctx.space.sample(ctx.rng);
        }
        if ctx.rng.gen::<f64>() < self.random_fraction {
            return ctx.space.sample(ctx.rng);
        }
        // The reference level drives the incumbent and the pending
        // imputation: the complete-evaluation level once it has enough
        // data, otherwise the highest level that does — so the ensemble
        // exploits low-fidelity structure from the very first rung, as
        // MFES-HB does, instead of sampling blindly until complete
        // evaluations exist.
        let Some(ref_level) = self.ref_level(ctx) else {
            return ctx.space.sample(ctx.rng);
        };

        // Fit one base surrogate per level with enough data; the
        // reference-level one sees the median-imputed pending configs.
        // Fits go through the cache: a level is refit — in parallel with
        // the other stale levels when cores allow — only when its
        // measurement count or (for the reference level) the pending
        // fingerprint changed since the cached fit.
        self.refresh_models(ctx, ref_level);
        // Combine with θ (Eq. 3); fall back to uniform weights over the
        // fitted levels when θ is unavailable or puts no mass on them.
        let (ensemble, n_models) = self.build_ensemble(ctx);
        let Some(ensemble) = ensemble else {
            return ctx.space.sample(ctx.rng);
        };

        let best_y = ctx
            .history
            .group(ref_level)
            .iter()
            .map(|m| m.value)
            .fold(f64::INFINITY, f64::min);
        let incumbents = ctx.history.top_configs_ref(ref_level, 5);
        self.telemetry
            .emit_with(ctx.now, || Event::SurrogatePredict {
                level: ref_level,
                n_models,
            });
        let acq_span = self.telemetry.span("acquisition");
        let proposed = match maximize(
            ctx.space,
            &ensemble,
            Acquisition::default(),
            best_y,
            &incumbents,
            &MaximizeConfig::default(),
            ctx.rng,
        ) {
            Ok((config, _)) => config,
            Err(_) => ctx.space.sample(ctx.rng),
        };
        drop(acq_span);
        proposed
    }

    /// Batch path: one ensemble refresh and one candidate-pool sweep,
    /// then `k` constant-liar re-scoring rounds over the cached pool
    /// predictions (same fantasization idea as Algorithm 2's pending
    /// imputation, without `k − 1` extra refits or prediction sweeps).
    fn sample_batch(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<Config> {
        // Degraded (breaker open): the whole batch is uniform random.
        if self.degraded {
            return (0..k).map(|_| ctx.space.sample(ctx.rng)).collect();
        }
        // k ≤ 1 must stay bit-identical to the sequential path.
        if k <= 1 {
            return (0..k).map(|_| self.sample(ctx)).collect();
        }
        let Some(ref_level) = self.ref_level(ctx) else {
            // Nothing modellable: every draw is a plain random sample.
            return (0..k).map(|_| self.sample(ctx)).collect();
        };
        self.refresh_models(ctx, ref_level);
        let (ensemble, n_models) = self.build_ensemble(ctx);
        let Some(ensemble) = ensemble else {
            return (0..k).map(|_| self.sample(ctx)).collect();
        };

        let ys: Vec<f64> = ctx
            .history
            .group(ref_level)
            .iter()
            .map(|m| m.value)
            .collect();
        let best_y = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let liar = stats::median(&ys).expect("reference level has measurements");
        let incumbents = ctx.history.top_configs_ref(ref_level, 5);
        self.telemetry
            .emit_with(ctx.now, || Event::SurrogatePredict {
                level: ref_level,
                n_models,
            });
        let acq_span = self.telemetry.span("acquisition");
        let mut pool = match BatchMaximizer::new(
            ctx.space,
            &ensemble,
            Acquisition::default(),
            best_y,
            liar,
            &incumbents,
            &MaximizeConfig::default(),
            ctx.rng,
        ) {
            Ok(pool) => pool,
            Err(_) => return (0..k).map(|_| ctx.space.sample(ctx.rng)).collect(),
        };
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let config = if ctx.rng.gen::<f64>() < self.random_fraction {
                ctx.space.sample(ctx.rng)
            } else {
                pool.next_candidate()
                    .unwrap_or_else(|| ctx.space.sample(ctx.rng))
            };
            // Every draw — model-based or random — becomes a liar so the
            // rest of the batch avoids its neighborhood.
            pool.push_liar(ctx.space.encode(&config));
            out.push(config);
        }
        drop(acq_span);
        // O(pool × k) with incremental re-scoring; CI guards this stays
        // linear in k (the reference path would be O(pool × k²)).
        self.telemetry
            .counter_add("batch.rescore_ops", pool.rescore_ops());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, Measurement};
    use crate::levels::ResourceLevels;
    use hypertune_space::{ConfigSpace, ParamValue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::builder().float("x", 0.0, 1.0).build()
    }

    /// History where the low level is dense and informative (minimum at
    /// 0.7) and the full level is sparse.
    fn multi_fidelity_history() -> History {
        let mut h = History::new(ResourceLevels::new(27.0, 3));
        for i in 0..40 {
            let x = i as f64 / 39.0;
            h.record(Measurement {
                config: Config::new(vec![ParamValue::Float(x)]),
                level: 0,
                resource: 1.0,
                value: (x - 0.7) * (x - 0.7) + 0.01,
                test_value: 0.0,
                cost: 1.0,
                finished_at: i as f64,
            });
        }
        for i in 0..5 {
            let x = 0.1 + 0.8 * i as f64 / 4.0;
            h.record(Measurement {
                config: Config::new(vec![ParamValue::Float(x)]),
                level: 3,
                resource: 27.0,
                value: (x - 0.7) * (x - 0.7),
                test_value: 0.0,
                cost: 27.0,
                finished_at: 100.0 + i as f64,
            });
        }
        h
    }

    #[test]
    fn random_until_enough_full_evals() {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = History::new(levels.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = MfesSampler::new(0);
        let mut ctx = MethodContext {
            space: &space,
            levels: &levels,
            history: &history,
            pending: &[],
            rng: &mut rng,
            n_workers: 4,
            now: 0.0,
        };
        let c = s.sample(&mut ctx);
        assert!(space.check(&c).is_ok());
    }

    #[test]
    fn ensemble_exploits_low_fidelity_structure() {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = multi_fidelity_history();
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = MfesSampler::new(1);
        s.random_fraction = 0.0;
        // Give the informative low level most of the weight.
        s.set_theta(&[0.7, 0.0, 0.0, 0.3]);
        let mut hits = 0;
        for _ in 0..10 {
            let mut ctx = MethodContext {
                space: &space,
                levels: &levels,
                history: &history,
                pending: &[],
                rng: &mut rng,
                n_workers: 4,
                now: 0.0,
            };
            let c = s.sample(&mut ctx);
            if (space.encode(&c)[0] - 0.7).abs() < 0.25 {
                hits += 1;
            }
        }
        assert!(hits >= 6, "should search near 0.7: {hits}/10");
    }

    #[test]
    fn cache_hit_matches_cold_refit() {
        // Sampler A reuses its per-level model cache; sampler B is
        // recreated (cold cache) before every call. Identical RNG streams
        // must yield identical proposals — the cache must be
        // observationally transparent.
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = multi_fidelity_history();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut a = MfesSampler::new(5);
        a.random_fraction = 0.0;
        for round in 0..3 {
            let ca = {
                let mut ctx = MethodContext {
                    space: &space,
                    levels: &levels,
                    history: &history,
                    pending: &[],
                    rng: &mut rng_a,
                    n_workers: 4,
                    now: 0.0,
                };
                a.sample(&mut ctx)
            };
            if round > 0 {
                assert!(a.cached_levels() > 0, "cache should be warm");
            }
            let cb = {
                let mut fresh = MfesSampler::new(5);
                fresh.random_fraction = 0.0;
                let mut ctx = MethodContext {
                    space: &space,
                    levels: &levels,
                    history: &history,
                    pending: &[],
                    rng: &mut rng_b,
                    n_workers: 4,
                    now: 0.0,
                };
                fresh.sample(&mut ctx)
            };
            assert_eq!(space.encode(&ca), space.encode(&cb));
        }
    }

    #[test]
    fn theta_on_unfitted_levels_falls_back_to_uniform() {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = multi_fidelity_history();
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = MfesSampler::new(2);
        s.random_fraction = 0.0;
        // All mass on levels 1 and 2, which have no data.
        s.set_theta(&[0.0, 0.5, 0.5, 0.0]);
        let mut ctx = MethodContext {
            space: &space,
            levels: &levels,
            history: &history,
            pending: &[],
            rng: &mut rng,
            n_workers: 4,
            now: 0.0,
        };
        let c = s.sample(&mut ctx);
        assert!(space.check(&c).is_ok());
    }
}
