//! Single-fidelity Bayesian-optimization sampler (the BOHB recipe).
//!
//! Fits a probabilistic random forest on the *highest* resource level that
//! has accumulated enough measurements — lower levels are ignored, which
//! is exactly the limitation the MFES sampler removes — and maximizes
//! expected improvement. Pending configurations are imputed with the
//! median observed value at the modelled level (Algorithm 2) so parallel
//! workers do not pile onto the same region.

use hypertune_space::Config;
use hypertune_surrogate::acquisition::{maximize, Acquisition, BatchMaximizer, MaximizeConfig};
use hypertune_surrogate::{stats, RandomForest, SurrogateModel};
use rand::Rng;

use crate::method::MethodContext;

/// Cap on surrogate training-set size; refits stay cheap as runs grow.
pub const MAX_TRAIN_POINTS: usize = 300;
use crate::sampler::{derive_model_seed, pending_fingerprint, Sampler};

/// The fitted surrogate plus the state it was fitted against: modelled
/// level, that level's measurement count, the pending fingerprint, and
/// the incumbent value observed at fit time.
#[derive(Debug, Clone)]
struct CachedModel {
    level: usize,
    n: usize,
    pending_fp: u64,
    best_y: f64,
    rf: RandomForest,
}

/// Bayesian-optimization sampler; see the module docs.
///
/// The fitted surrogate is cached between `sample` calls and refit only
/// when the modelled level, its measurement count, or the pending set
/// changes; the fit seed is derived from that same key, so a cache hit is
/// bit-identical to a refit.
#[derive(Debug, Clone)]
pub struct BoSampler {
    /// Fraction of purely random proposals mixed in (BOHB uses a random
    /// fraction to keep the theoretical guarantees of Hyperband).
    pub random_fraction: f64,
    /// Minimum measurements a level needs before it can be modelled.
    pub min_points: usize,
    /// Median-impute pending configurations (Algorithm 2). Disable only
    /// for the imputation ablation bench.
    pub impute_pending: bool,
    seed: u64,
    cache: Option<CachedModel>,
    telemetry: hypertune_telemetry::TelemetryHandle,
    /// Degradation-ladder floor: while set (by the runner's circuit
    /// breaker) every proposal is a uniform random draw, no fits.
    degraded: bool,
}

impl BoSampler {
    /// Creates the sampler with the paper-standard defaults
    /// (random fraction 1/4, minimum 4 points).
    pub fn new(seed: u64) -> Self {
        Self {
            random_fraction: 0.25,
            min_points: 4,
            impute_pending: true,
            seed,
            cache: None,
            telemetry: hypertune_telemetry::TelemetryHandle::disabled(),
            degraded: false,
        }
    }

    /// Creates a pure (no random mixing) BO sampler, used by the Batch-BO
    /// and A-BO baselines.
    pub fn pure(seed: u64) -> Self {
        Self {
            random_fraction: 0.0,
            min_points: 4,
            impute_pending: true,
            seed,
            cache: None,
            telemetry: hypertune_telemetry::TelemetryHandle::disabled(),
            degraded: false,
        }
    }

    /// The highest level with enough data to model, if any.
    fn modelling_level(&self, ctx: &MethodContext<'_>) -> Option<usize> {
        (0..=ctx.levels.max_level())
            .rev()
            .find(|&l| ctx.history.len_at(l) >= self.min_points)
    }

    /// Ensures `self.cache` holds a forest fitted against the current
    /// history and pending set; refits only when the cache key (level,
    /// count, pending fingerprint) changed. Returns `false` when no level
    /// is modellable or the fit failed — callers fall back to random
    /// sampling. Consumes no RNG, so cache hits stay bit-identical to
    /// cold refits.
    fn ensure_model(&mut self, ctx: &MethodContext<'_>) -> bool {
        let Some(level) = self.modelling_level(ctx) else {
            return false;
        };
        let n = ctx.history.len_at(level);
        let pending_fp = if self.impute_pending {
            pending_fingerprint(ctx.space, ctx.pending)
        } else {
            0
        };
        let cache_hit = matches!(
            &self.cache,
            Some(c) if c.level == level && c.n == n && c.pending_fp == pending_fp
        );
        if !cache_hit {
            let (mut xs, mut ys) =
                ctx.history
                    .training_data_capped(level, ctx.space, MAX_TRAIN_POINTS);
            let best_y = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            // Algorithm 2, lines 1–3: impute pending configs at the median.
            if self.impute_pending {
                let med = stats::median(&ys).expect("level has measurements");
                for job in ctx.pending {
                    xs.push(ctx.space.encode(&job.config));
                    ys.push(med);
                }
            }
            let mut rf = RandomForest::new(derive_model_seed(self.seed, level, n, pending_fp));
            let fit = rf.fit(&xs, &ys);
            if rf.skipped_nonfinite() > 0 {
                self.telemetry
                    .counter_add("surrogate.skipped_nonfinite", rf.skipped_nonfinite() as u64);
            }
            if fit.is_err() {
                self.cache = None;
                return false;
            }
            self.cache = Some(CachedModel {
                level,
                n,
                pending_fp,
                best_y,
                rf,
            });
        }
        true
    }
}

impl Sampler for BoSampler {
    fn name(&self) -> &str {
        "BO"
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    fn set_telemetry(&mut self, telemetry: hypertune_telemetry::TelemetryHandle) {
        self.telemetry = telemetry;
    }

    fn sample(&mut self, ctx: &mut MethodContext<'_>) -> Config {
        if self.degraded {
            return ctx.space.sample(ctx.rng);
        }
        if ctx.rng.gen::<f64>() < self.random_fraction {
            return ctx.space.sample(ctx.rng);
        }
        if !self.ensure_model(ctx) {
            return ctx.space.sample(ctx.rng);
        }
        let cached = self.cache.as_ref().expect("cache was just populated");
        let incumbents = ctx.history.top_configs_ref(cached.level, 5);
        match maximize(
            ctx.space,
            &cached.rf,
            Acquisition::default(),
            cached.best_y,
            &incumbents,
            &MaximizeConfig::default(),
            ctx.rng,
        ) {
            Ok((config, _)) => config,
            Err(_) => ctx.space.sample(ctx.rng),
        }
    }

    /// Batch path: one forest fit and one candidate-pool sweep, then `k`
    /// constant-liar re-scoring rounds over the cached pool predictions —
    /// so a batch of `k` costs one model sweep instead of `k` (see
    /// BENCH_scheduler.json for the measured per-dispatch reduction).
    fn sample_batch(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<Config> {
        // Degraded (breaker open): the whole batch is uniform random.
        if self.degraded {
            return (0..k).map(|_| ctx.space.sample(ctx.rng)).collect();
        }
        // k ≤ 1 must stay bit-identical to the sequential path.
        if k <= 1 || !self.ensure_model(ctx) {
            return (0..k).map(|_| self.sample(ctx)).collect();
        }
        let cached = self.cache.as_ref().expect("cache was just populated");
        let ys: Vec<f64> = ctx
            .history
            .group(cached.level)
            .iter()
            .map(|m| m.value)
            .collect();
        let liar = stats::median(&ys).expect("modelled level has measurements");
        let incumbents = ctx.history.top_configs_ref(cached.level, 5);
        let mut pool = match BatchMaximizer::new(
            ctx.space,
            &cached.rf,
            Acquisition::default(),
            cached.best_y,
            liar,
            &incumbents,
            &MaximizeConfig::default(),
            ctx.rng,
        ) {
            Ok(pool) => pool,
            Err(_) => return (0..k).map(|_| ctx.space.sample(ctx.rng)).collect(),
        };
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let config = if ctx.rng.gen::<f64>() < self.random_fraction {
                ctx.space.sample(ctx.rng)
            } else {
                pool.next_candidate()
                    .unwrap_or_else(|| ctx.space.sample(ctx.rng))
            };
            // Every draw — model-based or random — becomes a liar so the
            // rest of the batch avoids its neighborhood.
            pool.push_liar(ctx.space.encode(&config));
            out.push(config);
        }
        // O(pool × k) with incremental re-scoring; CI guards this stays
        // linear in k (the reference path would be O(pool × k²)).
        self.telemetry
            .counter_add("batch.rescore_ops", pool.rescore_ops());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, Measurement};
    use crate::levels::ResourceLevels;
    use crate::method::JobSpec;
    use hypertune_space::{ConfigSpace, ParamValue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::builder().float("x", 0.0, 1.0).build()
    }

    fn seeded_history(level: usize, n: usize) -> History {
        let mut h = History::new(ResourceLevels::new(27.0, 3));
        for i in 0..n {
            let x = i as f64 / (n - 1).max(1) as f64;
            h.record(Measurement {
                config: Config::new(vec![ParamValue::Float(x)]),
                level,
                resource: 3f64.powi(level as i32),
                // Minimum at x = 0.8.
                value: (x - 0.8) * (x - 0.8),
                test_value: 0.0,
                cost: 1.0,
                finished_at: i as f64,
            });
        }
        h
    }

    fn ctx<'a>(
        space: &'a ConfigSpace,
        levels: &'a ResourceLevels,
        history: &'a History,
        pending: &'a [JobSpec],
        rng: &'a mut StdRng,
    ) -> MethodContext<'a> {
        MethodContext {
            space,
            levels,
            history,
            pending,
            rng,
            n_workers: 4,
            now: 0.0,
        }
    }

    #[test]
    fn falls_back_to_random_without_data() {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = History::new(levels.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = BoSampler::pure(0);
        let mut c = ctx(&space, &levels, &history, &[], &mut rng);
        let config = s.sample(&mut c);
        assert!(space.check(&config).is_ok());
    }

    #[test]
    fn exploits_observed_optimum() {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = seeded_history(3, 25);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = BoSampler::pure(1);
        let mut hits = 0;
        for _ in 0..10 {
            let mut c = ctx(&space, &levels, &history, &[], &mut rng);
            let config = s.sample(&mut c);
            let x = space.encode(&config)[0];
            if (x - 0.8).abs() < 0.25 {
                hits += 1;
            }
        }
        assert!(hits >= 6, "BO should focus near the optimum: {hits}/10");
    }

    #[test]
    fn models_highest_level_with_data() {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let mut history = seeded_history(0, 25);
        // Level 2 also has (fewer but enough) points with minimum at 0.2.
        for i in 0..6 {
            let x = i as f64 / 5.0;
            history.record(Measurement {
                config: Config::new(vec![ParamValue::Float(x)]),
                level: 2,
                resource: 9.0,
                value: (x - 0.2) * (x - 0.2),
                test_value: 0.0,
                cost: 1.0,
                finished_at: 100.0 + i as f64,
            });
        }
        let s = BoSampler::pure(2);
        let mut rng = StdRng::seed_from_u64(2);
        let c = ctx(&space, &levels, &history, &[], &mut rng);
        assert_eq!(s.modelling_level(&c), Some(2));
    }

    #[test]
    fn pending_imputation_spreads_batch() {
        // With one pending config at the optimum, EI there collapses, so
        // the next proposal should usually differ from the pending one.
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = seeded_history(3, 25);
        let pending = vec![JobSpec {
            config: Config::new(vec![ParamValue::Float(0.8)]),
            level: 3,
            resource: 27.0,
            bracket: None,
            id: 0,
        }];
        let mean_dist = |pending: &[JobSpec], seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = BoSampler::pure(seed);
            let mut total = 0.0;
            for _ in 0..10 {
                let mut c = ctx(&space, &levels, &history, pending, &mut rng);
                let config = s.sample(&mut c);
                total += (space.encode(&config)[0] - 0.8).abs();
            }
            total / 10.0
        };
        // The pending configuration must actually enter the model: with
        // identical RNG streams, proposals must differ once a pending
        // evaluation is imputed. (Whether imputation attracts or repels
        // depends on the surrogate's local variance; the guarantee of
        // Algorithm 2 is that concurrent workers see *different* models,
        // not a specific direction.)
        let with_pending = mean_dist(&pending, 3);
        let without = mean_dist(&[], 3);
        assert_ne!(
            with_pending, without,
            "imputed pending configs must change the proposal distribution"
        );
    }

    #[test]
    fn cache_hit_matches_cold_refit() {
        // Sampler A keeps its model cache across calls; sampler B is
        // recreated (cold cache) before every call. With identical RNG
        // streams the proposals must match exactly — the cache must be
        // observationally transparent.
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = seeded_history(3, 25);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut a = BoSampler::pure(9);
        for _ in 0..3 {
            let ca = {
                let mut c = ctx(&space, &levels, &history, &[], &mut rng_a);
                a.sample(&mut c)
            };
            let cb = {
                let mut fresh = BoSampler::pure(9);
                let mut c = ctx(&space, &levels, &history, &[], &mut rng_b);
                fresh.sample(&mut c)
            };
            assert_eq!(space.encode(&ca), space.encode(&cb));
        }
    }

    #[test]
    fn random_fraction_one_is_pure_random() {
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = seeded_history(3, 25);
        let mut s = BoSampler::new(4);
        s.random_fraction = 1.0;
        let mut rng = StdRng::seed_from_u64(4);
        // Should never panic and always give valid configs.
        for _ in 0..10 {
            let mut c = ctx(&space, &levels, &history, &[], &mut rng);
            let config = s.sample(&mut c);
            assert!(space.check(&config).is_ok());
        }
    }

    #[test]
    fn batch_rescore_ops_counter_is_linear_in_k() {
        // The emitted op count must be exactly pool_len × k: every one of
        // the k drawn liars costs a single sweep over the candidate pool.
        // A regression to per-pick full re-scoring would make this
        // quadratic in k (pool_len × k(k+1)/2) and fail the divisibility
        // and ratio checks below. scripts/ci.sh runs this as the dispatch
        // op-count guard.
        let space = space();
        let levels = ResourceLevels::new(27.0, 3);
        let history = seeded_history(3, 25);
        let ops_for = |k: usize| {
            let telemetry = hypertune_telemetry::Telemetry::new().build();
            let mut s = BoSampler::pure(11);
            s.set_telemetry(telemetry.clone());
            let mut rng = StdRng::seed_from_u64(11);
            let mut c = ctx(&space, &levels, &history, &[], &mut rng);
            let out = s.sample_batch(&mut c, k);
            assert_eq!(out.len(), k);
            telemetry
                .snapshot()
                .expect("enabled telemetry has metrics")
                .counter("batch.rescore_ops")
                .expect("sample_batch records rescore ops")
        };
        let (k_small, k_big) = (4u64, 16u64);
        let small = ops_for(k_small as usize);
        let big = ops_for(k_big as usize);
        assert!(small > 0);
        // pool_len is identical across the two runs (same seed, same
        // history), so linear scaling means exact proportionality.
        assert_eq!(small % k_small, 0);
        assert_eq!(big % k_big, 0);
        assert_eq!(
            small / k_small,
            big / k_big,
            "ops per liar must be the pool size, independent of k"
        );
    }
}
