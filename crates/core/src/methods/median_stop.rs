//! The median stopping rule (Golovin et al., Google Vizier; also in Ray
//! Tune and OpenBox — cited in the paper's related work §2 as an
//! early-stopping alternative to successive halving).
//!
//! Each configuration climbs the resource ladder one level at a time; a
//! climb continues only while the configuration's value at the current
//! level is **no worse than the median** of all completed values at that
//! level. Unlike SHA there are no rungs or quotas — stopping decisions
//! are per-configuration and fully asynchronous.

use std::collections::VecDeque;

use hypertune_space::Config;

use crate::method::{JobSpec, Method, MethodContext, Outcome};
use crate::sampler::Sampler;
use hypertune_surrogate::stats;

/// Median-stopping method; see the module docs.
pub struct MedianStop {
    sampler: Box<dyn Sampler>,
    /// Configurations that survived their last level and await the next.
    ready_to_climb: VecDeque<(Config, usize)>,
    /// Completed values per level (for the median test).
    values_per_level: Vec<Vec<f64>>,
    /// Levels below this never stop (avoid noise-driven stops at the
    /// cheapest fidelity before any signal exists).
    grace_results: usize,
}

impl MedianStop {
    /// Creates the method with the given sampler for fresh configs.
    pub fn new(k_levels: usize, sampler: Box<dyn Sampler>) -> Self {
        Self {
            sampler,
            ready_to_climb: VecDeque::new(),
            values_per_level: vec![Vec::new(); k_levels],
            grace_results: 5,
        }
    }
}

impl Method for MedianStop {
    fn name(&self) -> &str {
        "Median-Stop"
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        // Continue a surviving configuration first.
        if let Some((config, level)) = self.ready_to_climb.pop_front() {
            return Some(JobSpec {
                config,
                level,
                resource: ctx.levels.resource(level),
                bracket: None,
                id: 0,
            });
        }
        // Otherwise start a fresh configuration at the base level.
        let config = self.sampler.sample(ctx);
        Some(JobSpec {
            config,
            level: 0,
            resource: ctx.levels.resource(0),
            bracket: None,
            id: 0,
        })
    }

    fn on_result(&mut self, outcome: &Outcome, ctx: &mut MethodContext<'_>) {
        // A quarantined config neither climbs nor contributes to the
        // median statistics (its inf value is noise, not a measurement).
        if outcome.is_failed() {
            return;
        }
        let level = outcome.spec.level;
        let values = &mut self.values_per_level[level];
        values.push(outcome.value);
        if level >= ctx.levels.max_level() {
            return; // complete evaluation: nothing left to climb
        }
        // Median rule: continue while at or below the median (with a
        // grace period before any stopping happens at this level).
        let survives = values.len() <= self.grace_results
            || stats::median(values)
                .map(|m| outcome.value <= m)
                .unwrap_or(true);
        if survives {
            self.ready_to_climb
                .push_back((outcome.spec.config.clone(), level + 1));
        }
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.sampler.set_degraded(degraded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::levels::ResourceLevels;
    use crate::sampler::RandomSampler;
    use hypertune_space::ConfigSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Env {
        space: ConfigSpace,
        levels: ResourceLevels,
        history: History,
        rng: StdRng,
    }

    impl Env {
        fn new() -> Self {
            let levels = ResourceLevels::new(27.0, 3);
            Self {
                space: ConfigSpace::builder().float("x", 0.0, 1.0).build(),
                levels: levels.clone(),
                history: History::new(levels),
                rng: StdRng::seed_from_u64(0),
            }
        }

        fn ctx(&mut self) -> MethodContext<'_> {
            MethodContext {
                space: &self.space,
                levels: &self.levels,
                history: &self.history,
                pending: &[],
                rng: &mut self.rng,
                n_workers: 2,
                now: 0.0,
            }
        }
    }

    fn method() -> MedianStop {
        MedianStop::new(4, Box::new(RandomSampler))
    }

    fn finish(m: &mut MedianStop, env: &mut Env, job: JobSpec, value: f64) {
        let o = Outcome {
            spec: job,
            value,
            test_value: value,
            cost: 1.0,
            finished_at: 0.0,
            status: crate::method::OutcomeStatus::Success,
            fail_status: None,
        };
        m.on_result(&o, &mut env.ctx());
    }

    #[test]
    fn fresh_configs_start_at_base() {
        let mut env = Env::new();
        let mut m = method();
        let j = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j.level, 0);
        assert_eq!(j.resource, 1.0);
    }

    #[test]
    fn survivor_climbs_next_level() {
        let mut env = Env::new();
        let mut m = method();
        let j = m.next_job(&mut env.ctx()).unwrap();
        let cfg = j.config.clone();
        finish(&mut m, &mut env, j, 0.1);
        let j2 = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j2.level, 1);
        assert_eq!(j2.config, cfg);
    }

    #[test]
    fn below_median_configs_are_stopped_after_grace() {
        let mut env = Env::new();
        let mut m = method();
        m.grace_results = 0;
        // Establish a median of 0.5 at level 0 with three configs (all
        // drain their climbs first).
        for v in [0.4, 0.5, 0.6] {
            let j = m.next_job(&mut env.ctx()).unwrap();
            let j = if j.level == 0 {
                j
            } else {
                // Drain climbing jobs by finishing them at the top level.
                finish(&mut m, &mut env, j, 1.0);
                continue;
            };
            finish(&mut m, &mut env, j, v);
        }
        // Drain any queued climbs.
        while let Some(j) = m.next_job(&mut env.ctx()) {
            if j.level == 0 {
                // A worse-than-median config must NOT climb.
                finish(&mut m, &mut env, j, 0.9);
                break;
            }
            finish(&mut m, &mut env, j, 1.0);
        }
        // Now every queued job should be a fresh base config (the 0.9 one
        // was stopped).
        for _ in 0..5 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            if j.level > 0 {
                // Climbing jobs may still exist from the earlier configs;
                // complete them at the max level so they disappear.
                let lvl = j.level;
                finish(&mut m, &mut env, j, 1.0);
                assert!(lvl <= 3);
            } else {
                finish(&mut m, &mut env, j, 0.95);
            }
        }
        // The stopped config never re-enters the climb queue with the
        // same config: verified implicitly by no panic and bounded queue.
        assert!(m.ready_to_climb.len() <= 8);
    }

    #[test]
    fn top_level_results_do_not_climb() {
        let mut env = Env::new();
        let mut m = method();
        let j = JobSpec {
            config: env.space.sample(&mut env.rng),
            level: 3,
            resource: 27.0,
            bracket: None,
            id: 0,
        };
        finish(&mut m, &mut env, j, 0.0);
        assert!(m.ready_to_climb.is_empty());
    }

    #[test]
    fn never_blocks() {
        let mut env = Env::new();
        let mut m = method();
        for _ in 0..30 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            let v = env.space.encode(&j.config)[0];
            finish(&mut m, &mut env, j, v);
        }
    }
}
