//! The synchronous Hyperband-family engine: SHA, Hyperband, BOHB, and
//! MFES-HB are all instances of [`SyncHb`] with different bracket cycling
//! and samplers.
//!
//! The engine executes one [`SyncBracket`] at a time. Within a rung it
//! dispatches freely; at the rung boundary it returns `None` from
//! `next_job` (the synchronization barrier of Figure 1), so idle workers
//! wait for stragglers — exactly the behaviour the asynchronous engine
//! removes.

use crate::bracket::SyncBracket;
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome};
use crate::ranking::ThetaTracker;
use crate::sampler::Sampler;

/// Which bracket the next SHA iteration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CyclePolicy {
    /// Always the same base level (SHA uses 0 — the most aggressive).
    Fixed(usize),
    /// Cycle through all brackets (Hyperband's outer loop, §3.2).
    Cycle,
}

/// Synchronous Hyperband-family engine; see the module docs.
pub struct SyncHb {
    name: String,
    bracket: SyncBracket,
    policy: CyclePolicy,
    next_base: usize,
    sampler: Box<dyn Sampler>,
    theta: ThetaTracker,
}

impl SyncHb {
    /// Creates the engine; the first bracket follows the policy (base 0
    /// for `Cycle`, the fixed base otherwise).
    pub fn new(
        name: String,
        levels: &ResourceLevels,
        policy: CyclePolicy,
        sampler: Box<dyn Sampler>,
        seed: u64,
    ) -> Self {
        let base = match policy {
            CyclePolicy::Fixed(b) => b,
            CyclePolicy::Cycle => 0,
        };
        Self {
            name,
            bracket: SyncBracket::new(levels, base),
            policy,
            next_base: (base + 1) % levels.k(),
            sampler,
            theta: ThetaTracker::new(seed ^ 0x7e7a),
        }
    }

    fn advance_bracket(&mut self, levels: &ResourceLevels) {
        let base = match self.policy {
            CyclePolicy::Fixed(b) => b,
            CyclePolicy::Cycle => {
                let b = self.next_base;
                self.next_base = (b + 1) % levels.k();
                b
            }
        };
        self.bracket = SyncBracket::new(levels, base);
    }
}

impl Method for SyncHb {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        if let Some(theta) = self.theta.maybe_refresh(ctx.history, ctx.space) {
            self.sampler.set_theta(&theta);
        }
        if self.bracket.is_done() {
            self.advance_bracket(ctx.levels);
        }
        while self.bracket.needs_configs() > 0 {
            let config = self.sampler.sample(ctx);
            self.bracket.add_config(config);
        }
        match self.bracket.next_job() {
            Some((config, level)) => Some(JobSpec {
                config,
                level,
                resource: ctx.levels.resource(level),
                bracket: Some(self.bracket.base_level()),
                id: 0,
            }),
            // Barrier: rung in flight, wait for stragglers.
            None => None,
        }
    }

    /// Batch dispatch: the whole rung fill comes from one
    /// [`Sampler::sample_batch`] round (one fit for up to `R` configs
    /// instead of one per config), then jobs are popped until `k` are out
    /// or the rung barrier is hit.
    fn next_jobs(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<JobSpec> {
        if k <= 1 {
            // Must stay bit-identical to the sequential path.
            return (0..k).filter_map(|_| self.next_job(ctx)).collect();
        }
        if let Some(theta) = self.theta.maybe_refresh(ctx.history, ctx.space) {
            self.sampler.set_theta(&theta);
        }
        if self.bracket.is_done() {
            self.advance_bracket(ctx.levels);
        }
        let need = self.bracket.needs_configs();
        if need > 0 {
            for config in self.sampler.sample_batch(ctx, need) {
                self.bracket.add_config(config);
            }
        }
        let mut jobs = Vec::with_capacity(k);
        while jobs.len() < k {
            match self.bracket.next_job() {
                Some((config, level)) => jobs.push(JobSpec {
                    config,
                    level,
                    resource: ctx.levels.resource(level),
                    bracket: Some(self.bracket.base_level()),
                    id: 0,
                }),
                // Barrier: rung in flight, wait for stragglers.
                None => break,
            }
        }
        jobs
    }

    fn on_result(&mut self, outcome: &Outcome, _ctx: &mut MethodContext<'_>) {
        // A quarantined job must still count toward the rung barrier or
        // the bracket would wait on it forever; as +inf it sorts last and
        // is (almost) never promoted. This is precisely why failures hurt
        // the synchronous engine more: the barrier pays for every failure,
        // while the async engine just samples on.
        let value = if outcome.is_failed() {
            f64::INFINITY
        } else {
            outcome.value
        };
        self.bracket.on_result(outcome.spec.config.clone(), value);
    }

    fn set_telemetry(&mut self, telemetry: hypertune_telemetry::TelemetryHandle) {
        // The synchronous engine emits no events of its own; the sampler
        // still reports surrogate fits and acquisition timing.
        self.sampler.set_telemetry(telemetry);
    }

    fn set_degraded(&mut self, degraded: bool) {
        // Rung barriers must still resolve (pausing them would deadlock
        // the batch), so only the sampler degrades.
        self.sampler.set_degraded(degraded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::sampler::RandomSampler;
    use hypertune_space::ConfigSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Env {
        space: ConfigSpace,
        levels: ResourceLevels,
        history: History,
        rng: StdRng,
    }

    impl Env {
        fn new() -> Self {
            let levels = ResourceLevels::new(27.0, 3);
            Self {
                space: ConfigSpace::builder().float("x", 0.0, 1.0).build(),
                levels: levels.clone(),
                history: History::new(levels),
                rng: StdRng::seed_from_u64(0),
            }
        }

        fn ctx(&mut self) -> MethodContext<'_> {
            MethodContext {
                space: &self.space,
                levels: &self.levels,
                history: &self.history,
                pending: &[],
                rng: &mut self.rng,
                n_workers: 4,
                now: 0.0,
            }
        }
    }

    fn complete(m: &mut SyncHb, env: &mut Env, job: JobSpec) {
        let value = env.space.encode(&job.config)[0];
        let outcome = Outcome {
            spec: job,
            value,
            test_value: value,
            cost: 1.0,
            finished_at: 0.0,
            status: crate::method::OutcomeStatus::Success,
            fail_status: None,
        };
        m.on_result(&outcome, &mut env.ctx());
    }

    #[test]
    fn sha_runs_bracket0_repeatedly() {
        let mut env = Env::new();
        let mut m = SyncHb::new(
            "SHA".into(),
            &env.levels,
            CyclePolicy::Fixed(0),
            Box::new(RandomSampler),
            0,
        );
        // Rung 0 of bracket 0: exactly 27 jobs at level 0, then a barrier.
        let mut jobs = Vec::new();
        for _ in 0..27 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            assert_eq!(j.level, 0);
            assert_eq!(j.bracket, Some(0));
            jobs.push(j);
        }
        assert!(m.next_job(&mut env.ctx()).is_none(), "barrier");
        for j in jobs {
            complete(&mut m, &mut env, j);
        }
        // Rung 1: 9 jobs at level 1.
        let j = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j.level, 1);
    }

    #[test]
    fn hyperband_cycles_brackets() {
        let mut env = Env::new();
        let mut m = SyncHb::new(
            "Hyperband".into(),
            &env.levels,
            CyclePolicy::Cycle,
            Box::new(RandomSampler),
            0,
        );
        // Drive bracket 0 to completion (27 + 9 + 3 + 1 jobs).
        for expected in [27usize, 9, 3, 1] {
            let mut jobs = Vec::new();
            for _ in 0..expected {
                jobs.push(m.next_job(&mut env.ctx()).unwrap());
            }
            assert!(m.next_job(&mut env.ctx()).is_none());
            for j in jobs {
                complete(&mut m, &mut env, j);
            }
        }
        // Next bracket must start at base level 1 with 12 configs.
        let j = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j.level, 1);
        assert_eq!(j.bracket, Some(1));
    }

    #[test]
    fn full_sha_iteration_selects_best_config() {
        let mut env = Env::new();
        let mut m = SyncHb::new(
            "SHA".into(),
            &env.levels,
            CyclePolicy::Fixed(0),
            Box::new(RandomSampler),
            0,
        );
        let mut last_rung_jobs: Vec<JobSpec> = Vec::new();
        for expected in [27usize, 9, 3, 1] {
            let mut jobs = Vec::new();
            for _ in 0..expected {
                jobs.push(m.next_job(&mut env.ctx()).unwrap());
            }
            last_rung_jobs = jobs.clone();
            for j in jobs {
                complete(&mut m, &mut env, j);
            }
        }
        // The survivor is the config with the smallest value (= x).
        assert_eq!(last_rung_jobs.len(), 1);
        assert_eq!(last_rung_jobs[0].level, 3);
        // A new bracket starts afterwards (same base for SHA).
        let j = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j.level, 0);
    }
}
