//! All tuning methods: Hyper-Tune and the paper's baselines (§5.1).
//!
//! Two engines cover the Hyperband family:
//!
//! - [`SyncHb`] — synchronous successive halving with barriers
//!   (SHA, Hyperband, BOHB, MFES-HB, Batch-BO-style batching);
//! - [`AsyncHb`] — asynchronous promotion (ASHA, A-Hyperband, A-BOHB,
//!   and **Hyper-Tune** itself), parameterized by bracket policy
//!   (fixed / round-robin / learned bracket selection), the D-ASHA delay
//!   condition, and the sampler.
//!
//! [`MethodKind`] is the factory the experiment harness uses: every
//! method/ablation in the paper's figures is one enum variant.

mod async_hb;
mod lce_stop;
mod median_stop;
mod simple;
mod sync_hb;

pub use async_hb::{AsyncHb, BracketPolicy};
pub use lce_stop::LceStop;
pub use median_stop::MedianStop;
pub use simple::{ABo, ARandom, ARea, BatchBo};
pub use sync_hb::{CyclePolicy, SyncHb};

use crate::levels::ResourceLevels;
use crate::method::Method;
use crate::sampler::{BoSampler, MfesSampler, RandomSampler, TpeSampler};

/// Every method evaluated in the paper, as a buildable enum.
///
/// Serde-derived (unit variants serialize as their names, e.g.
/// `"HyperTune"`) so a study spec can name its method in a JSONL
/// command stream or a sidecar file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MethodKind {
    /// Asynchronous random search with complete evaluations.
    ARandom,
    /// Synchronous batch Bayesian optimization (González et al.).
    BatchBo,
    /// Asynchronous Bayesian optimization with median imputation.
    ABo,
    /// Synchronous successive halving (most aggressive bracket).
    Sha,
    /// ASHA: asynchronous successive halving.
    Asha,
    /// Synchronous Hyperband (brackets cycled round-robin).
    Hyperband,
    /// Asynchronous Hyperband (ASHA brackets, round-robin).
    AHyperband,
    /// BOHB: Hyperband + Bayesian-optimization sampling.
    Bohb,
    /// Asynchronous BOHB (parallelized via ASHA, as in §5.7).
    ABohb,
    /// MFES-HB: Hyperband + multi-fidelity ensemble sampling.
    MfesHb,
    /// Asynchronous regularized evolution (§5.2).
    ARea,
    /// Hyper-Tune: bracket selection + D-ASHA + MFES (the paper's method).
    HyperTune,
    /// Ablation: Hyper-Tune without bracket selection (round-robin).
    HyperTuneNoBs,
    /// Ablation: Hyper-Tune without the D-ASHA delay (plain ASHA rule).
    HyperTuneNoDasha,
    /// Ablation: Hyper-Tune without MFES (high-fidelity BO sampler).
    HyperTuneNoMfes,
    /// Figure 8 variant: ASHA with the D-ASHA delay.
    AshaDasha,
    /// Figure 8 variant: A-Hyperband with the D-ASHA delay.
    AHyperbandDasha,
    /// Figure 8 variant: A-BOHB with the D-ASHA delay.
    ABohbDasha,
    /// Figure 8 variant: A-Hyperband with bracket selection.
    AHyperbandBs,
    /// Figure 8 variant: A-BOHB with bracket selection.
    ABohbBs,
    /// BOHB with the original TPE sampler instead of RF-EI (extra
    /// ablation: sampler-family comparison).
    BohbTpe,
    /// Hyper-Tune with the TPE sampler dropped into the optimizer slot
    /// (extra ablation: demonstrates the generic optimizer abstraction).
    HyperTuneTpe,
    /// The median stopping rule of Vizier/Ray Tune (related work §2).
    MedianStop,
    /// Early stopping by learning-curve extrapolation (related work §2).
    LceStop,
}

impl MethodKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::ARandom => "A-Random",
            MethodKind::BatchBo => "BO",
            MethodKind::ABo => "A-BO",
            MethodKind::Sha => "SHA",
            MethodKind::Asha => "ASHA",
            MethodKind::Hyperband => "Hyperband",
            MethodKind::AHyperband => "A-Hyperband",
            MethodKind::Bohb => "BOHB",
            MethodKind::ABohb => "A-BOHB",
            MethodKind::MfesHb => "MFES-HB",
            MethodKind::ARea => "A-REA",
            MethodKind::HyperTune => "Hyper-Tune",
            MethodKind::HyperTuneNoBs => "Hyper-Tune w/o BS",
            MethodKind::HyperTuneNoDasha => "Hyper-Tune w/o D-ASHA",
            MethodKind::HyperTuneNoMfes => "Hyper-Tune w/o MFES",
            MethodKind::AshaDasha => "ASHA + D-ASHA",
            MethodKind::AHyperbandDasha => "A-Hyperband + D-ASHA",
            MethodKind::ABohbDasha => "A-BOHB + D-ASHA",
            MethodKind::AHyperbandBs => "A-Hyperband + BS",
            MethodKind::ABohbBs => "A-BOHB + BS",
            MethodKind::BohbTpe => "BOHB (TPE)",
            MethodKind::HyperTuneTpe => "Hyper-Tune (TPE)",
            MethodKind::MedianStop => "Median-Stop",
            MethodKind::LceStop => "LCE-Stop",
        }
    }

    /// `true` for methods without synchronization barriers.
    pub fn is_async(&self) -> bool {
        !matches!(
            self,
            MethodKind::BatchBo
                | MethodKind::Sha
                | MethodKind::Hyperband
                | MethodKind::Bohb
                | MethodKind::MfesHb
                | MethodKind::BohbTpe
        )
    }

    /// Every variant, in declaration order — the full sweep the
    /// determinism and batch-contract tests iterate over.
    pub fn all() -> &'static [MethodKind] {
        &[
            MethodKind::ARandom,
            MethodKind::BatchBo,
            MethodKind::ABo,
            MethodKind::Sha,
            MethodKind::Asha,
            MethodKind::Hyperband,
            MethodKind::AHyperband,
            MethodKind::Bohb,
            MethodKind::ABohb,
            MethodKind::MfesHb,
            MethodKind::ARea,
            MethodKind::HyperTune,
            MethodKind::HyperTuneNoBs,
            MethodKind::HyperTuneNoDasha,
            MethodKind::HyperTuneNoMfes,
            MethodKind::AshaDasha,
            MethodKind::AHyperbandDasha,
            MethodKind::ABohbDasha,
            MethodKind::AHyperbandBs,
            MethodKind::ABohbBs,
            MethodKind::BohbTpe,
            MethodKind::HyperTuneTpe,
            MethodKind::MedianStop,
            MethodKind::LceStop,
        ]
    }

    /// The ten baselines of §5.1 plus A-REA, in the paper's order.
    pub fn baselines() -> &'static [MethodKind] {
        &[
            MethodKind::ARandom,
            MethodKind::BatchBo,
            MethodKind::ABo,
            MethodKind::Sha,
            MethodKind::Asha,
            MethodKind::Hyperband,
            MethodKind::AHyperband,
            MethodKind::Bohb,
            MethodKind::ABohb,
            MethodKind::MfesHb,
            MethodKind::ARea,
        ]
    }

    /// Instantiates the method for a given level ladder and seed.
    pub fn build(&self, levels: &ResourceLevels, seed: u64) -> Box<dyn Method> {
        use BracketPolicy as BP;
        use CyclePolicy as CP;
        let name = self.name().to_string();
        match self {
            MethodKind::ARandom => Box::new(ARandom::new()),
            MethodKind::BatchBo => Box::new(BatchBo::new(seed)),
            MethodKind::ABo => Box::new(ABo::new(seed)),
            MethodKind::ARea => Box::new(ARea::new(seed)),
            MethodKind::Sha => Box::new(SyncHb::new(
                name,
                levels,
                CP::Fixed(0),
                Box::new(RandomSampler),
                seed,
            )),
            MethodKind::Hyperband => Box::new(SyncHb::new(
                name,
                levels,
                CP::Cycle,
                Box::new(RandomSampler),
                seed,
            )),
            MethodKind::Bohb => Box::new(SyncHb::new(
                name,
                levels,
                CP::Cycle,
                Box::new(BoSampler::new(seed)),
                seed,
            )),
            MethodKind::MfesHb => Box::new(SyncHb::new(
                name,
                levels,
                CP::Cycle,
                Box::new(MfesSampler::new(seed)),
                seed,
            )),
            MethodKind::Asha => Box::new(AsyncHb::new(
                name,
                levels,
                BP::fixed(0),
                false,
                Box::new(RandomSampler),
                seed,
            )),
            MethodKind::AshaDasha => Box::new(AsyncHb::new(
                name,
                levels,
                BP::fixed(0),
                true,
                Box::new(RandomSampler),
                seed,
            )),
            MethodKind::AHyperband => Box::new(AsyncHb::new(
                name,
                levels,
                BP::round_robin(levels),
                false,
                Box::new(RandomSampler),
                seed,
            )),
            MethodKind::AHyperbandDasha => Box::new(AsyncHb::new(
                name,
                levels,
                BP::round_robin(levels),
                true,
                Box::new(RandomSampler),
                seed,
            )),
            MethodKind::AHyperbandBs => Box::new(AsyncHb::new(
                name,
                levels,
                BP::learned(levels),
                false,
                Box::new(RandomSampler),
                seed,
            )),
            MethodKind::ABohb => Box::new(AsyncHb::new(
                name,
                levels,
                BP::round_robin(levels),
                false,
                Box::new(BoSampler::new(seed)),
                seed,
            )),
            MethodKind::ABohbDasha => Box::new(AsyncHb::new(
                name,
                levels,
                BP::round_robin(levels),
                true,
                Box::new(BoSampler::new(seed)),
                seed,
            )),
            MethodKind::ABohbBs => Box::new(AsyncHb::new(
                name,
                levels,
                BP::learned(levels),
                false,
                Box::new(BoSampler::new(seed)),
                seed,
            )),
            MethodKind::HyperTune => Box::new(AsyncHb::new(
                name,
                levels,
                BP::learned(levels),
                true,
                Box::new(MfesSampler::new(seed)),
                seed,
            )),
            MethodKind::HyperTuneNoBs => Box::new(AsyncHb::new(
                name,
                levels,
                BP::round_robin(levels),
                true,
                Box::new(MfesSampler::new(seed)),
                seed,
            )),
            MethodKind::HyperTuneNoDasha => Box::new(AsyncHb::new(
                name,
                levels,
                BP::learned(levels),
                false,
                Box::new(MfesSampler::new(seed)),
                seed,
            )),
            MethodKind::HyperTuneNoMfes => Box::new(AsyncHb::new(
                name,
                levels,
                BP::learned(levels),
                true,
                Box::new(BoSampler::new(seed)),
                seed,
            )),
            MethodKind::BohbTpe => Box::new(SyncHb::new(
                name,
                levels,
                CP::Cycle,
                Box::new(TpeSampler::new()),
                seed,
            )),
            MethodKind::HyperTuneTpe => Box::new(AsyncHb::new(
                name,
                levels,
                BP::learned(levels),
                true,
                Box::new(TpeSampler::new()),
                seed,
            )),
            MethodKind::MedianStop => {
                Box::new(MedianStop::new(levels.k(), Box::new(RandomSampler)))
            }
            MethodKind::LceStop => Box::new(LceStop::new(Box::new(RandomSampler))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        let levels = ResourceLevels::new(27.0, 3);
        let kinds = [
            MethodKind::ARandom,
            MethodKind::BatchBo,
            MethodKind::ABo,
            MethodKind::Sha,
            MethodKind::Asha,
            MethodKind::Hyperband,
            MethodKind::AHyperband,
            MethodKind::Bohb,
            MethodKind::ABohb,
            MethodKind::MfesHb,
            MethodKind::ARea,
            MethodKind::HyperTune,
            MethodKind::HyperTuneNoBs,
            MethodKind::HyperTuneNoDasha,
            MethodKind::HyperTuneNoMfes,
            MethodKind::AshaDasha,
            MethodKind::AHyperbandDasha,
            MethodKind::ABohbDasha,
            MethodKind::AHyperbandBs,
            MethodKind::ABohbBs,
            MethodKind::BohbTpe,
            MethodKind::HyperTuneTpe,
            MethodKind::MedianStop,
            MethodKind::LceStop,
        ];
        for k in kinds {
            let m = k.build(&levels, 0);
            assert_eq!(m.name(), k.name());
        }
    }

    #[test]
    fn sync_flags_match_paper() {
        // "Batch-BO, SHA, Hyperband, BOHB, and MFES-HB are synchronous
        // methods, and the others are asynchronous ones."
        assert!(!MethodKind::BatchBo.is_async());
        assert!(!MethodKind::Sha.is_async());
        assert!(!MethodKind::Hyperband.is_async());
        assert!(!MethodKind::Bohb.is_async());
        assert!(!MethodKind::MfesHb.is_async());
        assert!(MethodKind::ARandom.is_async());
        assert!(MethodKind::ABo.is_async());
        assert!(MethodKind::Asha.is_async());
        assert!(MethodKind::AHyperband.is_async());
        assert!(MethodKind::ABohb.is_async());
        assert!(MethodKind::HyperTune.is_async());
    }

    #[test]
    fn baselines_list_has_eleven_methods() {
        assert_eq!(MethodKind::baselines().len(), 11);
    }
}
