//! Early stopping by learning-curve extrapolation (LCE-Stop): the
//! related-work baseline of Domhan et al. 2015 / Klein et al. 2017 in
//! this framework's terms.
//!
//! Every configuration climbs the resource ladder level by level. After
//! each level, the configuration's partial curve
//! `(r_0, y_0), …, (r_j, y_j)` is fit by [`crate::lce`]; the climb
//! continues only while the extrapolated value at `R` could still beat
//! the current full-fidelity incumbent (within a safety band). Fully
//! asynchronous, like the median rule, but using the curve *shape*
//! instead of cross-configuration quantiles.

use std::collections::HashMap;
use std::collections::VecDeque;

use hypertune_space::Config;

use crate::lce;
use crate::method::{JobSpec, Method, MethodContext, Outcome};
use crate::sampler::Sampler;

/// Learning-curve-extrapolation stopping method; see the module docs.
pub struct LceStop {
    sampler: Box<dyn Sampler>,
    /// Partial curves of configurations still alive.
    curves: HashMap<Config, Vec<(f64, f64)>>,
    /// Survivors waiting for their next level.
    ready_to_climb: VecDeque<(Config, usize)>,
    /// Safety band in RMSE multiples (larger = more conservative about
    /// stopping).
    pub band_rmse: f64,
}

impl LceStop {
    /// Creates the method with the given sampler for fresh configs.
    pub fn new(sampler: Box<dyn Sampler>) -> Self {
        Self {
            sampler,
            curves: HashMap::new(),
            ready_to_climb: VecDeque::new(),
            band_rmse: 1.0,
        }
    }
}

impl Method for LceStop {
    fn name(&self) -> &str {
        "LCE-Stop"
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        if let Some((config, level)) = self.ready_to_climb.pop_front() {
            return Some(JobSpec {
                config,
                level,
                resource: ctx.levels.resource(level),
                bracket: None,
                id: 0,
            });
        }
        let config = self.sampler.sample(ctx);
        Some(JobSpec {
            config,
            level: 0,
            resource: ctx.levels.resource(0),
            bracket: None,
            id: 0,
        })
    }

    fn on_result(&mut self, outcome: &Outcome, ctx: &mut MethodContext<'_>) {
        // A quarantined config is dropped outright: an inf point would
        // wreck the curve fit, and the config has proven unevaluable.
        if outcome.is_failed() {
            self.curves.remove(&outcome.spec.config);
            return;
        }
        let level = outcome.spec.level;
        let curve = self.curves.entry(outcome.spec.config.clone()).or_default();
        curve.push((outcome.spec.resource, outcome.value));
        if level >= ctx.levels.max_level() {
            // Complete: the curve is no longer needed.
            self.curves.remove(&outcome.spec.config);
            return;
        }
        // Continue unless the extrapolation rules the config out against
        // the full-fidelity incumbent (or best-anywhere before one
        // exists).
        let incumbent = ctx
            .history
            .incumbent()
            .map(|m| m.value)
            .unwrap_or(f64::INFINITY);
        let r_max = ctx.levels.resource(ctx.levels.max_level());
        if lce::should_continue(curve, r_max, incumbent, self.band_rmse) {
            self.ready_to_climb
                .push_back((outcome.spec.config.clone(), level + 1));
        } else {
            self.curves.remove(&outcome.spec.config);
        }
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.sampler.set_degraded(degraded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, Measurement};
    use crate::levels::ResourceLevels;
    use crate::sampler::RandomSampler;
    use hypertune_space::{ConfigSpace, ParamValue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Env {
        space: ConfigSpace,
        levels: ResourceLevels,
        history: History,
        rng: StdRng,
    }

    impl Env {
        fn new() -> Self {
            let levels = ResourceLevels::new(27.0, 3);
            Self {
                space: ConfigSpace::builder().float("x", 0.0, 1.0).build(),
                levels: levels.clone(),
                history: History::new(levels),
                rng: StdRng::seed_from_u64(0),
            }
        }

        fn ctx(&mut self) -> MethodContext<'_> {
            MethodContext {
                space: &self.space,
                levels: &self.levels,
                history: &self.history,
                pending: &[],
                rng: &mut self.rng,
                n_workers: 2,
                now: 0.0,
            }
        }

        fn finish(&mut self, m: &mut LceStop, job: JobSpec, value: f64) {
            self.history.record(Measurement {
                config: job.config.clone(),
                level: job.level,
                resource: job.resource,
                value,
                test_value: value,
                cost: 1.0,
                finished_at: 0.0,
            });
            let o = Outcome {
                spec: job,
                value,
                test_value: value,
                cost: 1.0,
                finished_at: 0.0,
                status: crate::method::OutcomeStatus::Success,
                fail_status: None,
            };
            m.on_result(&o, &mut self.ctx());
        }
    }

    #[test]
    fn single_observation_always_climbs() {
        let mut env = Env::new();
        let mut m = LceStop::new(Box::new(RandomSampler));
        let j = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j.level, 0);
        env.finish(&mut m, j, 0.8);
        let j2 = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j2.level, 1, "one point is never enough to stop");
    }

    #[test]
    fn plateaued_curve_is_stopped_against_good_incumbent() {
        let mut env = Env::new();
        let mut m = LceStop::new(Box::new(RandomSampler));
        // Install a strong incumbent at full fidelity.
        let inc = Config::new(vec![ParamValue::Float(0.0)]);
        env.history.record(Measurement {
            config: inc,
            level: 3,
            resource: 27.0,
            value: 0.05,
            test_value: 0.05,
            cost: 1.0,
            finished_at: 0.0,
        });
        // Drive one config through two plateaued levels (0.5, 0.5).
        let j = m.next_job(&mut env.ctx()).unwrap();
        let cfg = j.config.clone();
        env.finish(&mut m, j, 0.5);
        let j2 = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j2.config, cfg);
        env.finish(&mut m, j2, 0.5);
        // With a flat curve extrapolating to ~0.5 >> 0.05, it must stop:
        // the next job is a fresh base config, not the old one at level 2.
        let j3 = m.next_job(&mut env.ctx()).unwrap();
        assert_eq!(j3.level, 0);
        assert_ne!(j3.config, cfg);
        assert!(m.curves.is_empty() || !m.curves.contains_key(&cfg));
    }

    #[test]
    fn improving_curve_keeps_climbing_to_completion() {
        let mut env = Env::new();
        let mut m = LceStop::new(Box::new(RandomSampler));
        let j = m.next_job(&mut env.ctx()).unwrap();
        let cfg = j.config.clone();
        // Steeply improving curve: 0.9 → 0.3 → 0.12 → finish.
        env.finish(&mut m, j, 0.9);
        for (expect_level, value) in [(1usize, 0.3), (2, 0.12), (3, 0.06)] {
            let j = m.next_job(&mut env.ctx()).unwrap();
            assert_eq!(j.level, expect_level);
            assert_eq!(j.config, cfg);
            env.finish(&mut m, j, value);
        }
        // Completed: curve state cleaned up.
        assert!(!m.curves.contains_key(&cfg));
    }

    #[test]
    fn never_blocks() {
        let mut env = Env::new();
        let mut m = LceStop::new(Box::new(RandomSampler));
        for _ in 0..40 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            let v = env.space.encode(&j.config)[0];
            env.finish(&mut m, j, v);
        }
    }
}
