//! The asynchronous Hyperband-family engine — including Hyper-Tune.
//!
//! [`AsyncHb`] composes the paper's three components behind three
//! parameters:
//!
//! | parameter | Hyper-Tune | ablations / baselines |
//! |---|---|---|
//! | bracket policy | learned ([`BracketSelector`], §4.1) | fixed base (ASHA), round-robin (A-Hyperband) |
//! | delay condition | on (D-ASHA, Algorithm 1) | off (plain ASHA promotion) |
//! | sampler | MFES ensemble (§4.3) | random (A-HB), high-fidelity BO (A-BOHB) |
//!
//! `next_job` never blocks: it first tries promotions across all brackets
//! (highest rungs first, per Algorithm 1), then samples a fresh
//! configuration at the base rung of the policy-chosen bracket — so
//! workers are never idle and stragglers never stall the run.

use crate::allocator::{BracketSelector, RoundRobinSelector};
use crate::bracket::AsyncBracket;
use crate::diagnostics::Diagnostics;
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome};
use crate::ranking::ThetaTracker;
use crate::sampler::Sampler;
use hypertune_telemetry::{Event, TelemetryHandle};
use rand::rngs::StdRng;

/// How new configurations are assigned to brackets.
pub enum BracketPolicy {
    /// Always the same bracket (ASHA uses base 0).
    Fixed(usize),
    /// Cycle through all brackets (A-Hyperband).
    RoundRobin(RoundRobinSelector),
    /// The paper's learned bracket selection (§4.1).
    Learned(BracketSelector),
}

impl BracketPolicy {
    /// A fixed-bracket policy.
    pub fn fixed(base: usize) -> Self {
        BracketPolicy::Fixed(base)
    }

    /// A round-robin policy over the brackets of `levels`.
    pub fn round_robin(levels: &ResourceLevels) -> Self {
        BracketPolicy::RoundRobin(RoundRobinSelector::new(levels))
    }

    /// A learned bracket-selection policy over the brackets of `levels`.
    pub fn learned(levels: &ResourceLevels) -> Self {
        BracketPolicy::Learned(BracketSelector::new(levels))
    }

    fn select(&mut self, rng: &mut StdRng) -> usize {
        match self {
            BracketPolicy::Fixed(b) => *b,
            BracketPolicy::RoundRobin(s) => s.select(),
            BracketPolicy::Learned(s) => s.select(rng),
        }
    }
}

/// Asynchronous Hyperband-family engine; see the module docs.
pub struct AsyncHb {
    name: String,
    brackets: Vec<AsyncBracket>,
    policy: BracketPolicy,
    sampler: Box<dyn Sampler>,
    theta: ThetaTracker,
    diagnostics: Diagnostics,
    telemetry: TelemetryHandle,
    /// Breaker-open mode: θ refreshes and promotions pause, the sampler
    /// (already told to degrade itself) draws randomly.
    degraded: bool,
}

impl AsyncHb {
    /// Creates the engine with one [`AsyncBracket`] per base level.
    pub fn new(
        name: String,
        levels: &ResourceLevels,
        policy: BracketPolicy,
        delay: bool,
        sampler: Box<dyn Sampler>,
        seed: u64,
    ) -> Self {
        let brackets = (0..levels.k())
            .map(|b| AsyncBracket::new(levels, b, delay))
            .collect();
        Self {
            name,
            brackets,
            policy,
            sampler,
            theta: ThetaTracker::new(seed ^ 0xa57c),
            diagnostics: Diagnostics::new(levels.k()),
            telemetry: TelemetryHandle::disabled(),
            degraded: false,
        }
    }

    /// The run diagnostics recorded so far (θ history, bracket usage).
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// The latest precision weights `θ`, if estimated (for diagnostics).
    pub fn theta(&self) -> Option<&[f64]> {
        self.theta.theta()
    }

    /// Step 4 of Figure 3: refresh θ from the multi-fidelity history and
    /// push it into both the allocator and the MFES sampler.
    fn refresh_theta(&mut self, ctx: &MethodContext<'_>) {
        let refresh_span = self.telemetry.span("theta_refresh");
        if let Some(theta) = self.theta.maybe_refresh(ctx.history, ctx.space) {
            drop(refresh_span);
            let n_full = ctx.history.len_at(ctx.levels.max_level());
            self.diagnostics.record_theta(n_full, &theta);
            self.sampler.set_theta(&theta);
            if let BracketPolicy::Learned(s) = &mut self.policy {
                s.update_theta(&theta);
            }
            let policy = &self.policy;
            self.telemetry
                .emit_with(ctx.now, || Event::BracketWeightsUpdated {
                    n_full,
                    theta: theta.clone(),
                    weights: match policy {
                        BracketPolicy::Learned(s) => {
                            s.weights().map(<[f64]>::to_vec).unwrap_or_default()
                        }
                        _ => Vec::new(),
                    },
                });
        } else {
            // Cadence said "not yet": nothing fitted, nothing to time.
            refresh_span.cancel();
        }
    }

    /// Promotions first (Algorithm 1, lines 5–12): the first bracket with
    /// a promotable rung yields the job.
    fn try_promotion(&mut self, ctx: &MethodContext<'_>) -> Option<JobSpec> {
        for (b, bracket) in self.brackets.iter_mut().enumerate() {
            let promotion = if self.telemetry.is_enabled() {
                let mut delayed = Vec::new();
                let p = bracket.try_promote_traced(&mut delayed);
                for level in delayed {
                    self.telemetry
                        .emit_with(ctx.now, || Event::PromotionDelayed { bracket: b, level });
                }
                p
            } else {
                bracket.try_promote()
            };
            if let Some((config, level)) = promotion {
                self.diagnostics.record_promotion(b);
                self.telemetry.emit_with(ctx.now, || Event::PromotionMade {
                    bracket: b,
                    to_level: level,
                });
                return Some(JobSpec {
                    config,
                    level,
                    resource: ctx.levels.resource(level),
                    bracket: Some(b),
                    id: 0,
                });
            }
        }
        None
    }
}

impl Method for AsyncHb {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        // Breaker open: don't refit θ on a starved history and don't
        // promote on the strength of it; keep workers busy with random
        // base-rung starts until the storm passes.
        if !self.degraded {
            self.refresh_theta(ctx);

            if let Some(job) = self.try_promotion(ctx) {
                return Some(job);
            }
        }

        // No promotion possible: sample a new configuration at the base
        // rung of the policy-chosen bracket (lines 13–14).
        let b = self.policy.select(ctx.rng);
        self.diagnostics.record_start(b);
        let config = self.sampler.sample(ctx);
        self.brackets[b].add_base_job();
        let level = self.brackets[b].base_level();
        Some(JobSpec {
            config,
            level,
            resource: ctx.levels.resource(level),
            bracket: Some(b),
            id: 0,
        })
    }

    /// Batch dispatch: one θ refresh, promotions drained first (they cost
    /// no sampler work), then all remaining slots filled from a single
    /// [`Sampler::sample_batch`] round — so `k` idle workers trigger one
    /// surrogate fit instead of up to `k`.
    fn next_jobs(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<JobSpec> {
        if k <= 1 {
            // Must stay bit-identical to the sequential path.
            return (0..k).filter_map(|_| self.next_job(ctx)).collect();
        }
        let mut jobs = Vec::with_capacity(k);
        if !self.degraded {
            self.refresh_theta(ctx);
            while jobs.len() < k {
                match self.try_promotion(ctx) {
                    Some(job) => jobs.push(job),
                    None => break,
                }
            }
        }
        let m = k - jobs.len();
        if m > 0 {
            let chosen: Vec<usize> = (0..m).map(|_| self.policy.select(ctx.rng)).collect();
            for &b in &chosen {
                self.diagnostics.record_start(b);
            }
            let configs = self.sampler.sample_batch(ctx, m);
            for (&b, config) in chosen.iter().zip(configs) {
                self.brackets[b].add_base_job();
                let level = self.brackets[b].base_level();
                jobs.push(JobSpec {
                    config,
                    level,
                    resource: ctx.levels.resource(level),
                    bracket: Some(b),
                    id: 0,
                });
            }
        }
        jobs
    }

    fn on_result(&mut self, outcome: &Outcome, _ctx: &mut MethodContext<'_>) {
        let b = outcome
            .spec
            .bracket
            .expect("async engine tags every job with its bracket");
        // A quarantined job still occupies its rung slot (the resource was
        // spent) but must never win a promotion: record it as +inf, which
        // `try_promote` skips. This is what keeps D-ASHA's rungs moving
        // under worker failures instead of waiting for a result that will
        // never arrive.
        let value = if outcome.is_failed() {
            self.diagnostics.record_failure(b);
            if let Some(status) = outcome.fail_status {
                self.diagnostics.record_failure_status(status);
            }
            f64::INFINITY
        } else {
            outcome.value
        };
        self.brackets[b].on_result(outcome.spec.config.clone(), outcome.spec.level, value);
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.sampler.set_telemetry(telemetry.clone());
        if let BracketPolicy::Learned(s) = &mut self.policy {
            s.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
        self.sampler.set_degraded(degraded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, Measurement};
    use crate::sampler::RandomSampler;
    use hypertune_space::ConfigSpace;
    use rand::SeedableRng;

    struct Env {
        space: ConfigSpace,
        levels: ResourceLevels,
        history: History,
        rng: StdRng,
    }

    impl Env {
        fn new() -> Self {
            let levels = ResourceLevels::new(27.0, 3);
            Self {
                space: ConfigSpace::builder().float("x", 0.0, 1.0).build(),
                levels: levels.clone(),
                history: History::new(levels),
                rng: StdRng::seed_from_u64(0),
            }
        }

        fn ctx(&mut self) -> MethodContext<'_> {
            MethodContext {
                space: &self.space,
                levels: &self.levels,
                history: &self.history,
                pending: &[],
                rng: &mut self.rng,
                n_workers: 4,
                now: 0.0,
            }
        }

        fn complete(&mut self, m: &mut AsyncHb, job: JobSpec) {
            let value = self.space.encode(&job.config)[0];
            self.history.record(Measurement {
                config: job.config.clone(),
                level: job.level,
                resource: job.resource,
                value,
                test_value: value,
                cost: 1.0,
                finished_at: 0.0,
            });
            let outcome = Outcome {
                spec: job,
                value,
                test_value: value,
                cost: 1.0,
                finished_at: 0.0,
                status: crate::method::OutcomeStatus::Success,
                fail_status: None,
            };
            m.on_result(&outcome, &mut self.ctx());
        }
    }

    fn asha(delay: bool) -> (Env, AsyncHb) {
        let env = Env::new();
        let m = AsyncHb::new(
            "test".into(),
            &env.levels,
            BracketPolicy::fixed(0),
            delay,
            Box::new(RandomSampler),
            0,
        );
        (env, m)
    }

    #[test]
    fn never_blocks() {
        let (mut env, mut m) = asha(false);
        for _ in 0..50 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            env.complete(&mut m, j);
        }
    }

    #[test]
    fn asha_promotes_after_enough_base_results() {
        let (mut env, mut m) = asha(false);
        // Complete base jobs until a promotion appears.
        let mut levels_seen = Vec::new();
        for _ in 0..12 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            levels_seen.push(j.level);
            env.complete(&mut m, j);
        }
        assert!(
            levels_seen.iter().any(|&l| l > 0),
            "expected a promotion within 12 jobs: {levels_seen:?}"
        );
    }

    #[test]
    fn dasha_promotes_less_eagerly_than_asha() {
        let count_promotions = |delay: bool| {
            let (mut env, mut m) = asha(delay);
            let mut promotions = 0;
            for _ in 0..40 {
                let j = m.next_job(&mut env.ctx()).unwrap();
                if j.level > 0 {
                    promotions += 1;
                }
                env.complete(&mut m, j);
            }
            promotions
        };
        let eager = count_promotions(false);
        let delayed = count_promotions(true);
        assert!(
            delayed <= eager,
            "D-ASHA must not promote more than ASHA: {delayed} vs {eager}"
        );
        assert!(eager > 0);
    }

    #[test]
    fn round_robin_spreads_new_configs_over_brackets() {
        let env = Env::new();
        let mut env = env;
        let mut m = AsyncHb::new(
            "A-HB".into(),
            &env.levels,
            BracketPolicy::round_robin(&env.levels),
            false,
            Box::new(RandomSampler),
            0,
        );
        let mut base_levels = Vec::new();
        for _ in 0..8 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            // With no completions there are no promotions; every job is a
            // fresh config at its bracket's base level.
            base_levels.push(j.level);
            env.complete(&mut m, j);
        }
        // All four base levels appear.
        for lvl in 0..4 {
            assert!(base_levels.contains(&lvl), "levels {base_levels:?}");
        }
    }

    #[test]
    fn learned_policy_engine_runs() {
        let mut env = Env::new();
        let mut m = AsyncHb::new(
            "HT".into(),
            &env.levels,
            BracketPolicy::learned(&env.levels),
            true,
            Box::new(RandomSampler),
            0,
        );
        for _ in 0..60 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            env.complete(&mut m, j);
        }
        // After enough full evaluations θ becomes available.
        assert!(env.history.len_at(3) >= 4);
        assert!(m.theta().is_some());
    }

    #[test]
    fn failed_outcomes_release_slots_without_promoting() {
        let (mut env, mut m) = asha(false);
        // Quarantine every job: the engine must keep producing fresh
        // base-level work (failures never promote, rungs never stall).
        for _ in 0..20 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            assert_eq!(j.level, 0, "nothing promotable from all-failed rungs");
            let outcome = Outcome {
                spec: j,
                value: f64::INFINITY,
                test_value: f64::INFINITY,
                cost: 1.0,
                finished_at: 0.0,
                status: crate::method::OutcomeStatus::Failed,
                fail_status: Some(hypertune_cluster::JobStatus::Crashed),
            };
            m.on_result(&outcome, &mut env.ctx());
        }
        assert_eq!(m.diagnostics().bracket_failures[0], 20);
    }

    #[test]
    fn promotion_routed_back_to_owning_bracket() {
        let mut env = Env::new();
        let mut m = AsyncHb::new(
            "A-HB".into(),
            &env.levels,
            BracketPolicy::round_robin(&env.levels),
            false,
            Box::new(RandomSampler),
            0,
        );
        for _ in 0..40 {
            let j = m.next_job(&mut env.ctx()).unwrap();
            if j.level > 0 && j.bracket == Some(0) {
                // Promotion inside bracket 0: must target level 1+.
                assert!(j.level >= 1);
            }
            env.complete(&mut m, j);
        }
    }
}
