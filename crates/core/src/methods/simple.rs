//! Complete-evaluation baselines: A-Random, Batch-BO, A-BO, and A-REA.
//!
//! These methods never use partial evaluations — every job runs at the
//! maximum resource `R` — which is why they lag the Hyperband family on
//! expensive workloads (§5.3: "it takes them a long time to converge …
//! due to expensive evaluation cost").

use std::collections::VecDeque;

use hypertune_space::{neighbors, Config};
use rand::Rng;

use crate::method::{JobSpec, Method, MethodContext, Outcome};
use crate::sampler::{BoSampler, Sampler};

fn full_fidelity_job(config: Config, ctx: &MethodContext<'_>) -> JobSpec {
    let level = ctx.levels.max_level();
    JobSpec {
        config,
        level,
        resource: ctx.levels.resource(level),
        bracket: None,
        id: 0,
    }
}

/// Asynchronous random search with complete evaluations.
#[derive(Debug, Default)]
pub struct ARandom;

impl ARandom {
    /// Creates the method.
    pub fn new() -> Self {
        Self
    }
}

impl Method for ARandom {
    fn name(&self) -> &str {
        "A-Random"
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        Some(full_fidelity_job(ctx.space.sample(ctx.rng), ctx))
    }

    fn on_result(&mut self, _outcome: &Outcome, _ctx: &mut MethodContext<'_>) {}
}

/// Synchronous batch Bayesian optimization: propose `n_workers` configs,
/// evaluate them all, refit, repeat — with median imputation inside the
/// batch so the proposals spread out (the local-penalization idea of
/// González et al. as adapted in Algorithm 2).
pub struct BatchBo {
    sampler: BoSampler,
    /// Jobs of the current batch still to dispatch.
    remaining_in_batch: usize,
    /// Jobs of the current batch not yet completed.
    outstanding: usize,
}

impl BatchBo {
    /// Creates the method.
    pub fn new(seed: u64) -> Self {
        Self {
            sampler: BoSampler::pure(seed),
            remaining_in_batch: 0,
            outstanding: 0,
        }
    }
}

impl Method for BatchBo {
    fn name(&self) -> &str {
        "BO"
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        if self.remaining_in_batch == 0 {
            if self.outstanding > 0 {
                // Synchronization barrier: wait for the whole batch.
                return None;
            }
            self.remaining_in_batch = ctx.n_workers.max(1);
        }
        self.remaining_in_batch -= 1;
        self.outstanding += 1;
        let config = self.sampler.sample(ctx);
        Some(full_fidelity_job(config, ctx))
    }

    /// Batch dispatch: the whole remaining batch quota comes from one
    /// [`Sampler::sample_batch`] round (one fit), the barrier semantics
    /// are unchanged — returning fewer than `k` jobs leaves the rest of
    /// the workers idle until the batch completes.
    fn next_jobs(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<JobSpec> {
        if k <= 1 {
            // Must stay bit-identical to the sequential path.
            return (0..k).filter_map(|_| self.next_job(ctx)).collect();
        }
        if self.remaining_in_batch == 0 {
            if self.outstanding > 0 {
                return Vec::new();
            }
            self.remaining_in_batch = ctx.n_workers.max(1);
        }
        let take = k.min(self.remaining_in_batch);
        let configs = self.sampler.sample_batch(ctx, take);
        self.remaining_in_batch -= take;
        self.outstanding += take;
        configs
            .into_iter()
            .map(|config| full_fidelity_job(config, ctx))
            .collect()
    }

    fn on_result(&mut self, _outcome: &Outcome, _ctx: &mut MethodContext<'_>) {
        debug_assert!(self.outstanding > 0);
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.sampler.set_degraded(degraded);
    }
}

/// Asynchronous Bayesian optimization: a fresh model-based proposal for
/// every idle worker, with pending evaluations median-imputed.
pub struct ABo {
    sampler: BoSampler,
}

impl ABo {
    /// Creates the method.
    pub fn new(seed: u64) -> Self {
        Self {
            sampler: BoSampler::pure(seed),
        }
    }
}

impl Method for ABo {
    fn name(&self) -> &str {
        "A-BO"
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        let config = self.sampler.sample(ctx);
        Some(full_fidelity_job(config, ctx))
    }

    /// Batch dispatch: one fit, `k` constant-liar draws.
    fn next_jobs(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<JobSpec> {
        if k <= 1 {
            // Must stay bit-identical to the sequential path.
            return (0..k).filter_map(|_| self.next_job(ctx)).collect();
        }
        self.sampler
            .sample_batch(ctx, k)
            .into_iter()
            .map(|config| full_fidelity_job(config, ctx))
            .collect()
    }

    fn on_result(&mut self, _outcome: &Outcome, _ctx: &mut MethodContext<'_>) {}

    fn set_degraded(&mut self, degraded: bool) {
        self.sampler.set_degraded(degraded);
    }
}

/// Asynchronous regularized evolution (the A-REA comparison of §5.2):
/// tournament selection over a sliding population with single-parameter
/// mutations, oldest member evicted.
pub struct ARea {
    population: VecDeque<(Config, f64)>,
    population_size: usize,
    tournament_size: usize,
    /// Random seeds dispatched but not yet returned (so the initial
    /// population is not oversampled).
    outstanding_seeds: usize,
    #[allow(dead_code)]
    seed: u64,
}

impl ARea {
    /// Creates the method with the REA-standard population of 20 and
    /// tournament size 5.
    pub fn new(seed: u64) -> Self {
        Self {
            population: VecDeque::new(),
            population_size: 20,
            tournament_size: 5,
            outstanding_seeds: 0,
            seed,
        }
    }
}

impl Method for ARea {
    fn name(&self) -> &str {
        "A-REA"
    }

    fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
        let need_seed = self.population.len() + self.outstanding_seeds < self.population_size
            || self.population.is_empty();
        let config = if need_seed {
            self.outstanding_seeds += 1;
            ctx.space.sample(ctx.rng)
        } else {
            // Tournament: best of `tournament_size` random members.
            let mut best: Option<&(Config, f64)> = None;
            for _ in 0..self.tournament_size {
                let idx = ctx.rng.gen_range(0..self.population.len());
                let cand = &self.population[idx];
                if best.is_none_or(|b| cand.1 < b.1) {
                    best = Some(cand);
                }
            }
            let parent = best.expect("population non-empty").0.clone();
            neighbors::mutate_one(ctx.space, &parent, ctx.rng)
        };
        Some(full_fidelity_job(config, ctx))
    }

    fn on_result(&mut self, outcome: &Outcome, _ctx: &mut MethodContext<'_>) {
        // The seed slot is released either way, but a quarantined config
        // must not join the population — an inf member would poison
        // tournaments (it can never win, yet it evicts a real member).
        self.outstanding_seeds = self.outstanding_seeds.saturating_sub(1);
        if outcome.is_failed() {
            return;
        }
        self.population
            .push_back((outcome.spec.config.clone(), outcome.value));
        while self.population.len() > self.population_size {
            self.population.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::levels::ResourceLevels;
    use hypertune_space::ConfigSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env() -> (ConfigSpace, ResourceLevels, History) {
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let levels = ResourceLevels::new(27.0, 3);
        let history = History::new(levels.clone());
        (space, levels, history)
    }

    macro_rules! ctx {
        ($space:expr, $levels:expr, $history:expr, $rng:expr) => {
            MethodContext {
                space: &$space,
                levels: &$levels,
                history: &$history,
                pending: &[],
                rng: &mut $rng,
                n_workers: 3,
                now: 0.0,
            }
        };
    }

    fn outcome(spec: JobSpec, value: f64) -> Outcome {
        Outcome {
            spec,
            value,
            test_value: value,
            cost: 27.0,
            finished_at: 1.0,
            status: crate::method::OutcomeStatus::Success,
            fail_status: None,
        }
    }

    #[test]
    fn arandom_always_full_fidelity() {
        let (space, levels, history) = env();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = ARandom::new();
        for _ in 0..5 {
            let j = m.next_job(&mut ctx!(space, levels, history, rng)).unwrap();
            assert_eq!(j.level, 3);
            assert_eq!(j.resource, 27.0);
        }
    }

    #[test]
    fn batch_bo_barriers_between_batches() {
        let (space, levels, history) = env();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = BatchBo::new(1);
        // First batch: n_workers = 3 jobs, then a barrier.
        let j1 = m.next_job(&mut ctx!(space, levels, history, rng)).unwrap();
        let _j2 = m.next_job(&mut ctx!(space, levels, history, rng)).unwrap();
        let _j3 = m.next_job(&mut ctx!(space, levels, history, rng)).unwrap();
        assert!(m.next_job(&mut ctx!(space, levels, history, rng)).is_none());
        // One result back: still blocked (the straggler problem).
        m.on_result(&outcome(j1, 0.5), &mut ctx!(space, levels, history, rng));
        assert!(m.next_job(&mut ctx!(space, levels, history, rng)).is_none());
    }

    #[test]
    fn batch_bo_resumes_after_full_batch() {
        let (space, levels, history) = env();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = BatchBo::new(2);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|_| m.next_job(&mut ctx!(space, levels, history, rng)).unwrap())
            .collect();
        for j in jobs {
            m.on_result(&outcome(j, 0.5), &mut ctx!(space, levels, history, rng));
        }
        assert!(m.next_job(&mut ctx!(space, levels, history, rng)).is_some());
    }

    #[test]
    fn abo_never_blocks() {
        let (space, levels, history) = env();
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = ABo::new(3);
        for _ in 0..10 {
            assert!(m.next_job(&mut ctx!(space, levels, history, rng)).is_some());
        }
    }

    #[test]
    fn area_seeds_then_evolves() {
        let (space, levels, history) = env();
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = ARea::new(4);
        // Seed the population: 20 random configs.
        let seeds: Vec<JobSpec> = (0..20)
            .map(|_| m.next_job(&mut ctx!(space, levels, history, rng)).unwrap())
            .collect();
        for (i, j) in seeds.into_iter().enumerate() {
            // Config at x near 0 is best (value = x).
            let v = space.encode(&j.config)[0];
            m.on_result(&outcome(j, v), &mut ctx!(space, levels, history, rng));
            let _ = i;
        }
        assert_eq!(m.population.len(), 20);
        // Evolution phase: children are mutations, not uniform samples;
        // they should concentrate near the best parents over time.
        for _ in 0..30 {
            let j = m.next_job(&mut ctx!(space, levels, history, rng)).unwrap();
            let v = space.encode(&j.config)[0];
            m.on_result(&outcome(j, v), &mut ctx!(space, levels, history, rng));
        }
        let mean_val: f64 =
            m.population.iter().map(|(_, v)| v).sum::<f64>() / m.population.len() as f64;
        assert!(mean_val < 0.4, "population should improve: {mean_val}");
        assert_eq!(m.population.len(), 20, "population stays bounded");
    }

    #[test]
    fn area_failed_outcomes_release_seed_slot_without_joining_population() {
        let (space, levels, history) = env();
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = ARea::new(6);
        let j = m.next_job(&mut ctx!(space, levels, history, rng)).unwrap();
        assert_eq!(m.outstanding_seeds, 1);
        let mut o = outcome(j, f64::INFINITY);
        o.status = crate::method::OutcomeStatus::Failed;
        m.on_result(&o, &mut ctx!(space, levels, history, rng));
        assert_eq!(m.outstanding_seeds, 0, "slot released");
        assert!(m.population.is_empty(), "quarantined config not admitted");
    }

    #[test]
    fn area_does_not_overseed_with_parallel_workers() {
        let (space, levels, history) = env();
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = ARea::new(5);
        // Dispatch 25 jobs without any completions: only the first 20 are
        // seeds; the rest must come from tournaments — but with an empty
        // population that's impossible, so they fall back… verify no panic
        // and seed counting instead.
        for _ in 0..20 {
            m.next_job(&mut ctx!(space, levels, history, rng)).unwrap();
        }
        assert_eq!(m.outstanding_seeds, 20);
    }
}
