//! Resource-level geometry shared by all Hyperband-family methods.
//!
//! Following §4 ("Basic Setting"), measurements are grouped into `K`
//! levels, where level `i` (0-based here, 1-based in the paper) uses
//! `r_i = η^i` units of training resources, `K = ⌊log_η R⌋ + 1`, and
//! level `K−1` is the complete evaluation with `R` units.

/// The geometric ladder of resource levels.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceLevels {
    eta: usize,
    resources: Vec<f64>,
}

impl ResourceLevels {
    /// Builds the ladder for maximum resource `r_max` and discard
    /// proportion `eta` (the paper uses `η = 3` throughout).
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2` or `r_max < 1`.
    pub fn new(r_max: f64, eta: usize) -> Self {
        assert!(eta >= 2, "eta must be >= 2");
        assert!(r_max >= 1.0, "max resource must be >= 1");
        let k = (r_max.ln() / (eta as f64).ln()).floor() as u32 + 1;
        let resources = (0..k).map(|i| (eta as f64).powi(i as i32)).collect();
        Self { eta, resources }
    }

    /// The discard proportion η.
    pub fn eta(&self) -> usize {
        self.eta
    }

    /// Number of levels `K`.
    pub fn k(&self) -> usize {
        self.resources.len()
    }

    /// Index of the complete-evaluation level (`K − 1`).
    pub fn max_level(&self) -> usize {
        self.resources.len() - 1
    }

    /// Training resources `r_i = η^i` of level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= K`.
    pub fn resource(&self, level: usize) -> f64 {
        self.resources[level]
    }

    /// All resources, lowest level first.
    pub fn resources(&self) -> &[f64] {
        &self.resources
    }

    /// The paper's Table 1 bracket geometry: bracket with base level `b`
    /// starts `n₁` configurations at `r₁ = η^b` and halves
    /// `⌈K/(K−b) · η^{K−1−b}⌉ → … → 1` across its rungs.
    ///
    /// Returns the `(n_i, r_i)` schedule of that bracket.
    pub fn bracket_schedule(&self, base_level: usize) -> Vec<(usize, f64)> {
        assert!(base_level < self.k());
        let k = self.k();
        let s = k - 1 - base_level; // number of halvings in this bracket
        let n1 = ((k as f64) / (s as f64 + 1.0) * (self.eta as f64).powi(s as i32)).ceil() as usize;
        (0..=s)
            .map(|j| {
                let n = (n1 as f64 / (self.eta as f64).powi(j as i32)).floor() as usize;
                (n.max(1), self.resource(base_level + j))
            })
            .collect()
    }

    /// Number of brackets (= number of levels, one per base `r₁`).
    pub fn n_brackets(&self) -> usize {
        self.k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_r27_eta3() {
        let l = ResourceLevels::new(27.0, 3);
        assert_eq!(l.k(), 4);
        assert_eq!(l.resources(), &[1.0, 3.0, 9.0, 27.0]);
        assert_eq!(l.max_level(), 3);
        assert_eq!(l.eta(), 3);
    }

    #[test]
    fn table1_bracket_schedules() {
        // Table 1 of the paper: R = 27, η = 3.
        let l = ResourceLevels::new(27.0, 3);
        assert_eq!(
            l.bracket_schedule(0),
            vec![(27, 1.0), (9, 3.0), (3, 9.0), (1, 27.0)]
        );
        assert_eq!(l.bracket_schedule(1), vec![(12, 3.0), (4, 9.0), (1, 27.0)]);
        assert_eq!(l.bracket_schedule(2), vec![(6, 9.0), (2, 27.0)]);
        assert_eq!(l.bracket_schedule(3), vec![(4, 27.0)]);
    }

    #[test]
    fn non_power_max_resource_truncates() {
        let l = ResourceLevels::new(200.0, 3);
        // ⌊log₃ 200⌋ + 1 = 5 levels: 1, 3, 9, 27, 81.
        assert_eq!(l.k(), 5);
        assert_eq!(l.resource(4), 81.0);
    }

    #[test]
    fn eta2_ladder() {
        let l = ResourceLevels::new(16.0, 2);
        assert_eq!(l.resources(), &[1.0, 2.0, 4.0, 8.0, 16.0]);
        // Bracket 0: n1 = ceil(5/5 * 16) = 16.
        let sched = l.bracket_schedule(0);
        assert_eq!(sched[0], (16, 1.0));
        assert_eq!(sched.last().unwrap(), &(1, 16.0));
    }

    #[test]
    fn single_level_degenerate() {
        let l = ResourceLevels::new(1.0, 3);
        assert_eq!(l.k(), 1);
        assert_eq!(l.bracket_schedule(0), vec![(1, 1.0)]);
    }

    #[test]
    fn last_bracket_full_fidelity_only() {
        let l = ResourceLevels::new(27.0, 3);
        let sched = l.bracket_schedule(3);
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].1, 27.0);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn eta_one_rejected() {
        ResourceLevels::new(27.0, 1);
    }
}
