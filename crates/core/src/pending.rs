//! The runners' in-flight job set.
//!
//! Both runners used to resolve completions by scanning `pending` for a
//! `JobSpec` equal to the finished job — `O(n)` per completion, on the
//! dispatch hot path. [`PendingSet`] replaces the scan with a hash index
//! from job content to slots, making removal `O(1)` expected.
//!
//! Two things are preserved exactly, because methods observe the pending
//! set (as `MethodContext::pending`) and the samplers' order-sensitive
//! `pending_fingerprint` keys model caches on it:
//!
//! - the insertion-ordered `Vec` with `swap_remove` holes, and
//! - the scan's removal choice: when several in-flight jobs are equal
//!   (small discrete spaces dispatch bit-identical configurations
//!   routinely), the *lowest-slot* equal job is removed — what
//!   `position(|p| *p == spec)` returned. Equal twins differ only in
//!   their dispatch [`JobSpec::id`], which nothing models, so the choice
//!   is observationally arbitrary; pinning it keeps runs bit-identical
//!   to the historical scan.

use std::collections::HashMap;

use hypertune_space::ParamValue;

use crate::method::JobSpec;

/// FNV-1a content hash of everything the old equality scan compared —
/// every field but the dispatch id. `-0.0` is normalized to `0.0` so the
/// hash never separates values the scan's `==` considered equal.
pub(crate) fn content_key(spec: &JobSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(spec.level as u64);
    mix((spec.resource + 0.0).to_bits());
    mix(spec.bracket.map_or(u64::MAX, |b| b as u64));
    for v in spec.config.values() {
        match v {
            ParamValue::Float(f) => mix((f + 0.0).to_bits()),
            ParamValue::Int(i) => mix(*i as u64),
            ParamValue::Cat(c) => mix(*c as u64 ^ 0x8000_0000_0000_0000),
        }
    }
    h
}

/// The old scan's equality: every field but the dispatch id.
pub(crate) fn same_job(a: &JobSpec, b: &JobSpec) -> bool {
    a.level == b.level && a.resource == b.resource && a.bracket == b.bracket && a.config == b.config
}

/// In-flight jobs, ordered like the old `Vec<JobSpec>` but with `O(1)`
/// expected removal. See the module docs.
#[derive(Debug, Clone, Default)]
pub(crate) struct PendingSet {
    jobs: Vec<JobSpec>,
    /// Content hash → slots in `jobs` holding that content.
    index: HashMap<u64, Vec<usize>>,
}

impl PendingSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pending jobs, in insertion order modulo `swap_remove` holes —
    /// the view methods receive as `MethodContext::pending`.
    pub fn as_slice(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Adds a dispatched job.
    pub fn insert(&mut self, spec: JobSpec) {
        self.index
            .entry(content_key(&spec))
            .or_default()
            .push(self.jobs.len());
        self.jobs.push(spec);
    }

    /// Removes and returns the lowest-slot pending job equal to `spec`
    /// (`swap_remove`, so one other element may move into its slot).
    ///
    /// # Panics
    ///
    /// Panics if no such job is pending.
    pub fn remove(&mut self, spec: &JobSpec) -> JobSpec {
        let key = content_key(spec);
        let slots = self.index.get_mut(&key).expect("completed job was pending");
        let (pos, &slot) = slots
            .iter()
            .enumerate()
            .filter(|&(_, &s)| same_job(&self.jobs[s], spec))
            .min_by_key(|&(_, &s)| s)
            .expect("completed job was pending");
        slots.swap_remove(pos);
        if slots.is_empty() {
            self.index.remove(&key);
        }
        let removed = self.jobs.swap_remove(slot);
        if slot < self.jobs.len() {
            // The previous last element moved into `slot`; repoint it.
            let last = self.jobs.len();
            let moved = self
                .index
                .get_mut(&content_key(&self.jobs[slot]))
                .expect("index covers every pending job");
            let p = moved
                .iter()
                .position(|&s| s == last)
                .expect("moved job was indexed at the last slot");
            moved[p] = slot;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::Config;

    fn job(id: u64, x: f64) -> JobSpec {
        JobSpec {
            config: Config::new(vec![ParamValue::Float(x)]),
            level: 0,
            resource: 1.0,
            bracket: None,
            id,
        }
    }

    #[test]
    fn insert_preserves_order() {
        let mut p = PendingSet::new();
        p.insert(job(1, 0.1));
        p.insert(job(2, 0.2));
        p.insert(job(3, 0.3));
        let ids: Vec<u64> = p.as_slice().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(p.as_slice().len(), 3);
    }

    #[test]
    fn remove_matches_swap_remove_semantics() {
        let mut p = PendingSet::new();
        for i in 1..=4 {
            p.insert(job(i, i as f64));
        }
        let removed = p.remove(&job(2, 2.0));
        assert_eq!(removed.id, 2);
        // Last element moved into the vacated slot, like Vec::swap_remove.
        let ids: Vec<u64> = p.as_slice().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 4, 3]);
        // The moved element stays addressable.
        assert_eq!(p.remove(&job(4, 4.0)).id, 4);
        assert_eq!(p.remove(&job(1, 1.0)).id, 1);
        assert_eq!(p.remove(&job(3, 3.0)).id, 3);
        assert!(p.as_slice().is_empty());
    }

    #[test]
    fn equal_twins_remove_lowest_slot_first() {
        // Two dispatches of a bit-identical config: removal takes the
        // lowest slot regardless of which instance's id completed — the
        // old scan's behavior, which seeded runs depend on.
        let mut p = PendingSet::new();
        p.insert(job(1, 0.5));
        p.insert(job(7, 0.9));
        p.insert(job(2, 0.5));
        let removed = p.remove(&job(2, 0.5));
        assert_eq!(removed.id, 1);
        let ids: Vec<u64> = p.as_slice().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![2, 7]);
        assert_eq!(p.remove(&job(1, 0.5)).id, 2);
    }

    #[test]
    fn dispatch_id_does_not_affect_matching() {
        let mut p = PendingSet::new();
        p.insert(job(5, 0.25));
        assert_eq!(p.remove(&job(99, 0.25)).id, 5);
        assert!(p.as_slice().is_empty());
    }

    #[test]
    #[should_panic(expected = "completed job was pending")]
    fn removing_unknown_job_panics() {
        let mut p = PendingSet::new();
        p.insert(job(1, 0.0));
        p.remove(&job(1, 0.75));
    }
}
