//! Checkpointing: save and restore tuning state across process restarts.
//!
//! Long tuning runs (the paper's span days) must survive crashes and
//! redeployments. Two snapshot granularities live here:
//!
//! - [`Checkpoint`] — the measurement history alone. Every derived
//!   component — base surrogates, `θ`, the bracket weights, the
//!   incumbent — is a pure function of it, so a restarted run refits them
//!   from the restored history and continues with *fresh* scheduler
//!   state. Cheap and robust, but the continuation is not bit-identical
//!   to the uninterrupted run.
//! - [`RunSnapshot`] — a write-ahead submission log: one
//!   [`SubmissionRecord`] per dispatched job (in dispatch order, with the
//!   evaluation's result), plus the completed measurements. Because every
//!   run is a deterministic function of its seed, [`crate::runner::resume`]
//!   *replays* the run from virtual time zero using the recorded results
//!   instead of re-evaluating, verifies the replayed measurements match
//!   the snapshot exactly, and then continues live — producing a final
//!   [`History`] bit-identical to the uninterrupted run's.
//!
//! Both serialize as JSON. The serializer emits `f64`s in
//! shortest-roundtrip form, so save → load preserves every value exactly
//! — which is what makes the snapshot equality check sound.

use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::history::{History, Measurement};
use crate::levels::ResourceLevels;
use crate::method::JobSpec;
use crate::runner::{CurvePoint, RunResult};

/// Serializable snapshot of a tuning run's durable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The level ladder the measurements are grouped under.
    pub levels: ResourceLevels,
    /// All measurements, in completion order.
    pub measurements: Vec<Measurement>,
}

impl Checkpoint {
    /// Snapshots a history.
    pub fn from_history(history: &History) -> Self {
        let mut measurements: Vec<Measurement> = (0..history.levels().k())
            .flat_map(|l| history.group(l).iter().cloned())
            .collect();
        measurements.sort_by(|a, b| {
            a.finished_at
                .partial_cmp(&b.finished_at)
                .expect("finite times")
        });
        Self {
            levels: history.levels().clone(),
            measurements,
        }
    }

    /// Rebuilds the history (incumbents and totals are recomputed by
    /// replaying the measurements).
    pub fn into_history(self) -> History {
        let mut h = History::new(self.levels);
        for m in self.measurements {
            h.record(m);
        }
        h
    }

    /// Writes the checkpoint as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        serde_json::to_writer(&mut w, self)?;
        w.flush()
    }

    /// Reads a checkpoint from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        Ok(serde_json::from_reader(BufReader::new(file))?)
    }
}

/// One dispatched job in a [`RunSnapshot`]'s write-ahead log: the spec
/// the method produced plus the evaluation result it received (recorded
/// at dispatch time — the simulator evaluates eagerly and only *reveals*
/// the result at virtual completion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmissionRecord {
    /// The job as issued by the method.
    pub spec: JobSpec,
    /// Validation value of the evaluation.
    pub value: f64,
    /// Held-out test value.
    pub test_value: f64,
    /// Nominal evaluation cost in virtual seconds (before stragglers,
    /// faults, or retries).
    pub cost: f64,
}

/// A mid-run snapshot that supports bit-identical resume; see the module
/// docs and [`crate::runner::resume`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSnapshot {
    /// Seed of the run this snapshot belongs to (resume refuses a
    /// mismatched seed up front — the replay could never match).
    pub seed: u64,
    /// Every dispatch so far, in dispatch order.
    pub submissions: Vec<SubmissionRecord>,
    /// Every completed measurement so far, in completion order (the
    /// prefix the replay is verified against).
    pub measurements: Vec<Measurement>,
}

impl RunSnapshot {
    /// Writes the snapshot as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        serde_json::to_writer(&mut w, self)?;
        w.flush()
    }

    /// Reads a snapshot from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        Ok(serde_json::from_reader(BufReader::new(file))?)
    }
}

/// Serializable summary of a finished run (everything in [`RunResult`]
/// except the in-memory trace), for experiment archival.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Method display name.
    pub method: String,
    /// Anytime incumbent curve.
    pub curve: Vec<CurvePoint>,
    /// Best validation value.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// Evaluations per resource level.
    pub evals_per_level: Vec<usize>,
    /// Total evaluations.
    pub total_evals: usize,
    /// Mean worker utilization.
    pub utilization: f64,
}

impl From<&RunResult> for RunRecord {
    fn from(r: &RunResult) -> Self {
        Self {
            method: r.method.clone(),
            curve: r.curve.clone(),
            best_value: r.best_value,
            best_test: r.best_test,
            evals_per_level: r.evals_per_level.clone(),
            total_evals: r.total_evals,
            utilization: r.utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::{Config, ParamValue};

    fn measurement(level: usize, value: f64, t: f64) -> Measurement {
        Measurement {
            config: Config::new(vec![ParamValue::Float(value)]),
            level,
            resource: 3f64.powi(level as i32),
            value,
            test_value: value,
            cost: 1.0,
            finished_at: t,
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_history() {
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        h.record(measurement(0, 0.5, 1.0));
        h.record(measurement(3, 0.3, 2.0));
        h.record(measurement(0, 0.2, 3.0));

        let cp = Checkpoint::from_history(&h);
        let dir = std::env::temp_dir().join("hypertune-persist-test");
        let path = dir.join("cp.json");
        cp.save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap().into_history();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(restored.len(), 3);
        assert_eq!(restored.len_at(0), 2);
        assert_eq!(restored.incumbent_full().unwrap().value, 0.3);
        assert_eq!(restored.incumbent_any().unwrap().value, 0.2);
        assert_eq!(restored.total_cost(), 3.0);
    }

    #[test]
    fn checkpoint_orders_measurements_by_time() {
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        h.record(measurement(3, 0.1, 5.0));
        h.record(measurement(0, 0.9, 1.0));
        let cp = Checkpoint::from_history(&h);
        assert!(cp.measurements[0].finished_at < cp.measurements[1].finished_at);
    }

    #[test]
    fn run_record_captures_summary() {
        use hypertune_benchmarks::{Benchmark, CountingOnes};
        let bench = CountingOnes::new(2, 2, 0);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut m = crate::methods::MethodKind::ARandom.build(&levels, 0);
        let r = crate::runner::run(
            m.as_mut(),
            &bench,
            &crate::runner::RunConfig::new(2, 300.0, 0),
        );
        let rec = RunRecord::from(&r);
        assert_eq!(rec.total_evals, r.total_evals);
        let json = serde_json::to_string(&rec).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.best_value, r.best_value);
    }

    #[test]
    fn resumed_run_continues_from_checkpoint() {
        // Simulate resume: record into restored history and confirm the
        // incumbent bookkeeping keeps working.
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        h.record(measurement(3, 0.4, 1.0));
        let mut restored = Checkpoint::from_history(&h).into_history();
        restored.record(measurement(3, 0.2, 10.0));
        assert_eq!(restored.incumbent_full().unwrap().value, 0.2);
    }
}
