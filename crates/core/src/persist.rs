//! Checkpointing: save and restore tuning state across process restarts.
//!
//! Long tuning runs (the paper's span days) must survive crashes and
//! redeployments. Two snapshot granularities live here:
//!
//! - [`Checkpoint`] — the measurement history alone. Every derived
//!   component — base surrogates, `θ`, the bracket weights, the
//!   incumbent — is a pure function of it, so a restarted run refits them
//!   from the restored history and continues with *fresh* scheduler
//!   state. Cheap and robust, but the continuation is not bit-identical
//!   to the uninterrupted run.
//! - [`RunSnapshot`] — a write-ahead submission log: one
//!   [`SubmissionRecord`] per dispatched job (in dispatch order, with the
//!   evaluation's result), plus the completed measurements. Because every
//!   run is a deterministic function of its seed, [`crate::runner::resume`]
//!   *replays* the run from virtual time zero using the recorded results
//!   instead of re-evaluating, verifies the replayed measurements match
//!   the snapshot exactly, and then continues live — producing a final
//!   [`History`] bit-identical to the uninterrupted run's.
//!
//! Both serialize as JSON. The serializer emits `f64`s in
//! shortest-roundtrip form, so save → load preserves every value exactly
//! — which is what makes the snapshot equality check sound.
//!
//! # WAL durability
//!
//! [`RunSnapshot`] is stored as a **line-oriented write-ahead log**
//! rather than a single JSON blob: a header line carrying the seed,
//! then one record line per submission and per measurement. Every line
//! is prefixed with an FNV-1a checksum of its payload, so [`RunSnapshot::load`]
//! can distinguish the two real-world corruption modes:
//!
//! - a **truncated final line** (the process died mid-`write`) is
//!   expected — the loader drops it and recovers to the last good
//!   record, exactly the contract a WAL promises;
//! - a **damaged interior line** (bit rot, manual editing) is not —
//!   the loader refuses the file instead of silently replaying a hole.
//!
//! Snapshots written by older builds as a single JSON object are still
//! readable: the loader sniffs the first byte and falls back to the
//! legacy blob parser.

use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::history::{History, Measurement};
use crate::levels::ResourceLevels;
use crate::method::JobSpec;
use crate::runner::{CurvePoint, RunResult};

/// Serializable snapshot of a tuning run's durable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The level ladder the measurements are grouped under.
    pub levels: ResourceLevels,
    /// All measurements, in completion order.
    pub measurements: Vec<Measurement>,
}

impl Checkpoint {
    /// Snapshots a history.
    pub fn from_history(history: &History) -> Self {
        let mut measurements: Vec<Measurement> = (0..history.levels().k())
            .flat_map(|l| history.group(l).iter().cloned())
            .collect();
        measurements.sort_by(|a, b| {
            a.finished_at
                .partial_cmp(&b.finished_at)
                .expect("finite times")
        });
        Self {
            levels: history.levels().clone(),
            measurements,
        }
    }

    /// Rebuilds the history (incumbents and totals are recomputed by
    /// replaying the measurements).
    pub fn into_history(self) -> History {
        let mut h = History::new(self.levels);
        for m in self.measurements {
            h.record(m);
        }
        h
    }

    /// Writes the checkpoint as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        serde_json::to_writer(&mut w, self)?;
        w.flush()
    }

    /// Reads a checkpoint from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        Ok(serde_json::from_reader(BufReader::new(file))?)
    }
}

/// One dispatched job in a [`RunSnapshot`]'s write-ahead log: the spec
/// the method produced plus the evaluation result it received (recorded
/// at dispatch time — the simulator evaluates eagerly and only *reveals*
/// the result at virtual completion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmissionRecord {
    /// The job as issued by the method.
    pub spec: JobSpec,
    /// Validation value of the evaluation.
    pub value: f64,
    /// Held-out test value.
    pub test_value: f64,
    /// Nominal evaluation cost in virtual seconds (before stragglers,
    /// faults, or retries).
    pub cost: f64,
}

/// A mid-run snapshot that supports bit-identical resume; see the module
/// docs and [`crate::runner::resume`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSnapshot {
    /// Seed of the run this snapshot belongs to (resume refuses a
    /// mismatched seed up front — the replay could never match).
    pub seed: u64,
    /// Every dispatch so far, in dispatch order.
    pub submissions: Vec<SubmissionRecord>,
    /// Every completed measurement so far, in completion order (the
    /// prefix the replay is verified against).
    pub measurements: Vec<Measurement>,
}

/// Current on-disk WAL format version (bumped on incompatible layout
/// changes; the loader rejects versions it does not know).
const WAL_VERSION: u32 = 1;

/// 64-bit FNV-1a over a byte slice — the per-line checksum. Not
/// cryptographic (the WAL guards against accidents, not adversaries):
/// it detects truncation, bit flips, and hand edits at trivial cost.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// One line of the snapshot WAL (owned, for reading; the write path
/// builds the externally-tagged [`serde::Value`] by hand via
/// [`tagged`], so no record is cloned on save).
#[derive(Deserialize)]
enum WalRecord {
    Header { version: u32, seed: u64 },
    Submission(SubmissionRecord),
    Measurement(Measurement),
}

/// Wraps a payload in the externally-tagged form the derive reads:
/// `{"<tag>": payload}`.
fn tagged(tag: &str, payload: serde::Value) -> serde::Value {
    let mut m = serde::Map::new();
    m.insert(tag.to_string(), payload);
    serde::Value::Object(m)
}

fn write_record(w: &mut impl Write, record: &serde::Value) -> std::io::Result<()> {
    let payload = serde_json::to_string(record)?;
    writeln!(w, "{:016x}\t{payload}", fnv1a(payload.as_bytes()))
}

/// Parses one WAL line: verifies the checksum prefix, then decodes the
/// JSON payload. Any failure is reported as `Err` — the caller decides
/// whether the position in the file makes it recoverable.
fn parse_line(line: &str) -> Result<WalRecord, String> {
    let (sum, payload) = line
        .split_once('\t')
        .ok_or_else(|| "missing checksum separator".to_string())?;
    let expected =
        u64::from_str_radix(sum, 16).map_err(|_| format!("malformed checksum {sum:?}"))?;
    let actual = fnv1a(payload.as_bytes());
    if actual != expected {
        return Err(format!(
            "checksum mismatch (recorded {expected:016x}, computed {actual:016x})"
        ));
    }
    serde_json::from_str(payload).map_err(|e| format!("undecodable payload: {e}"))
}

impl RunSnapshot {
    /// Writes the snapshot as a checksummed line-oriented WAL: a header
    /// line (format version + seed), one line per submission in
    /// dispatch order, then one line per measurement in completion
    /// order. See the module docs for the corruption-recovery contract.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        let mut header = serde::Map::new();
        header.insert("version".to_string(), Serialize::to_value(&WAL_VERSION));
        header.insert("seed".to_string(), Serialize::to_value(&self.seed));
        write_record(&mut w, &tagged("Header", serde::Value::Object(header)))?;
        for s in &self.submissions {
            write_record(&mut w, &tagged("Submission", Serialize::to_value(s)))?;
        }
        for m in &self.measurements {
            write_record(&mut w, &tagged("Measurement", Serialize::to_value(m)))?;
        }
        w.flush()
    }

    /// Reads a snapshot, recovering from a torn tail.
    ///
    /// - A damaged or incomplete **final** line is dropped: the process
    ///   that wrote the WAL died mid-write, and everything before the
    ///   tear is intact by construction.
    /// - A damaged line **before** the end is an error: the file was
    ///   corrupted after the fact, and replaying around a hole would
    ///   silently produce a different run.
    /// - Files written by older builds as one JSON blob (first byte
    ///   `{`) load through the legacy parser unchanged.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        if text.trim_start().starts_with('{') {
            // Legacy single-blob snapshot (pre-WAL builds).
            return Ok(serde_json::from_str(&text)?);
        }
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        let mut records = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match parse_line(line) {
                Ok(r) => records.push(r),
                // Torn tail: drop the final line, keep the good prefix.
                Err(_) if i + 1 == lines.len() => break,
                Err(e) => {
                    return Err(corrupt(format!(
                        "snapshot WAL corrupt at line {}: {e}",
                        i + 1
                    )))
                }
            }
        }
        let mut records = records.into_iter();
        let seed = match records.next() {
            Some(WalRecord::Header { version, seed }) if version == WAL_VERSION => seed,
            Some(WalRecord::Header { version, .. }) => {
                return Err(corrupt(format!(
                    "snapshot WAL version {version} not supported (expected {WAL_VERSION})"
                )))
            }
            _ => return Err(corrupt("snapshot WAL has no valid header line".into())),
        };
        let mut snapshot = Self {
            seed,
            submissions: Vec::new(),
            measurements: Vec::new(),
        };
        for record in records {
            match record {
                WalRecord::Header { .. } => {
                    return Err(corrupt("snapshot WAL has a duplicate header".into()))
                }
                WalRecord::Submission(s) => snapshot.submissions.push(s),
                WalRecord::Measurement(m) => snapshot.measurements.push(m),
            }
        }
        Ok(snapshot)
    }
}

/// An incremental writer over the [`RunSnapshot`] WAL format, for
/// drivers that learn results one at a time instead of saving a whole
/// snapshot at once — the multi-tenant service keeps one per study.
///
/// Records append in arrival order. By default each append flushes to
/// the OS, so a killed driver loses at most the line it was writing —
/// which [`RunSnapshot::load`] recovers from as a torn tail. With
/// [`set_auto_flush`](WalWriter::set_auto_flush)`(false)` appends only
/// buffer, and the caller group-commits by calling
/// [`flush`](WalWriter::flush) at its own cadence (the service does
/// this once per scheduler round); a crash then loses at most the
/// records since the last flush — every one of them a whole line, so
/// recovery semantics are unchanged, only the durability window widens.
/// Dropping the writer flushes whatever is buffered (via `BufWriter`),
/// so a clean exit never loses records.
pub struct WalWriter {
    w: BufWriter<std::fs::File>,
    auto_flush: bool,
    sync_on_flush: bool,
    /// Records appended since the last flush.
    dirty: usize,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("auto_flush", &self.auto_flush)
            .field("dirty", &self.dirty)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Creates (truncating) the WAL at `path` and writes the header
    /// line for `seed`.
    pub fn create(path: &Path, seed: u64) -> std::io::Result<Self> {
        Self::create_from(
            path,
            &RunSnapshot {
                seed,
                submissions: Vec::new(),
                measurements: Vec::new(),
            },
        )
    }

    /// Creates the WAL at `path` pre-populated with `snapshot`'s
    /// records — compaction for a recovered study: rewrite what was
    /// loaded, then keep appending.
    pub fn create_from(path: &Path, snapshot: &RunSnapshot) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        let mut header = serde::Map::new();
        header.insert("version".to_string(), Serialize::to_value(&WAL_VERSION));
        header.insert("seed".to_string(), Serialize::to_value(&snapshot.seed));
        write_record(&mut w, &tagged("Header", serde::Value::Object(header)))?;
        for s in &snapshot.submissions {
            write_record(&mut w, &tagged("Submission", Serialize::to_value(s)))?;
        }
        for m in &snapshot.measurements {
            write_record(&mut w, &tagged("Measurement", Serialize::to_value(m)))?;
        }
        w.flush()?;
        Ok(Self {
            w,
            auto_flush: true,
            sync_on_flush: false,
            dirty: 0,
        })
    }

    /// Chooses between flush-per-append (`true`, the default) and
    /// caller-paced group commit (`false`). Turning auto-flush back on
    /// does not flush by itself; call [`flush`](WalWriter::flush).
    pub fn set_auto_flush(&mut self, auto_flush: bool) {
        self.auto_flush = auto_flush;
    }

    /// When `true`, every [`flush`](WalWriter::flush) also fsyncs
    /// (`sync_data`) so flushed records survive an OS crash, not just a
    /// process kill. Off by default: per-record fsync is exactly the
    /// cost group commit exists to amortize.
    pub fn set_sync_on_flush(&mut self, sync_on_flush: bool) {
        self.sync_on_flush = sync_on_flush;
    }

    /// Records appended since the last flush (0 under auto-flush).
    pub fn dirty(&self) -> usize {
        self.dirty
    }

    /// Flushes buffered records to the OS (and to storage under
    /// [`set_sync_on_flush`](WalWriter::set_sync_on_flush)); a no-op
    /// when nothing is dirty, so callers may group-commit
    /// unconditionally each round.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.dirty == 0 {
            return Ok(());
        }
        self.w.flush()?;
        if self.sync_on_flush {
            self.w.get_ref().sync_data()?;
        }
        self.dirty = 0;
        Ok(())
    }

    /// Appends one submission line (flushing under auto-flush).
    pub fn append_submission(&mut self, s: &SubmissionRecord) -> std::io::Result<()> {
        write_record(&mut self.w, &tagged("Submission", Serialize::to_value(s)))?;
        self.dirty += 1;
        if self.auto_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// Appends one measurement line (flushing under auto-flush).
    pub fn append_measurement(&mut self, m: &Measurement) -> std::io::Result<()> {
        write_record(&mut self.w, &tagged("Measurement", Serialize::to_value(m)))?;
        self.dirty += 1;
        if self.auto_flush {
            self.flush()?;
        }
        Ok(())
    }
}

/// Serializable summary of a finished run (everything in [`RunResult`]
/// except the in-memory trace), for experiment archival.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Method display name.
    pub method: String,
    /// Anytime incumbent curve.
    pub curve: Vec<CurvePoint>,
    /// Best validation value.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// Evaluations per resource level.
    pub evals_per_level: Vec<usize>,
    /// Total evaluations.
    pub total_evals: usize,
    /// Mean worker utilization.
    pub utilization: f64,
}

impl From<&RunResult> for RunRecord {
    fn from(r: &RunResult) -> Self {
        Self {
            method: r.method.clone(),
            curve: r.curve.clone(),
            best_value: r.best_value,
            best_test: r.best_test,
            evals_per_level: r.evals_per_level.clone(),
            total_evals: r.total_evals,
            utilization: r.utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::{Config, ParamValue};

    fn measurement(level: usize, value: f64, t: f64) -> Measurement {
        Measurement {
            config: Config::new(vec![ParamValue::Float(value)]),
            level,
            resource: 3f64.powi(level as i32),
            value,
            test_value: value,
            cost: 1.0,
            finished_at: t,
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_history() {
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        h.record(measurement(0, 0.5, 1.0));
        h.record(measurement(3, 0.3, 2.0));
        h.record(measurement(0, 0.2, 3.0));

        let cp = Checkpoint::from_history(&h);
        let dir = std::env::temp_dir().join("hypertune-persist-test");
        let path = dir.join("cp.json");
        cp.save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap().into_history();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(restored.len(), 3);
        assert_eq!(restored.len_at(0), 2);
        assert_eq!(restored.incumbent_full().unwrap().value, 0.3);
        assert_eq!(restored.incumbent_any().unwrap().value, 0.2);
        assert_eq!(restored.total_cost(), 3.0);
    }

    #[test]
    fn checkpoint_orders_measurements_by_time() {
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        h.record(measurement(3, 0.1, 5.0));
        h.record(measurement(0, 0.9, 1.0));
        let cp = Checkpoint::from_history(&h);
        assert!(cp.measurements[0].finished_at < cp.measurements[1].finished_at);
    }

    #[test]
    fn run_record_captures_summary() {
        use hypertune_benchmarks::{Benchmark, CountingOnes};
        let bench = CountingOnes::new(2, 2, 0);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut m = crate::methods::MethodKind::ARandom.build(&levels, 0);
        let r = crate::runner::run(
            m.as_mut(),
            &bench,
            &crate::runner::RunConfig::new(2, 300.0, 0),
        );
        let rec = RunRecord::from(&r);
        assert_eq!(rec.total_evals, r.total_evals);
        let json = serde_json::to_string(&rec).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.best_value, r.best_value);
    }

    fn snapshot_fixture(n: usize) -> RunSnapshot {
        let submissions = (0..n)
            .map(|i| SubmissionRecord {
                spec: JobSpec {
                    config: Config::new(vec![ParamValue::Float(i as f64 / n as f64)]),
                    level: i % 3,
                    resource: 3f64.powi((i % 3) as i32),
                    bracket: None,
                    id: i as u64,
                },
                value: 0.5 - 0.01 * i as f64,
                test_value: 0.5 - 0.01 * i as f64,
                cost: 1.0 + i as f64,
            })
            .collect();
        let measurements = (0..n).map(|i| measurement(i % 3, 0.4, i as f64)).collect();
        RunSnapshot {
            seed: 42,
            submissions,
            measurements,
        }
    }

    fn temp_wal(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join(format!("hypertune-wal-test-{name}-{}", std::process::id()))
            .join("run.wal")
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn wal_roundtrip_preserves_snapshot_exactly() {
        let snap = snapshot_fixture(6);
        let path = temp_wal("roundtrip");
        snap.save(&path).unwrap();
        let back = RunSnapshot::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(back.seed, snap.seed);
        assert_eq!(back.submissions, snap.submissions);
        assert_eq!(back.measurements.len(), snap.measurements.len());
        for (a, b) in back.measurements.iter().zip(&snap.measurements) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.finished_at.to_bits(), b.finished_at.to_bits());
        }
    }

    #[test]
    fn wal_recovers_from_truncated_final_line() {
        let snap = snapshot_fixture(5);
        let path = temp_wal("truncate");
        snap.save(&path).unwrap();
        // Tear the file mid-way through the last record, as a crash
        // during `write` would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.trim_end().len() - 7];
        std::fs::write(&path, torn).unwrap();
        let back = RunSnapshot::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(back.seed, 42);
        assert_eq!(back.submissions.len(), 5, "submissions precede the tear");
        assert_eq!(back.measurements.len(), 4, "torn measurement dropped");
    }

    #[test]
    fn wal_rejects_midfile_tampering() {
        let snap = snapshot_fixture(5);
        let path = temp_wal("tamper");
        snap.save(&path).unwrap();
        // Flip one byte inside an interior record's payload.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut bad = lines.clone();
        let victim = lines[2].replace("Submission", "Submersion");
        assert_ne!(victim, lines[2], "tamper must change the payload");
        bad[2] = &victim;
        std::fs::write(&path, bad.join("\n")).unwrap();
        let err = RunSnapshot::load(&path).unwrap_err();
        cleanup(&path);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("line 3"),
            "error names the damaged line: {err}"
        );
    }

    #[test]
    fn wal_rejects_truncation_that_reaches_interior_records() {
        let snap = snapshot_fixture(4);
        let path = temp_wal("deep-truncate");
        snap.save(&path).unwrap();
        // Cut the file down to half of line 2: line 2 is now damaged
        // AND final, so the loader recovers to just the header's seed
        // with the prefix of records before it.
        let text = std::fs::read_to_string(&path).unwrap();
        let second_line_mid = text.lines().take(1).map(|l| l.len() + 1).sum::<usize>() + 10;
        std::fs::write(&path, &text[..second_line_mid]).unwrap();
        let back = RunSnapshot::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(back.seed, 42);
        assert!(back.submissions.is_empty());
        assert!(back.measurements.is_empty());
    }

    #[test]
    fn wal_refuses_file_without_header() {
        let path = temp_wal("headerless");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap();
        }
        std::fs::write(&path, "not a wal at all\n").unwrap();
        let err = RunSnapshot::load(&path).unwrap_err();
        cleanup(&path);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn legacy_json_blob_snapshot_still_loads() {
        let snap = snapshot_fixture(3);
        let path = temp_wal("legacy");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap();
        }
        // Pre-WAL builds wrote the snapshot as one JSON object.
        std::fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        let back = RunSnapshot::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(back.seed, snap.seed);
        assert_eq!(back.submissions, snap.submissions);
        assert_eq!(back.measurements.len(), 3);
    }

    #[test]
    fn wal_writer_appends_load_as_a_snapshot() {
        let fixture = snapshot_fixture(4);
        let path = temp_wal("writer");
        {
            let mut w = WalWriter::create(&path, fixture.seed).unwrap();
            // Interleave, the way a live service learns results.
            for (s, m) in fixture.submissions.iter().zip(&fixture.measurements) {
                w.append_submission(s).unwrap();
                w.append_measurement(m).unwrap();
            }
        }
        let back = RunSnapshot::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(back.seed, fixture.seed);
        assert_eq!(back.submissions, fixture.submissions);
        assert_eq!(back.measurements.len(), fixture.measurements.len());
    }

    #[test]
    fn wal_writer_create_from_compacts_then_extends() {
        let fixture = snapshot_fixture(3);
        let path = temp_wal("compact");
        fixture.save(&path).unwrap();
        let recovered = RunSnapshot::load(&path).unwrap();
        {
            let mut w = WalWriter::create_from(&path, &recovered).unwrap();
            w.append_measurement(&measurement(1, 0.33, 99.0)).unwrap();
        }
        let back = RunSnapshot::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(back.submissions, fixture.submissions);
        assert_eq!(back.measurements.len(), 4);
        assert_eq!(back.measurements[3].finished_at, 99.0);
    }

    #[test]
    fn wal_writer_group_commit_buffers_until_flush() {
        let fixture = snapshot_fixture(4);
        let path = temp_wal("group-commit");
        let mut w = WalWriter::create(&path, fixture.seed).unwrap();
        w.set_auto_flush(false);
        for (s, m) in fixture.submissions.iter().zip(&fixture.measurements) {
            w.append_submission(s).unwrap();
            w.append_measurement(m).unwrap();
        }
        assert_eq!(w.dirty(), 8, "appends buffer instead of flushing");
        // The records are whole lines in the writer's buffer, not yet
        // in the file: a reader sees only the header (BufWriter's
        // default buffer comfortably holds 8 small records).
        let before = RunSnapshot::load(&path).unwrap();
        assert!(
            before.measurements.len() < fixture.measurements.len(),
            "buffered records must not be visible before the flush"
        );
        w.flush().unwrap();
        assert_eq!(w.dirty(), 0);
        w.flush().unwrap(); // idempotent no-op when clean
        let after = RunSnapshot::load(&path).unwrap();
        assert_eq!(after.submissions, fixture.submissions);
        assert_eq!(after.measurements.len(), fixture.measurements.len());
        drop(w);
        cleanup(&path);
    }

    #[test]
    fn wal_writer_drop_flushes_buffered_records() {
        let fixture = snapshot_fixture(3);
        let path = temp_wal("drop-flush");
        {
            let mut w = WalWriter::create(&path, fixture.seed).unwrap();
            w.set_auto_flush(false);
            for m in &fixture.measurements {
                w.append_measurement(m).unwrap();
            }
            // Clean exit without an explicit flush.
        }
        let back = RunSnapshot::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(
            back.measurements.len(),
            fixture.measurements.len(),
            "a clean drop must lose nothing"
        );
    }

    #[test]
    fn resumed_run_continues_from_checkpoint() {
        // Simulate resume: record into restored history and confirm the
        // incumbent bookkeeping keeps working.
        let levels = ResourceLevels::new(27.0, 3);
        let mut h = History::new(levels);
        h.record(measurement(3, 0.4, 1.0));
        let mut restored = Checkpoint::from_history(&h).into_history();
        restored.record(measurement(3, 0.2, 10.0));
        assert_eq!(restored.incumbent_full().unwrap().value, 0.2);
    }
}
