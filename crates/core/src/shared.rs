//! Single-writer / multi-reader run state for the threaded runner.
//!
//! At w128+ the dispatch bottleneck is no longer the model fit — it is
//! the suggestion thread and the completion path contending for the run
//! state. Before this module the suggestion thread owned a full mirror of
//! the history and pending set, rebuilt from `Measurement`s cloned
//! through the command channel; the driver kept its own copies for the
//! tally, so every completion was materialized twice and the two sides
//! could never share a read.
//!
//! The replacement is two purpose-built stores, both written **only** by
//! the driver thread (the single writer) and read concurrently by the
//! suggestion thread:
//!
//! - [`SharedHistory`] — the measurement store behind a mutex, plus an
//!   atomic version counter. Readers do not lock it during suggestion:
//!   each reader owns a [`HistoryView`], an epoch snapshot that syncs by
//!   copying only the *appended tail* (histories are append-only) under a
//!   brief lock, then serves every [`HistoryRead`] query from its own
//!   buffers for the rest of the round. A suggestion round that fits
//!   surrogates for seconds holds no lock at all while doing so, and the
//!   completion path's append waits only on an `O(delta)` tail copy, never
//!   on a fit.
//! - [`ShardedPending`] — the in-flight set with its content index split
//!   across shards (insert/remove lock one shard plus the slot vec) and a
//!   copy-on-write published snapshot (`Arc<[JobSpec]>`) that readers
//!   clone in `O(1)`. Suggestion reads the snapshot without touching the
//!   write-side locks, so it can never block a completion's
//!   insert/remove.
//!
//! Every lock acquisition on these paths is timed and recorded to
//! telemetry (`lock_wait.*` histograms and gauges), so a run can *prove*
//! the suggestion thread does not block the completion path: the
//! `lock_wait.history.append` / `lock_wait.pending.write` maxima stay at
//! microseconds even while `span.suggest_batch` stretches to seconds.
//!
//! Ordering contract: [`ShardedPending`] preserves the exact semantics of
//! the runners' plain `PendingSet` (`crate::pending`) — insertion order
//! with `swap_remove` holes, lowest-slot removal among equal twins — so
//! methods observe the same `MethodContext::pending` stream and the
//! samplers' order-sensitive `pending_fingerprint` stays stable across
//! the inline and prefetch drivers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use hypertune_telemetry::TelemetryHandle;

use crate::history::{History, HistoryRead, Measurement};
use crate::levels::ResourceLevels;
use crate::method::JobSpec;
use crate::pending::{content_key, same_job};

/// Locks `m`, recording the wait to `site` (a `lock_wait.*` histogram and
/// gauge, nanoseconds). Disabled telemetry never reads the clock.
fn timed_lock<'m, T>(
    m: &'m Mutex<T>,
    telemetry: &TelemetryHandle,
    site: &'static str,
) -> MutexGuard<'m, T> {
    if !telemetry.is_enabled() {
        return m.lock().expect("shared-state lock poisoned");
    }
    let t0 = Instant::now();
    let guard = m.lock().expect("shared-state lock poisoned");
    let ns = t0.elapsed().as_nanos() as f64;
    telemetry.histogram_record(site, ns);
    telemetry.gauge_set(site, ns);
    guard
}

/// The measurement store shared between the driver (writer) and the
/// suggestion thread (reader, via [`HistoryView`]). See the module docs.
pub struct SharedHistory {
    levels: ResourceLevels,
    inner: Mutex<History>,
    /// Total appends, bumped after each write. Readers check it without
    /// locking to skip no-op syncs.
    version: AtomicU64,
    telemetry: TelemetryHandle,
}

impl SharedHistory {
    /// An empty store over the given level ladder.
    pub fn new(levels: ResourceLevels, telemetry: TelemetryHandle) -> Self {
        Self {
            inner: Mutex::new(History::new(levels.clone())),
            levels,
            version: AtomicU64::new(0),
            telemetry,
        }
    }

    /// Appends one measurement (driver thread only).
    pub fn append(&self, m: Measurement) {
        let mut h = timed_lock(&self.inner, &self.telemetry, "lock_wait.history.append");
        h.record(m);
        // `Release` pairs with the `Acquire` in `version()`: a reader
        // that observes the new version then locks and sees the append.
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The append count; cheap enough for readers to poll per query.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The level ladder.
    pub fn levels(&self) -> &ResourceLevels {
        &self.levels
    }

    /// A fresh (empty, unsynced) read view of this store.
    pub fn view(self: &Arc<Self>) -> HistoryView {
        HistoryView {
            shared: Arc::clone(self),
            local: History::new(self.levels.clone()),
            synced_version: 0,
        }
    }

    /// Runs `f` against the live store under the lock — for end-of-run
    /// accounting on the driver thread, not for the suggestion hot path.
    pub fn with<R>(&self, f: impl FnOnce(&History) -> R) -> R {
        let h = timed_lock(&self.inner, &self.telemetry, "lock_wait.history.read");
        f(&h)
    }
}

/// An epoch snapshot of a [`SharedHistory`]: syncs the appended tail on
/// demand, then serves [`HistoryRead`] queries lock-free from its own
/// buffers. One view per reader thread; views are independent.
pub struct HistoryView {
    shared: Arc<SharedHistory>,
    local: History,
    synced_version: u64,
}

impl HistoryView {
    /// Brings the view up to date with the shared store. Returns the
    /// number of measurements copied. Histories are append-only, so only
    /// the tail of each level group is copied — `O(delta)`, under a lock
    /// held for just that copy.
    pub fn sync(&mut self) -> usize {
        if self.shared.version() == self.synced_version {
            return 0;
        }
        let shared = Arc::clone(&self.shared);
        let h = timed_lock(&shared.inner, &shared.telemetry, "lock_wait.history.sync");
        let mut copied = 0;
        for level in 0..self.shared.levels.k() {
            let have = self.local.len_at(level);
            for m in &h.group(level)[have..] {
                self.local.record(m.clone());
                copied += 1;
            }
        }
        // Read under the lock, so the tag matches what was copied even if
        // a (buggy) concurrent writer raced the sync.
        self.synced_version = shared.version.load(Ordering::Acquire);
        copied
    }

    /// The underlying shared store.
    pub fn shared(&self) -> &Arc<SharedHistory> {
        &self.shared
    }
}

impl HistoryRead for HistoryView {
    fn levels(&self) -> &ResourceLevels {
        self.local.levels()
    }

    fn group(&self, level: usize) -> &[Measurement] {
        self.local.group(level)
    }

    fn total_cost(&self) -> f64 {
        self.local.total_cost()
    }

    fn incumbent_full(&self) -> Option<&Measurement> {
        self.local.incumbent_full()
    }

    fn incumbent_any(&self) -> Option<&Measurement> {
        self.local.incumbent_any()
    }

    fn len_at(&self, level: usize) -> usize {
        self.local.len_at(level)
    }

    fn len(&self) -> usize {
        self.local.len()
    }

    // The view's local store memoizes top-k selections between syncs.
    fn top_indices(&self, level: usize, n: usize) -> Vec<usize> {
        self.local.top_indices(level, n)
    }
}

/// How many ways the pending-set content index is split. Sixteen shards
/// keep per-shard chains short at w256 while staying cache-friendly for
/// the small fleets the sim runner drives.
const PENDING_SHARDS: usize = 16;

/// One shard of the content index: content hash → slots in the jobs vec.
#[derive(Default)]
struct IndexShard {
    index: std::collections::HashMap<u64, Vec<usize>>,
}

/// The in-flight job set shared between the driver (writer) and the
/// suggestion thread (reader, via [`ShardedPending::snapshot`]). Write
/// semantics are exactly `PendingSet` (`crate::pending`)'s (see the
/// module docs ordering contract); reads go through a copy-on-write
/// published snapshot so they never touch the write-side locks.
pub struct ShardedPending {
    /// Insertion-ordered jobs with `swap_remove` holes — the canonical
    /// order methods observe.
    jobs: Mutex<Vec<JobSpec>>,
    /// Content index, sharded by `content_key % PENDING_SHARDS`.
    shards: Vec<Mutex<IndexShard>>,
    /// The published snapshot readers clone in `O(1)`. Refreshed by
    /// [`ShardedPending::publish`] after a write burst.
    published: Mutex<Arc<[JobSpec]>>,
    telemetry: TelemetryHandle,
}

impl ShardedPending {
    /// An empty set.
    pub fn new(telemetry: TelemetryHandle) -> Self {
        Self {
            jobs: Mutex::new(Vec::new()),
            shards: (0..PENDING_SHARDS).map(|_| Mutex::default()).collect(),
            published: Mutex::new(Arc::from(Vec::new())),
            telemetry,
        }
    }

    fn shard(&self, key: u64) -> MutexGuard<'_, IndexShard> {
        timed_lock(
            &self.shards[(key % PENDING_SHARDS as u64) as usize],
            &self.telemetry,
            "lock_wait.pending.write",
        )
    }

    /// Adds a dispatched job (driver thread only).
    pub fn insert(&self, spec: JobSpec) {
        let key = content_key(&spec);
        let mut jobs = timed_lock(&self.jobs, &self.telemetry, "lock_wait.pending.write");
        let slot = jobs.len();
        jobs.push(spec);
        self.shard(key).index.entry(key).or_default().push(slot);
    }

    /// Removes and returns the lowest-slot pending job equal to `spec`
    /// (`swap_remove`, so one other element may move into its slot) —
    /// driver thread only.
    ///
    /// # Panics
    ///
    /// Panics if no such job is pending.
    pub fn remove(&self, spec: &JobSpec) -> JobSpec {
        let key = content_key(spec);
        let mut jobs = timed_lock(&self.jobs, &self.telemetry, "lock_wait.pending.write");
        {
            let mut shard = self.shard(key);
            let slots = shard
                .index
                .get_mut(&key)
                .expect("completed job was pending");
            let (pos, &slot) = slots
                .iter()
                .enumerate()
                .filter(|&(_, &s)| same_job(&jobs[s], spec))
                .min_by_key(|&(_, &s)| s)
                .expect("completed job was pending");
            slots.swap_remove(pos);
            if slots.is_empty() {
                shard.index.remove(&key);
            }
            drop(shard);
            let removed = jobs.swap_remove(slot);
            if slot < jobs.len() {
                // The previous last element moved into `slot`; repoint its
                // index entry (possibly in a different shard).
                let last = jobs.len();
                let moved_key = content_key(&jobs[slot]);
                let mut moved_shard = self.shard(moved_key);
                let moved = moved_shard
                    .index
                    .get_mut(&moved_key)
                    .expect("index covers every pending job");
                let p = moved
                    .iter()
                    .position(|&s| s == last)
                    .expect("moved job was indexed at the last slot");
                moved[p] = slot;
            }
            removed
        }
    }

    /// Publishes the current jobs as the snapshot readers will see.
    /// Driver thread only, after a burst of inserts/removes; `O(pending)`.
    pub fn publish(&self) {
        let jobs = timed_lock(&self.jobs, &self.telemetry, "lock_wait.pending.write");
        let snap: Arc<[JobSpec]> = Arc::from(jobs.as_slice());
        drop(jobs);
        *timed_lock(&self.published, &self.telemetry, "lock_wait.pending.write") = snap;
    }

    /// The last published snapshot — insertion order modulo `swap_remove`
    /// holes, the view methods receive as `MethodContext::pending`.
    /// `O(1)`: clones an `Arc`, never the jobs.
    pub fn snapshot(&self) -> Arc<[JobSpec]> {
        Arc::clone(&timed_lock(
            &self.published,
            &self.telemetry,
            "lock_wait.pending.snapshot",
        ))
    }

    /// Number of jobs currently pending (write-side view, for driver
    /// asserts; readers should measure their snapshot instead).
    pub fn len(&self) -> usize {
        timed_lock(&self.jobs, &self.telemetry, "lock_wait.pending.write").len()
    }

    /// `true` when no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertune_space::{Config, ParamValue};

    fn levels() -> ResourceLevels {
        ResourceLevels::new(27.0, 3)
    }

    fn m(level: usize, value: f64) -> Measurement {
        Measurement {
            config: Config::new(vec![ParamValue::Float(value)]),
            level,
            resource: 3f64.powi(level as i32),
            value,
            test_value: value,
            cost: 1.0,
            finished_at: value,
        }
    }

    fn job(id: u64, x: f64) -> JobSpec {
        JobSpec {
            config: Config::new(vec![ParamValue::Float(x)]),
            level: 0,
            resource: 1.0,
            bracket: None,
            id,
        }
    }

    #[test]
    fn view_syncs_appended_tail() {
        let sh = Arc::new(SharedHistory::new(levels(), TelemetryHandle::disabled()));
        let mut view = sh.view();
        assert_eq!(view.sync(), 0);
        sh.append(m(0, 0.5));
        sh.append(m(1, 0.3));
        assert_eq!(view.sync(), 2);
        // No new appends: the version check skips the lock entirely.
        assert_eq!(view.sync(), 0);
        assert_eq!(view.len(), 2);
        assert_eq!(view.len_at(0), 1);
        assert_eq!(view.incumbent().unwrap().value, 0.3);
        sh.append(m(0, 0.1));
        assert_eq!(view.sync(), 1);
        assert_eq!(view.incumbent().unwrap().value, 0.1);
    }

    #[test]
    fn view_matches_plain_history_queries() {
        let sh = Arc::new(SharedHistory::new(levels(), TelemetryHandle::disabled()));
        let mut plain = History::new(levels());
        let values = [0.9, 0.2, 0.5, 0.2, 0.7];
        for (i, &v) in values.iter().enumerate() {
            let meas = m(i % 3, v);
            sh.append(meas.clone());
            plain.record(meas);
        }
        let mut view = sh.view();
        view.sync();
        for level in 0..3 {
            assert_eq!(view.group(level), plain.group(level));
            assert_eq!(view.top_indices(level, 2), plain.top_indices(level, 2));
        }
        assert_eq!(view.total_cost(), plain.total_cost());
        assert_eq!(
            view.incumbent().map(|x| x.value),
            plain.incumbent().map(|x| x.value)
        );
    }

    #[test]
    fn concurrent_views_read_while_appending() {
        let sh = Arc::new(SharedHistory::new(levels(), TelemetryHandle::disabled()));
        let n = 200;
        std::thread::scope(|s| {
            let reader = {
                let sh = Arc::clone(&sh);
                s.spawn(move || {
                    let mut view = sh.view();
                    let mut seen = 0;
                    while seen < n {
                        view.sync();
                        let now = view.len();
                        assert!(now >= seen, "history shrank");
                        seen = now;
                    }
                    seen
                })
            };
            for i in 0..n {
                sh.append(m(i % 4, i as f64 / n as f64));
            }
            assert_eq!(reader.join().unwrap(), n);
        });
    }

    #[test]
    fn sharded_pending_matches_pendingset_semantics() {
        let p = ShardedPending::new(TelemetryHandle::disabled());
        for i in 1..=4 {
            p.insert(job(i, i as f64));
        }
        let removed = p.remove(&job(2, 2.0));
        assert_eq!(removed.id, 2);
        p.publish();
        // Last element moved into the vacated slot, like Vec::swap_remove.
        let ids: Vec<u64> = p.snapshot().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 4, 3]);
        assert_eq!(p.remove(&job(4, 4.0)).id, 4);
        assert_eq!(p.remove(&job(1, 1.0)).id, 1);
        assert_eq!(p.remove(&job(3, 3.0)).id, 3);
        assert!(p.is_empty());
    }

    #[test]
    fn sharded_pending_equal_twins_remove_lowest_slot() {
        let p = ShardedPending::new(TelemetryHandle::disabled());
        p.insert(job(1, 0.5));
        p.insert(job(7, 0.9));
        p.insert(job(2, 0.5));
        assert_eq!(p.remove(&job(2, 0.5)).id, 1);
        p.publish();
        let ids: Vec<u64> = p.snapshot().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![2, 7]);
        assert_eq!(p.remove(&job(1, 0.5)).id, 2);
    }

    #[test]
    fn snapshot_is_stable_across_later_writes() {
        let p = ShardedPending::new(TelemetryHandle::disabled());
        p.insert(job(1, 0.1));
        p.publish();
        let snap = p.snapshot();
        p.insert(job(2, 0.2));
        p.remove(&job(1, 0.1));
        p.publish();
        // The old snapshot still shows the state at publish time.
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].id, 1);
        assert_eq!(p.snapshot().len(), 1);
        assert_eq!(p.snapshot()[0].id, 2);
    }

    #[test]
    fn lock_waits_are_recorded() {
        let telemetry = hypertune_telemetry::Telemetry::new().build();
        let sh = Arc::new(SharedHistory::new(levels(), telemetry.clone()));
        sh.append(m(0, 0.5));
        let mut view = sh.view();
        view.sync();
        let p = ShardedPending::new(telemetry.clone());
        p.insert(job(1, 0.5));
        p.publish();
        p.snapshot();
        let snap = telemetry.snapshot().expect("telemetry enabled");
        for site in [
            "lock_wait.history.append",
            "lock_wait.history.sync",
            "lock_wait.pending.write",
            "lock_wait.pending.snapshot",
        ] {
            let h = snap.histogram(site).unwrap_or_else(|| {
                panic!("missing lock-wait histogram {site}");
            });
            assert!(h.count > 0, "{site} never recorded");
        }
    }
}
