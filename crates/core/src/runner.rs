//! The experiment runner: drives a [`Method`] against a
//! [`Benchmark`] on a simulated cluster until the virtual time budget is
//! exhausted, recording the anytime curve the paper's figures plot.
//!
//! The loop mirrors a real distributed tuner: while workers are idle, ask
//! the method for jobs (a synchronous method declines at its barrier);
//! then advance the virtual clock to the next completion, record the
//! measurement, and notify the method. Because all randomness flows from
//! the run seed and the simulator is deterministic, every run is exactly
//! reproducible.

use hypertune_benchmarks::Benchmark;
use hypertune_cluster::{SimCluster, StragglerModel, Trace};
use hypertune_space::Config;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::history::{History, Measurement};
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome};

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of parallel workers.
    pub n_workers: usize,
    /// Virtual wall-clock budget in seconds.
    pub budget: f64,
    /// Master seed: drives the method's RNG and the benchmark noise.
    pub seed: u64,
    /// Discard proportion η of the level ladder (paper default 3).
    pub eta: usize,
    /// Optional `(probability, max_slowdown)` straggler model.
    pub straggler: Option<(f64, f64)>,
    /// Probability that a worker crashes mid-evaluation. Failed attempts
    /// waste a random fraction of the job's cost and are retried
    /// transparently (the fault-tolerance policy of production tuners);
    /// methods never observe the failure, only the longer completion.
    pub failure_prob: f64,
    /// Safety cap on the number of evaluations (0 = unlimited).
    pub max_evals: usize,
}

impl RunConfig {
    /// A config with the paper's defaults: η = 3, no stragglers.
    pub fn new(n_workers: usize, budget: f64, seed: u64) -> Self {
        Self {
            n_workers,
            budget,
            seed,
            eta: 3,
            straggler: None,
            failure_prob: 0.0,
            max_evals: 0,
        }
    }
}

/// One point of the anytime curve: the incumbent after a completion.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CurvePoint {
    /// Virtual time of the completion.
    pub time: f64,
    /// Best validation value so far (complete evaluations preferred).
    pub value: f64,
    /// Test value of that incumbent.
    pub test_value: f64,
}

/// The outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method display name.
    pub method: String,
    /// Anytime incumbent curve (one point per completed evaluation).
    pub curve: Vec<CurvePoint>,
    /// Best validation value found.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// The best configuration itself.
    pub best_config: Option<Config>,
    /// Training resources of the incumbent's evaluation (full fidelity
    /// unless no complete evaluation finished within the budget).
    pub best_resource: Option<f64>,
    /// Completed evaluations per resource level.
    pub evals_per_level: Vec<usize>,
    /// Total completed evaluations.
    pub total_evals: usize,
    /// Fraction of worker-time spent busy within the budget.
    pub utilization: f64,
    /// Worker-occupancy trace (for Gantt renderings).
    pub trace: Trace,
    /// Every completed measurement, in completion order (for post-hoc
    /// analyses such as counting inaccurate promotions).
    pub measurements: Vec<Measurement>,
}

impl RunResult {
    /// The earliest time at which the anytime value reaches `target`, or
    /// `None` if it never does — the paper's speedup metric divides two
    /// of these.
    pub fn time_to_reach(&self, target: f64) -> Option<f64> {
        self.curve
            .iter()
            .find(|p| p.value <= target)
            .map(|p| p.time)
    }
}

/// Runs `method` on `benchmark` under `config`; see the module docs.
pub fn run(method: &mut dyn Method, benchmark: &dyn Benchmark, config: &RunConfig) -> RunResult {
    assert!(config.n_workers > 0 && config.budget > 0.0);
    let levels = ResourceLevels::new(benchmark.max_resource(), config.eta);
    let mut history = History::new(levels.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let straggler = match config.straggler {
        Some((p, s)) => StragglerModel::new(p, s, config.seed ^ 0x57a6),
        None => StragglerModel::none(),
    };
    let mut cluster: SimCluster<(JobSpec, f64, f64)> =
        SimCluster::with_stragglers(config.n_workers, straggler);
    let mut pending: Vec<JobSpec> = Vec::new();
    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut evals_per_level = vec![0usize; levels.k()];
    let mut measurements: Vec<Measurement> = Vec::new();
    let space = benchmark.space();

    loop {
        // Fill idle workers.
        while cluster.idle_workers() > 0 {
            let mut ctx = MethodContext {
                space,
                levels: &levels,
                history: &history,
                pending: &pending,
                rng: &mut rng,
                n_workers: config.n_workers,
                now: cluster.now(),
            };
            match method.next_job(&mut ctx) {
                Some(spec) => {
                    let eval = benchmark.evaluate(&spec.config, spec.resource, config.seed);
                    // Worker-failure model: each crash wastes a random
                    // fraction of the evaluation before the transparent
                    // retry; the job's effective duration grows but its
                    // result is unchanged.
                    let mut duration = eval.cost;
                    if config.failure_prob > 0.0 {
                        use rand::Rng;
                        while rng.gen::<f64>() < config.failure_prob {
                            duration += rng.gen::<f64>() * eval.cost;
                        }
                    }
                    let label = format!("{}", spec.level);
                    cluster
                        .submit_labeled(
                            (spec.clone(), eval.value, eval.test_value),
                            duration,
                            label,
                        )
                        .expect("idle worker was available");
                    pending.push(spec);
                }
                None => {
                    assert!(
                        !cluster.is_quiescent(),
                        "method {} stalled: no job and no running evaluations",
                        method.name()
                    );
                    break;
                }
            }
        }

        let Some(done) = cluster.next_completion() else {
            break;
        };
        if done.finished > config.budget {
            break;
        }
        let (spec, value, test_value) = done.job;
        let slot = pending
            .iter()
            .position(|p| *p == spec)
            .expect("completed job was pending");
        pending.swap_remove(slot);
        evals_per_level[spec.level] += 1;

        let measurement = Measurement {
            config: spec.config.clone(),
            level: spec.level,
            resource: spec.resource,
            value,
            test_value,
            cost: done.finished - done.started,
            finished_at: done.finished,
        };
        measurements.push(measurement.clone());
        history.record(measurement);
        // The anytime curve tracks the complete-evaluation incumbent (the
        // paper's "lowest validation performance"), which is monotone;
        // partial evaluations only influence it indirectly via promotion.
        if let Some(inc) = history.incumbent_full() {
            let point = CurvePoint {
                time: done.finished,
                value: inc.value,
                test_value: inc.test_value,
            };
            if curve.last().map(|p| p.value != point.value).unwrap_or(true) {
                curve.push(point);
            }
        }

        let outcome = Outcome {
            spec,
            value,
            test_value,
            cost: done.finished - done.started,
            finished_at: done.finished,
        };
        let mut ctx = MethodContext {
            space,
            levels: &levels,
            history: &history,
            pending: &pending,
            rng: &mut rng,
            n_workers: config.n_workers,
            now: cluster.now(),
        };
        method.on_result(&outcome, &mut ctx);

        let total: usize = evals_per_level.iter().sum();
        if config.max_evals > 0 && total >= config.max_evals {
            break;
        }
    }

    let horizon = cluster.now().min(config.budget).max(f64::MIN_POSITIVE);
    let (best_value, best_test, best_config, best_resource) = match history.incumbent() {
        Some(m) => (
            m.value,
            m.test_value,
            Some(m.config.clone()),
            Some(m.resource),
        ),
        None => (f64::INFINITY, f64::INFINITY, None, None),
    };
    RunResult {
        method: method.name().to_string(),
        curve,
        best_value,
        best_test,
        best_config,
        best_resource,
        total_evals: evals_per_level.iter().sum(),
        evals_per_level,
        utilization: cluster.trace().utilization(horizon),
        trace: cluster.trace().clone(),
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hypertune_benchmarks::CountingOnes;

    fn quick_run(kind: MethodKind, n_workers: usize, budget: f64, seed: u64) -> RunResult {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = kind.build(&levels, seed);
        run(
            method.as_mut(),
            &bench,
            &RunConfig::new(n_workers, budget, seed),
        )
    }

    #[test]
    fn every_method_completes_a_run() {
        for &kind in MethodKind::baselines() {
            let r = quick_run(kind, 4, 2000.0, 1);
            assert!(r.total_evals > 0, "{} did no work", kind.name());
            assert!(r.best_value.is_finite(), "{}", kind.name());
        }
        let r = quick_run(MethodKind::HyperTune, 4, 2000.0, 1);
        assert!(r.total_evals > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = quick_run(MethodKind::HyperTune, 4, 1500.0, 5);
        let b = quick_run(MethodKind::HyperTune, 4, 1500.0, 5);
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.total_evals, b.total_evals);
        assert_eq!(a.curve.len(), b.curve.len());
        let c = quick_run(MethodKind::HyperTune, 4, 1500.0, 6);
        // Different seed should (almost surely) differ somewhere.
        assert!(a.best_value != c.best_value || a.total_evals != c.total_evals);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let r = quick_run(MethodKind::Asha, 8, 3000.0, 2);
        for w in r.curve.windows(2) {
            assert!(w[1].value <= w[0].value, "curve must improve");
            assert!(w[1].time >= w[0].time);
        }
    }

    #[test]
    fn async_methods_use_workers_better_than_sync() {
        let sync = quick_run(MethodKind::Hyperband, 8, 3000.0, 3);
        let asynch = quick_run(MethodKind::AHyperband, 8, 3000.0, 3);
        assert!(
            asynch.utilization > sync.utilization,
            "async {:.2} vs sync {:.2}",
            asynch.utilization,
            sync.utilization
        );
        // Async utilization should be near-perfect.
        assert!(asynch.utilization > 0.9, "{}", asynch.utilization);
    }

    #[test]
    fn partial_evaluation_methods_touch_low_levels() {
        let r = quick_run(MethodKind::Asha, 4, 2000.0, 4);
        assert!(r.evals_per_level[0] > 0, "{:?}", r.evals_per_level);
        // Full-fidelity-only baselines never do.
        let r = quick_run(MethodKind::ARandom, 4, 2000.0, 4);
        assert_eq!(r.evals_per_level[0], 0);
        assert_eq!(r.evals_per_level[3], r.total_evals);
    }

    #[test]
    fn budget_respected() {
        let r = quick_run(MethodKind::Asha, 4, 500.0, 5);
        for p in &r.curve {
            assert!(p.time <= 500.0);
        }
    }

    #[test]
    fn max_evals_caps_run() {
        let bench = CountingOnes::new(2, 2, 0);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::ARandom.build(&levels, 0);
        let mut cfg = RunConfig::new(2, 1e9, 0);
        cfg.max_evals = 10;
        let r = run(method.as_mut(), &bench, &cfg);
        assert_eq!(r.total_evals, 10);
    }

    #[test]
    fn time_to_reach_finds_crossing() {
        let r = quick_run(MethodKind::ARandom, 4, 2000.0, 6);
        let best = r.best_value;
        let t = r.time_to_reach(best).unwrap();
        assert!(t <= 2000.0);
        assert!(r.time_to_reach(-2.0).is_none(), "below optimum unreachable");
    }

    #[test]
    fn worker_failures_slow_but_do_not_break_runs() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let run_with = |p: f64| {
            let mut m = MethodKind::Asha.build(&levels, 3);
            let mut cfg = RunConfig::new(4, 2000.0, 3);
            cfg.failure_prob = p;
            run(m.as_mut(), &bench, &cfg)
        };
        let clean = run_with(0.0);
        let flaky = run_with(0.3);
        assert!(flaky.total_evals > 0);
        // Retries consume budget: fewer completions under failures.
        assert!(
            flaky.total_evals < clean.total_evals,
            "flaky {} vs clean {}",
            flaky.total_evals,
            clean.total_evals
        );
        // All recorded measurements are still valid results.
        for m in &flaky.measurements {
            assert!(m.value.is_finite());
        }
    }

    #[test]
    fn stragglers_hurt_sync_more_than_async() {
        let mut cfg = RunConfig::new(8, 3000.0, 7);
        cfg.straggler = Some((0.15, 4.0));
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut hb = MethodKind::Hyperband.build(&levels, 7);
        let mut ahb = MethodKind::AHyperband.build(&levels, 7);
        let sync = run(hb.as_mut(), &bench, &cfg);
        let asynch = run(ahb.as_mut(), &bench, &cfg);
        assert!(asynch.utilization > sync.utilization);
    }
}
