//! The experiment runner: drives a [`Method`] against a
//! [`Benchmark`] on a simulated cluster until the virtual time budget is
//! exhausted, recording the anytime curve the paper's figures plot.
//!
//! The loop mirrors a real distributed tuner: while workers are idle, ask
//! the method for jobs (a synchronous method declines at its barrier);
//! then advance the virtual clock to the next completion, record the
//! measurement, and notify the method. Because all randomness flows from
//! the run seed and the simulator is deterministic, every run is exactly
//! reproducible.
//!
//! # Fault tolerance
//!
//! With [`RunConfig::faults`] set, the cluster injects worker crashes,
//! evaluation errors, hangs, and corrupt results (see
//! [`hypertune_cluster::FaultModel`]). The runner reacts with a bounded
//! [`RetryPolicy`]: a failed job is resubmitted on the freed worker with
//! an exponential backoff added to its duration (modelling requeue and
//! worker re-provisioning delay), and after `max_retries` failures the
//! config is *quarantined* — delivered to the method as a `Failed`
//! [`Outcome`] with `value = ∞` so schedulers release the slot it
//! occupied, and never recorded into the [`History`].
//!
//! # Checkpoint and resume
//!
//! [`run_checkpointed`] snapshots the run's write-ahead submission log
//! every N completions ([`CheckpointPolicy`]); [`resume`] replays the run
//! from virtual time zero against that log — reusing recorded evaluation
//! results instead of calling the benchmark, and verifying the replayed
//! measurement stream matches the snapshot bit-for-bit — then continues
//! live. Because the whole run is a deterministic function of the seed,
//! the resumed run's final [`History`] equals the uninterrupted run's
//! exactly.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;

use hypertune_benchmarks::Benchmark;
use hypertune_cluster::{
    FaultModel, FaultSpec, JobStatus, MembershipPlan, SimCluster, StragglerModel, Trace,
};
use hypertune_space::Config;
use hypertune_telemetry::{Event, TelemetryHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::breaker::{Breaker, BreakerConfig, BreakerTransition};
use crate::diagnostics::{failure_kind, FailureCounts};
use crate::history::{History, Measurement};
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome, OutcomeStatus};
use crate::pending::PendingSet;
use crate::persist::{RunSnapshot, SubmissionRecord};

/// Bounded-retry policy for failed jobs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// How many times a failed job is re-run before quarantine. 0 means
    /// every failure quarantines immediately.
    pub max_retries: usize,
    /// Backoff added to the first retry's duration, in virtual seconds
    /// (the requeue/re-provisioning delay of a real scheduler).
    pub backoff_base: f64,
    /// Multiplier applied to the backoff on each subsequent retry.
    pub backoff_mult: f64,
}

impl RetryPolicy {
    /// Two retries with 1 s base backoff doubling per attempt.
    pub fn default_policy() -> Self {
        Self {
            max_retries: 2,
            backoff_base: 1.0,
            backoff_mult: 2.0,
        }
    }

    /// No retries: every failure quarantines immediately.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            backoff_base: 0.0,
            backoff_mult: 1.0,
        }
    }

    fn backoff(&self, attempt: usize) -> f64 {
        self.backoff_base * self.backoff_mult.powi(attempt as i32)
    }
}

/// Speculative re-execution of stragglers (the tail-latency defence of
/// MapReduce-style schedulers, applied to trial evaluations).
///
/// A running job whose elapsed time exceeds `multiple ×` the median
/// completed duration at its resource level is a *straggler*; the runner
/// launches a backup copy of it on an idle worker. Whichever copy
/// **succeeds** first wins and the loser is cancelled; a copy that fails
/// while its twin is still running is simply discarded (the twin is the
/// retry). Backups reuse the original dispatch's id, so the trial still
/// completes exactly once in the [`History`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationConfig {
    /// Straggler threshold: elapsed > `multiple` × median completed
    /// duration at the same level. Must be finite and > 1.
    pub multiple: f64,
    /// Completions a level needs before its median is trusted.
    pub min_completions: usize,
    /// Cap on simultaneously outstanding backup copies.
    pub max_concurrent: usize,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            multiple: 3.0,
            min_completions: 5,
            max_concurrent: 2,
        }
    }
}

impl SpeculationConfig {
    /// A config with the given straggler multiple and default gates.
    pub fn new(multiple: f64) -> Self {
        Self {
            multiple,
            ..Self::default()
        }
    }

    /// Panics on out-of-range knobs.
    pub fn validate(&self) {
        assert!(
            self.multiple.is_finite() && self.multiple > 1.0,
            "speculation multiple must be finite and > 1"
        );
        assert!(self.min_completions > 0, "min_completions must be > 0");
        assert!(self.max_concurrent > 0, "max_concurrent must be > 0");
    }
}

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of parallel workers.
    pub n_workers: usize,
    /// Virtual wall-clock budget in seconds.
    pub budget: f64,
    /// Master seed: drives the method's RNG and the benchmark noise.
    pub seed: u64,
    /// Discard proportion η of the level ladder (paper default 3).
    pub eta: usize,
    /// Optional `(probability, max_slowdown)` straggler model.
    pub straggler: Option<(f64, f64)>,
    /// Probability that a worker crashes mid-evaluation. Failed attempts
    /// waste a random fraction of the job's cost and are retried
    /// transparently (the fault-tolerance policy of production tuners);
    /// methods never observe the failure, only the longer completion.
    /// This older model predates [`RunConfig::faults`] and is kept for
    /// duration-only failure studies.
    pub failure_prob: f64,
    /// Fault injection rates, or `None` for a fault-free cluster. When
    /// set, failed jobs surface through the [`RetryPolicy`] instead of
    /// being silently absorbed into durations.
    pub faults: Option<FaultSpec>,
    /// Retry policy for jobs failed by the fault model.
    pub retry: RetryPolicy,
    /// Per-job timeout in virtual seconds (`None` = no timeout): jobs
    /// running longer are killed and treated as failures — the defence
    /// against hangs.
    pub job_timeout: Option<f64>,
    /// Safety cap on the number of evaluations (0 = unlimited).
    pub max_evals: usize,
    /// Elastic membership plan: scheduled joins/leaves plus stochastic
    /// worker crashes that orphan in-flight jobs until their lease
    /// expires. `None` (or a static plan) keeps the pool fixed and the
    /// run bit-identical to a non-elastic one.
    pub membership: Option<MembershipPlan>,
    /// Speculative re-execution of stragglers; `None` disables it.
    pub speculation: Option<SpeculationConfig>,
    /// Quarantine-storm circuit breaker: when the recent failure rate
    /// crosses the open threshold the method is degraded (random
    /// sampling, promotions paused) until the rate recovers. `None`
    /// disables the ladder.
    pub breaker: Option<BreakerConfig>,
    /// Telemetry pipeline. The default disabled handle costs nothing and
    /// leaves the run bit-identical to an uninstrumented one; an enabled
    /// handle is cloned into the cluster and the method and receives
    /// dispatch/completion/retry/quarantine/checkpoint events stamped
    /// with virtual time.
    pub telemetry: TelemetryHandle,
}

impl RunConfig {
    /// A config with the paper's defaults: η = 3, no stragglers, no
    /// faults.
    pub fn new(n_workers: usize, budget: f64, seed: u64) -> Self {
        Self {
            n_workers,
            budget,
            seed,
            eta: 3,
            straggler: None,
            failure_prob: 0.0,
            faults: None,
            retry: RetryPolicy::default_policy(),
            job_timeout: None,
            max_evals: 0,
            membership: None,
            speculation: None,
            breaker: None,
            telemetry: TelemetryHandle::disabled(),
        }
    }
}

/// When and where [`run_checkpointed`] (and [`resume`]) write snapshots.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Snapshot file (overwritten on each checkpoint).
    pub path: PathBuf,
    /// Snapshot after every this many completed evaluations.
    pub every_completions: usize,
}

impl CheckpointPolicy {
    /// A policy snapshotting to `path` every `every_completions`
    /// completions.
    ///
    /// # Panics
    ///
    /// Panics if `every_completions == 0`.
    pub fn new(path: impl Into<PathBuf>, every_completions: usize) -> Self {
        assert!(every_completions > 0, "checkpoint interval must be > 0");
        Self {
            path: path.into(),
            every_completions,
        }
    }
}

/// Why a checkpointed or resumed run could not complete.
#[derive(Debug)]
pub enum ResumeError {
    /// The snapshot was taken under a different seed; the replay could
    /// never reproduce it.
    SeedMismatch {
        /// Seed stored in the snapshot.
        snapshot: u64,
        /// Seed in the caller's [`RunConfig`].
        config: u64,
    },
    /// The replay produced a different dispatch or measurement than the
    /// snapshot recorded — the method, benchmark, config, or snapshot
    /// changed since the checkpoint was written.
    Diverged {
        /// Which stream diverged: `"submission"` or `"measurement"`.
        stream: &'static str,
        /// Index of the first mismatching entry.
        index: usize,
    },
    /// Reading or writing a snapshot failed.
    Io(std::io::Error),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::SeedMismatch { snapshot, config } => write!(
                f,
                "snapshot seed {snapshot} does not match run seed {config}"
            ),
            ResumeError::Diverged { stream, index } => write!(
                f,
                "replay diverged from snapshot at {stream} {index}: \
                 method, benchmark, or config changed since the checkpoint"
            ),
            ResumeError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<std::io::Error> for ResumeError {
    fn from(e: std::io::Error) -> Self {
        ResumeError::Io(e)
    }
}

/// One point of the anytime curve: the incumbent after a completion.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CurvePoint {
    /// Virtual time of the completion.
    pub time: f64,
    /// Best validation value so far (complete evaluations preferred).
    pub value: f64,
    /// Test value of that incumbent.
    pub test_value: f64,
}

/// The outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method display name.
    pub method: String,
    /// Anytime incumbent curve (one point per completed evaluation).
    pub curve: Vec<CurvePoint>,
    /// Best validation value found.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// The best configuration itself.
    pub best_config: Option<Config>,
    /// Training resources of the incumbent's evaluation (full fidelity
    /// unless no complete evaluation finished within the budget).
    pub best_resource: Option<f64>,
    /// Completed evaluations per resource level.
    pub evals_per_level: Vec<usize>,
    /// Total completed evaluations.
    pub total_evals: usize,
    /// Fraction of worker-time spent busy within the budget.
    pub utilization: f64,
    /// Worker-occupancy trace (for Gantt renderings).
    pub trace: Trace,
    /// Every completed measurement, in completion order (for post-hoc
    /// analyses such as counting inaccurate promotions).
    pub measurements: Vec<Measurement>,
    /// Failed job attempts observed (each retry that failed counts).
    pub n_failed_attempts: usize,
    /// Resubmissions issued by the retry policy.
    pub n_retries: usize,
    /// Jobs quarantined after exhausting their retries.
    pub n_quarantined: usize,
    /// Failed attempts broken down by [`hypertune_cluster::JobStatus`]
    /// (every attempt counts, retried or quarantined).
    pub failure_counts: FailureCounts,
    /// Jobs orphaned by worker crashes whose lease expired (each such
    /// attempt also counts in `n_failed_attempts`).
    pub n_orphaned: usize,
    /// Backup copies launched by speculative re-execution.
    pub n_speculations: usize,
    /// Speculations where the backup copy finished before the original.
    pub n_backup_wins: usize,
    /// Times the circuit breaker opened (degradation-ladder trips).
    pub n_breaker_trips: usize,
}

impl RunResult {
    /// The earliest time at which the anytime value reaches `target`, or
    /// `None` if it never does — the paper's speedup metric divides two
    /// of these.
    pub fn time_to_reach(&self, target: f64) -> Option<f64> {
        self.curve
            .iter()
            .find(|p| p.value <= target)
            .map(|p| p.time)
    }
}

/// The simulator payload: a job plus its (pre-computed) evaluation result
/// and retry bookkeeping.
#[derive(Debug, Clone, PartialEq)]
struct InFlight {
    spec: JobSpec,
    value: f64,
    test_value: f64,
    /// Duration of a clean attempt (after the legacy failure-prob
    /// inflation), reused when the job is resubmitted.
    duration: f64,
    /// 0 for the first attempt, incremented per retry.
    attempt: usize,
}

/// Runs `method` on `benchmark` under `config`; see the module docs.
pub fn run(method: &mut dyn Method, benchmark: &dyn Benchmark, config: &RunConfig) -> RunResult {
    run_impl(method, benchmark, config, None, None)
        .expect("without checkpointing or replay the runner is infallible")
}

/// Like [`run`], writing a [`RunSnapshot`] every
/// `policy.every_completions` completions so the run can be [`resume`]d
/// after an interruption.
pub fn run_checkpointed(
    method: &mut dyn Method,
    benchmark: &dyn Benchmark,
    config: &RunConfig,
    policy: &CheckpointPolicy,
) -> Result<RunResult, ResumeError> {
    run_impl(method, benchmark, config, Some(policy), None)
}

/// Resumes a run from `snapshot`: replays the recorded prefix (reusing
/// logged evaluation results, verifying each replayed dispatch and
/// measurement against the log) and continues live to the end of the
/// budget. The caller must supply the *same* method state (freshly
/// built), benchmark, and config as the original run; any drift is
/// reported as [`ResumeError::Diverged`]. On success the result — and in
/// particular its measurement stream — is bit-identical to an
/// uninterrupted run.
pub fn resume(
    method: &mut dyn Method,
    benchmark: &dyn Benchmark,
    config: &RunConfig,
    snapshot: &RunSnapshot,
    policy: Option<&CheckpointPolicy>,
) -> Result<RunResult, ResumeError> {
    run_impl(method, benchmark, config, policy, Some(snapshot))
}

/// Feeds one terminal trial outcome (`failed` = quarantined) to the
/// breaker and walks the degradation ladder on a transition.
fn feed_breaker(
    breaker: &mut Option<Breaker>,
    failed: bool,
    now: f64,
    method: &mut dyn Method,
    telemetry: &TelemetryHandle,
    n_breaker_trips: &mut usize,
) {
    let Some(br) = breaker.as_mut() else { return };
    match br.record(failed) {
        Some(BreakerTransition::Opened(failure_rate)) => {
            *n_breaker_trips += 1;
            method.set_degraded(true);
            telemetry.emit_with(now, || Event::BreakerOpened { failure_rate });
            telemetry.counter_add("breaker.opened", 1);
        }
        Some(BreakerTransition::Closed) => {
            method.set_degraded(false);
            telemetry.emit_with(now, || Event::BreakerClosed);
        }
        None => {}
    }
}

fn run_impl(
    method: &mut dyn Method,
    benchmark: &dyn Benchmark,
    config: &RunConfig,
    checkpoint: Option<&CheckpointPolicy>,
    replay: Option<&RunSnapshot>,
) -> Result<RunResult, ResumeError> {
    assert!(config.n_workers > 0 && config.budget > 0.0);
    if let Some(sc) = &config.speculation {
        sc.validate();
    }
    if let Some(s) = replay {
        if s.seed != config.seed {
            return Err(ResumeError::SeedMismatch {
                snapshot: s.seed,
                config: config.seed,
            });
        }
    }
    let levels = ResourceLevels::new(benchmark.max_resource(), config.eta);
    let mut history = History::new(levels.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let straggler = match config.straggler {
        Some((p, s)) => StragglerModel::new(p, s, config.seed ^ 0x57a6),
        None => StragglerModel::none(),
    };
    let faults = match config.faults {
        Some(spec) => FaultModel::new(spec, config.seed ^ 0xfa17),
        None => FaultModel::none(),
    };
    let mut cluster: SimCluster<InFlight> =
        SimCluster::with_stragglers(config.n_workers, straggler).with_faults(faults);
    if let Some(plan) = &config.membership {
        cluster = cluster.with_membership(plan.clone());
    }
    cluster.set_job_timeout(config.job_timeout);
    let telemetry = &config.telemetry;
    cluster.set_telemetry(telemetry.clone());
    method.set_telemetry(telemetry.clone());
    let mut pending = PendingSet::new();
    let mut next_job_id: u64 = 1;
    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut evals_per_level = vec![0usize; levels.k()];
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut submission_log: Vec<SubmissionRecord> = Vec::new();
    let mut n_failed_attempts = 0usize;
    let mut n_retries = 0usize;
    let mut n_quarantined = 0usize;
    let mut failure_counts = FailureCounts::default();
    // Elastic/self-healing state. All of it is driver-side bookkeeping
    // that consumes no run RNG, so when churn never strikes, no straggler
    // crosses the speculation threshold, and the breaker never opens, the
    // run is bit-identical to one with the features disabled.
    let mut n_orphaned = 0usize;
    let mut n_speculations = 0usize;
    let mut n_backup_wins = 0usize;
    let mut n_breaker_trips = 0usize;
    let mut breaker = config.breaker.clone().map(Breaker::new);
    // Jobs orphaned by a worker crash wait here for the next idle slot: a
    // crash frees no worker, so the freed-worker resubmit of the plain
    // retry path cannot apply.
    let mut orphan_queue: VecDeque<(InFlight, f64, String)> = VecDeque::new();
    // Dispatch token -> (virtual start time, payload). BTreeMap so the
    // straggler scan iterates in token (dispatch) order deterministically.
    // Maintained only when speculation is enabled.
    let mut running: BTreeMap<u64, (f64, InFlight)> = BTreeMap::new();
    // Completed durations per level, kept sorted for O(1) medians.
    let mut level_durations: Vec<Vec<f64>> = vec![Vec::new(); levels.k()];
    // Original dispatch id -> (primary token, backup token).
    let mut twins: HashMap<u64, (u64, u64)> = HashMap::new();
    // Dispatch ids that already received a backup (at most one each).
    let mut speculated: HashSet<u64> = HashSet::new();
    let space = benchmark.space();

    loop {
        // Re-dispatch orphaned jobs first: recovery takes priority over
        // fresh work.
        while cluster.idle_workers() > 0 {
            let Some((job, duration, label)) = orphan_queue.pop_front() else {
                break;
            };
            let receipt = cluster
                .submit_full(job.clone(), duration, label)
                .expect("idle worker was available");
            if config.speculation.is_some() {
                running.insert(receipt.token, (cluster.now(), job));
            }
        }
        // Speculative re-execution: back up stragglers onto idle workers
        // before the method sees the slots (an async method would
        // otherwise keep every worker busy and backups could never
        // launch).
        if let Some(sc) = &config.speculation {
            while cluster.idle_workers() > 0 && twins.len() < sc.max_concurrent {
                let now = cluster.now();
                let candidate = running.iter().find_map(|(&token, info)| {
                    let (started, job) = info;
                    if speculated.contains(&job.spec.id) {
                        return None;
                    }
                    let durations = &level_durations[job.spec.level];
                    if durations.len() < sc.min_completions {
                        return None;
                    }
                    let median = durations[durations.len() / 2];
                    (now - started > sc.multiple * median).then_some(token)
                });
                let Some(primary) = candidate else { break };
                let job = running
                    .get(&primary)
                    .expect("candidate token is running")
                    .1
                    .clone();
                let level = job.spec.level;
                speculated.insert(job.spec.id);
                n_speculations += 1;
                telemetry.emit_with(now, || Event::SpeculationLaunched { level });
                telemetry.counter_add("trials.speculated", 1);
                let receipt = cluster
                    .submit_full(job.clone(), job.duration, format!("{level}s"))
                    .expect("idle worker was available");
                twins.insert(job.spec.id, (primary, receipt.token));
                running.insert(receipt.token, (now, job));
            }
        }
        // Fill idle workers.
        while cluster.idle_workers() > 0 {
            let mut ctx = MethodContext {
                space,
                levels: &levels,
                history: &history,
                pending: pending.as_slice(),
                rng: &mut rng,
                n_workers: config.n_workers,
                now: cluster.now(),
            };
            // The sim runner dispatches through the batch API with k = 1:
            // bit-identical to the sequential `next_job` path (the paper
            // figures depend on that), while sharing the runner-facing
            // contract with the threaded runner's real batching.
            let next = {
                let step = telemetry.span("scheduler_step");
                let next = method.next_jobs(&mut ctx, 1).pop();
                drop(step);
                next
            };
            match next {
                Some(mut spec) => {
                    spec.id = next_job_id;
                    next_job_id += 1;
                    // Replay: the recorded result substitutes for the
                    // evaluation, after checking the method issued the
                    // same dispatch it did originally.
                    let idx = submission_log.len();
                    let (value, test_value, cost) = match replay {
                        Some(s) if idx < s.submissions.len() => {
                            let rec = &s.submissions[idx];
                            if rec.spec != spec {
                                return Err(ResumeError::Diverged {
                                    stream: "submission",
                                    index: idx,
                                });
                            }
                            (rec.value, rec.test_value, rec.cost)
                        }
                        _ => {
                            let eval = benchmark.evaluate(&spec.config, spec.resource, config.seed);
                            (eval.value, eval.test_value, eval.cost)
                        }
                    };
                    submission_log.push(SubmissionRecord {
                        spec: spec.clone(),
                        value,
                        test_value,
                        cost,
                    });
                    // Worker-failure model: each crash wastes a random
                    // fraction of the evaluation before the transparent
                    // retry; the job's effective duration grows but its
                    // result is unchanged.
                    let mut duration = cost;
                    if config.failure_prob > 0.0 {
                        use rand::Rng;
                        while rng.gen::<f64>() < config.failure_prob {
                            duration += rng.gen::<f64>() * cost;
                        }
                    }
                    telemetry.emit_with(cluster.now(), || Event::TrialDispatched {
                        level: spec.level,
                        bracket: spec.bracket,
                        attempt: 0,
                    });
                    telemetry.counter_add("trials.dispatched", 1);
                    let label = format!("{}", spec.level);
                    let flight = InFlight {
                        spec: spec.clone(),
                        value,
                        test_value,
                        duration,
                        attempt: 0,
                    };
                    let receipt = cluster
                        .submit_full(flight.clone(), duration, label)
                        .expect("idle worker was available");
                    if config.speculation.is_some() {
                        running.insert(receipt.token, (cluster.now(), flight));
                    }
                    pending.insert(spec);
                }
                None => {
                    assert!(
                        !cluster.is_quiescent(),
                        "method {} stalled: no job and no running evaluations",
                        method.name()
                    );
                    break;
                }
            }
        }

        let Ok(done) = cluster.next_completion() else {
            break;
        };
        if done.finished > config.budget {
            break;
        }
        let job = done.job;
        if config.speculation.is_some() {
            running.remove(&done.token);
        }
        // Twin resolution: the first copy to *succeed* wins and cancels
        // its sibling; a copy that fails while its twin is still running
        // is dropped silently — the twin is its retry, so the trial still
        // terminates exactly once.
        if let Some(&(primary, backup)) = twins.get(&job.spec.id) {
            if done.status == JobStatus::Succeeded {
                let loser = if done.token == backup {
                    primary
                } else {
                    backup
                };
                cluster.cancel(loser);
                running.remove(&loser);
                twins.remove(&job.spec.id);
                let backup_won = done.token == backup;
                if backup_won {
                    n_backup_wins += 1;
                }
                telemetry.emit_with(done.finished, || Event::SpeculationResolved {
                    level: job.spec.level,
                    backup_won,
                });
                // Falls through to the normal success path below.
            } else {
                twins.remove(&job.spec.id);
                n_failed_attempts += 1;
                failure_counts.record(done.status);
                telemetry.counter_add("trials.failed_attempts", 1);
                if done.status == JobStatus::Orphaned {
                    n_orphaned += 1;
                    telemetry.emit_with(done.finished, || Event::LeaseExpired {
                        level: job.spec.level,
                        attempt: job.attempt,
                    });
                    telemetry.counter_add("trials.orphaned", 1);
                }
                continue;
            }
        }
        if done.status.is_failure() {
            n_failed_attempts += 1;
            failure_counts.record(done.status);
            telemetry.counter_add("trials.failed_attempts", 1);
            let orphaned = done.status == JobStatus::Orphaned;
            if orphaned {
                n_orphaned += 1;
                telemetry.emit_with(done.finished, || Event::LeaseExpired {
                    level: job.spec.level,
                    attempt: job.attempt,
                });
                telemetry.counter_add("trials.orphaned", 1);
            }
            if job.attempt < config.retry.max_retries {
                // Bounded retry: the worker that just freed re-runs the
                // job. The backoff rides on the duration — the simulator's
                // clock only moves via completions, so requeue delay is
                // modelled as occupied worker time.
                n_retries += 1;
                telemetry.emit_with(done.finished, || Event::TrialRetried {
                    level: job.spec.level,
                    attempt: job.attempt + 1,
                    kind: failure_kind(done.status).expect("status is a failure"),
                });
                telemetry.counter_add("trials.retried", 1);
                let backoff = config.retry.backoff(job.attempt);
                let duration = job.duration + backoff;
                let label = format!("{}r{}", job.spec.level, job.attempt + 1);
                let resubmit = InFlight {
                    attempt: job.attempt + 1,
                    ..job
                };
                if orphaned {
                    // The dead worker freed no slot; queue the requeue
                    // until one opens up.
                    orphan_queue.push_back((resubmit, duration, label));
                } else {
                    let receipt = cluster
                        .submit_full(resubmit.clone(), duration, label)
                        .expect("the failed job's worker is free");
                    if config.speculation.is_some() {
                        running.insert(receipt.token, (cluster.now(), resubmit));
                    }
                }
                continue;
            }
            // Retries exhausted: quarantine. The method sees a Failed
            // outcome (value = ∞) so it releases whatever slot the job
            // held; the history never records it.
            n_quarantined += 1;
            telemetry.emit_with(done.finished, || Event::TrialQuarantined {
                level: job.spec.level,
                bracket: job.spec.bracket,
                kind: failure_kind(done.status).expect("status is a failure"),
            });
            telemetry.counter_add("trials.quarantined", 1);
            feed_breaker(
                &mut breaker,
                true,
                done.finished,
                method,
                telemetry,
                &mut n_breaker_trips,
            );
            pending.remove(&job.spec);
            let outcome = Outcome {
                spec: job.spec,
                value: f64::INFINITY,
                test_value: f64::INFINITY,
                cost: done.finished - done.started,
                finished_at: done.finished,
                status: OutcomeStatus::Failed,
                fail_status: Some(done.status),
            };
            let mut ctx = MethodContext {
                space,
                levels: &levels,
                history: &history,
                pending: pending.as_slice(),
                rng: &mut rng,
                n_workers: config.n_workers,
                now: cluster.now(),
            };
            method.on_result(&outcome, &mut ctx);
            continue;
        }
        let InFlight {
            spec,
            value,
            test_value,
            ..
        } = job;
        pending.remove(&spec);
        evals_per_level[spec.level] += 1;
        if config.speculation.is_some() {
            let durations = &mut level_durations[spec.level];
            let d = done.finished - done.started;
            let pos = durations.partition_point(|&x| x <= d);
            durations.insert(pos, d);
        }
        feed_breaker(
            &mut breaker,
            false,
            done.finished,
            method,
            telemetry,
            &mut n_breaker_trips,
        );
        telemetry.emit_with(done.finished, || Event::TrialCompleted {
            level: spec.level,
            bracket: spec.bracket,
            value,
            cost: done.finished - done.started,
        });
        telemetry.counter_add("trials.completed", 1);
        telemetry.histogram_record("trial.cost", done.finished - done.started);

        let measurement = Measurement {
            config: spec.config.clone(),
            level: spec.level,
            resource: spec.resource,
            value,
            test_value,
            cost: done.finished - done.started,
            finished_at: done.finished,
        };
        measurements.push(measurement.clone());
        history.record(measurement);
        // Replay verification: the replayed measurement stream must match
        // the snapshot bit-for-bit, or the resumed run would silently be
        // a different run.
        if let Some(s) = replay {
            let i = measurements.len() - 1;
            if i < s.measurements.len() && s.measurements[i] != measurements[i] {
                return Err(ResumeError::Diverged {
                    stream: "measurement",
                    index: i,
                });
            }
        }
        // The anytime curve tracks the complete-evaluation incumbent (the
        // paper's "lowest validation performance"), which is monotone;
        // partial evaluations only influence it indirectly via promotion.
        if let Some(inc) = history.incumbent_full() {
            let point = CurvePoint {
                time: done.finished,
                value: inc.value,
                test_value: inc.test_value,
            };
            if curve.last().map(|p| p.value != point.value).unwrap_or(true) {
                curve.push(point);
            }
        }

        let outcome = Outcome {
            spec,
            value,
            test_value,
            cost: done.finished - done.started,
            finished_at: done.finished,
            status: OutcomeStatus::Success,
            fail_status: None,
        };
        let mut ctx = MethodContext {
            space,
            levels: &levels,
            history: &history,
            pending: pending.as_slice(),
            rng: &mut rng,
            n_workers: config.n_workers,
            now: cluster.now(),
        };
        method.on_result(&outcome, &mut ctx);

        if let Some(cp) = checkpoint {
            if measurements.len().is_multiple_of(cp.every_completions) {
                RunSnapshot {
                    seed: config.seed,
                    submissions: submission_log.clone(),
                    measurements: measurements.clone(),
                }
                .save(&cp.path)?;
                telemetry.emit_with(done.finished, || Event::CheckpointWritten {
                    completions: measurements.len(),
                    path: cp.path.display().to_string(),
                });
            }
        }

        let total: usize = evals_per_level.iter().sum();
        if config.max_evals > 0 && total >= config.max_evals {
            break;
        }
    }

    telemetry.flush();
    let horizon = cluster.now().min(config.budget).max(f64::MIN_POSITIVE);
    let (best_value, best_test, best_config, best_resource) = match history.incumbent() {
        Some(m) => (
            m.value,
            m.test_value,
            Some(m.config.clone()),
            Some(m.resource),
        ),
        None => (f64::INFINITY, f64::INFINITY, None, None),
    };
    Ok(RunResult {
        method: method.name().to_string(),
        curve,
        best_value,
        best_test,
        best_config,
        best_resource,
        total_evals: evals_per_level.iter().sum(),
        evals_per_level,
        utilization: cluster.trace().utilization(horizon),
        trace: cluster.trace().clone(),
        measurements,
        n_failed_attempts,
        n_retries,
        n_quarantined,
        failure_counts,
        n_orphaned,
        n_speculations,
        n_backup_wins,
        n_breaker_trips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hypertune_benchmarks::CountingOnes;

    fn quick_run(kind: MethodKind, n_workers: usize, budget: f64, seed: u64) -> RunResult {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = kind.build(&levels, seed);
        run(
            method.as_mut(),
            &bench,
            &RunConfig::new(n_workers, budget, seed),
        )
    }

    #[test]
    fn every_method_completes_a_run() {
        for &kind in MethodKind::baselines() {
            let r = quick_run(kind, 4, 2000.0, 1);
            assert!(r.total_evals > 0, "{} did no work", kind.name());
            assert!(r.best_value.is_finite(), "{}", kind.name());
        }
        let r = quick_run(MethodKind::HyperTune, 4, 2000.0, 1);
        assert!(r.total_evals > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = quick_run(MethodKind::HyperTune, 4, 1500.0, 5);
        let b = quick_run(MethodKind::HyperTune, 4, 1500.0, 5);
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.total_evals, b.total_evals);
        assert_eq!(a.curve.len(), b.curve.len());
        let c = quick_run(MethodKind::HyperTune, 4, 1500.0, 6);
        // Different seed should (almost surely) differ somewhere.
        assert!(a.best_value != c.best_value || a.total_evals != c.total_evals);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let r = quick_run(MethodKind::Asha, 8, 3000.0, 2);
        for w in r.curve.windows(2) {
            assert!(w[1].value <= w[0].value, "curve must improve");
            assert!(w[1].time >= w[0].time);
        }
    }

    #[test]
    fn async_methods_use_workers_better_than_sync() {
        let sync = quick_run(MethodKind::Hyperband, 8, 3000.0, 3);
        let asynch = quick_run(MethodKind::AHyperband, 8, 3000.0, 3);
        assert!(
            asynch.utilization > sync.utilization,
            "async {:.2} vs sync {:.2}",
            asynch.utilization,
            sync.utilization
        );
        // Async utilization should be near-perfect.
        assert!(asynch.utilization > 0.9, "{}", asynch.utilization);
    }

    #[test]
    fn partial_evaluation_methods_touch_low_levels() {
        let r = quick_run(MethodKind::Asha, 4, 2000.0, 4);
        assert!(r.evals_per_level[0] > 0, "{:?}", r.evals_per_level);
        // Full-fidelity-only baselines never do.
        let r = quick_run(MethodKind::ARandom, 4, 2000.0, 4);
        assert_eq!(r.evals_per_level[0], 0);
        assert_eq!(r.evals_per_level[3], r.total_evals);
    }

    #[test]
    fn budget_respected() {
        let r = quick_run(MethodKind::Asha, 4, 500.0, 5);
        for p in &r.curve {
            assert!(p.time <= 500.0);
        }
    }

    #[test]
    fn max_evals_caps_run() {
        let bench = CountingOnes::new(2, 2, 0);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::ARandom.build(&levels, 0);
        let mut cfg = RunConfig::new(2, 1e9, 0);
        cfg.max_evals = 10;
        let r = run(method.as_mut(), &bench, &cfg);
        assert_eq!(r.total_evals, 10);
    }

    #[test]
    fn time_to_reach_finds_crossing() {
        let r = quick_run(MethodKind::ARandom, 4, 2000.0, 6);
        let best = r.best_value;
        let t = r.time_to_reach(best).unwrap();
        assert!(t <= 2000.0);
        assert!(r.time_to_reach(-2.0).is_none(), "below optimum unreachable");
    }

    #[test]
    fn worker_failures_slow_but_do_not_break_runs() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let run_with = |p: f64| {
            let mut m = MethodKind::Asha.build(&levels, 3);
            let mut cfg = RunConfig::new(4, 2000.0, 3);
            cfg.failure_prob = p;
            run(m.as_mut(), &bench, &cfg)
        };
        let clean = run_with(0.0);
        let flaky = run_with(0.3);
        assert!(flaky.total_evals > 0);
        // Retries consume budget: fewer completions under failures.
        assert!(
            flaky.total_evals < clean.total_evals,
            "flaky {} vs clean {}",
            flaky.total_evals,
            clean.total_evals
        );
        // All recorded measurements are still valid results.
        for m in &flaky.measurements {
            assert!(m.value.is_finite());
        }
    }

    #[test]
    fn stragglers_hurt_sync_more_than_async() {
        let mut cfg = RunConfig::new(8, 3000.0, 7);
        cfg.straggler = Some((0.15, 4.0));
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut hb = MethodKind::Hyperband.build(&levels, 7);
        let mut ahb = MethodKind::AHyperband.build(&levels, 7);
        let sync = run(hb.as_mut(), &bench, &cfg);
        let asynch = run(ahb.as_mut(), &bench, &cfg);
        assert!(asynch.utilization > sync.utilization);
    }

    #[test]
    fn crash_faults_are_retried_and_runs_complete() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let run_with = |spec: Option<FaultSpec>| {
            let mut m = MethodKind::Asha.build(&levels, 3);
            let mut cfg = RunConfig::new(4, 2000.0, 3);
            cfg.faults = spec;
            run(m.as_mut(), &bench, &cfg)
        };
        let clean = run_with(None);
        let faulty = run_with(Some(FaultSpec::crashes(0.10)));
        assert!(faulty.total_evals > 0, "10% crash rate must not kill runs");
        assert!(faulty.n_failed_attempts > 0, "faults should have fired");
        assert!(faulty.n_retries > 0, "failed jobs should be retried");
        assert!(
            faulty.total_evals < clean.total_evals,
            "crashes consume budget: {} vs {}",
            faulty.total_evals,
            clean.total_evals
        );
        for m in &faulty.measurements {
            assert!(m.value.is_finite(), "failures must never enter history");
        }
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let run_once = || {
            let mut m = MethodKind::HyperTune.build(&levels, 9);
            let mut cfg = RunConfig::new(4, 1500.0, 9);
            cfg.faults = Some(FaultSpec::crashes(0.15));
            run(m.as_mut(), &bench, &cfg)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.measurements, b.measurements);
        assert_eq!(a.n_failed_attempts, b.n_failed_attempts);
        assert_eq!(a.n_quarantined, b.n_quarantined);
    }

    #[test]
    fn retry_exhaustion_quarantines_instead_of_stalling() {
        // Every job fails: nothing ever completes, everything quarantines,
        // and the run still terminates at the budget with the method
        // having been told about every failure.
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut m = MethodKind::Asha.build(&levels, 3);
        let mut cfg = RunConfig::new(4, 300.0, 3);
        cfg.faults = Some(FaultSpec::crashes(1.0));
        cfg.retry = RetryPolicy {
            max_retries: 1,
            backoff_base: 1.0,
            backoff_mult: 2.0,
        };
        let r = run(m.as_mut(), &bench, &cfg);
        assert_eq!(r.total_evals, 0);
        assert!(r.n_quarantined > 0);
        // Every failed attempt was either retried or quarantined (jobs
        // still in flight at the budget edge keep the counts inexact
        // between the two, but never outside this identity).
        assert_eq!(r.n_failed_attempts, r.n_retries + r.n_quarantined);
        // With max_retries = 1 each quarantine consumed exactly one
        // retry first, so retries can only exceed quarantines by the
        // jobs whose second attempt was still running at the budget.
        assert!(r.n_retries >= r.n_quarantined);
        assert!(r.best_config.is_none());
    }

    #[test]
    fn zero_retry_policy_quarantines_immediately() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut m = MethodKind::ARandom.build(&levels, 1);
        let mut cfg = RunConfig::new(2, 200.0, 1);
        cfg.faults = Some(FaultSpec::errors(1.0));
        cfg.retry = RetryPolicy::none();
        let r = run(m.as_mut(), &bench, &cfg);
        assert_eq!(r.n_retries, 0);
        assert!(r.n_quarantined > 0);
        assert_eq!(r.n_failed_attempts, r.n_quarantined);
    }

    #[test]
    fn job_timeout_converts_hangs_into_retries() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        // Hangs stretch jobs 50x; a timeout of 2x the max cost catches
        // every hang while leaving clean jobs untouched.
        let mut m = MethodKind::Asha.build(&levels, 5);
        let mut cfg = RunConfig::new(4, 2000.0, 5);
        cfg.faults = Some(FaultSpec::hangs(0.2, 50.0));
        cfg.job_timeout = Some(2.0 * bench.max_resource());
        let r = run(m.as_mut(), &bench, &cfg);
        assert!(r.total_evals > 0);
        assert!(r.n_failed_attempts > 0, "timeouts should fire on hangs");
        // Without the timeout the same hangs just burn budget silently.
        let mut m2 = MethodKind::Asha.build(&levels, 5);
        let mut cfg2 = RunConfig::new(4, 2000.0, 5);
        cfg2.faults = Some(FaultSpec::hangs(0.2, 50.0));
        let r2 = run(m2.as_mut(), &bench, &cfg2);
        assert_eq!(r2.n_failed_attempts, 0);
        assert!(
            r.total_evals >= r2.total_evals,
            "killing hangs must not reduce throughput: {} vs {}",
            r.total_evals,
            r2.total_evals
        );
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let cfg = RunConfig::new(4, 1200.0, 11);

        let mut m_full = MethodKind::HyperTune.build(&levels, 11);
        let full = run(m_full.as_mut(), &bench, &cfg);

        let dir = std::env::temp_dir().join("hypertune-runner-resume-test");
        let path = dir.join("snap.json");
        let policy = CheckpointPolicy::new(&path, 7);
        let mut m_ckpt = MethodKind::HyperTune.build(&levels, 11);
        let _ = run_checkpointed(m_ckpt.as_mut(), &bench, &cfg, &policy).unwrap();

        // "Crash" — all in-memory state is dropped; resume from disk.
        let snapshot = RunSnapshot::load(&path).unwrap();
        assert!(!snapshot.measurements.is_empty());
        assert!(snapshot.measurements.len() < full.measurements.len());
        let mut m_resumed = MethodKind::HyperTune.build(&levels, 11);
        let resumed = resume(m_resumed.as_mut(), &bench, &cfg, &snapshot, None).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(resumed.measurements, full.measurements);
        assert_eq!(resumed.best_value, full.best_value);
        assert_eq!(resumed.curve, full.curve);
    }

    #[test]
    fn resume_rejects_wrong_seed_and_tampered_snapshots() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let cfg = RunConfig::new(2, 400.0, 2);
        let dir = std::env::temp_dir().join("hypertune-runner-tamper-test");
        let path = dir.join("snap.json");
        let policy = CheckpointPolicy::new(&path, 5);
        let mut m = MethodKind::Asha.build(&levels, 2);
        run_checkpointed(m.as_mut(), &bench, &cfg, &policy).unwrap();
        let mut snapshot = RunSnapshot::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // Wrong seed is rejected up front.
        let mut wrong_cfg = cfg.clone();
        wrong_cfg.seed = 3;
        let mut m2 = MethodKind::Asha.build(&levels, 3);
        match resume(m2.as_mut(), &bench, &wrong_cfg, &snapshot, None) {
            Err(ResumeError::SeedMismatch { .. }) => {}
            other => panic!("expected SeedMismatch, got {other:?}"),
        }

        // A tampered measurement is caught by replay verification.
        snapshot.measurements[0].value += 1.0;
        let mut m3 = MethodKind::Asha.build(&levels, 2);
        match resume(m3.as_mut(), &bench, &cfg, &snapshot, None) {
            Err(ResumeError::Diverged { stream, .. }) => assert_eq!(stream, "measurement"),
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn static_plan_and_idle_breaker_are_bit_identical() {
        // The headline elastic invariant: a static membership plan plus an
        // armed-but-never-tripped breaker changes nothing — the run is
        // bit-identical to one with the resilience features disabled.
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let run_with = |elastic: bool| {
            let mut m = MethodKind::HyperTune.build(&levels, 13);
            let mut cfg = RunConfig::new(4, 1500.0, 13);
            if elastic {
                cfg.membership = Some(MembershipPlan::static_plan());
                cfg.breaker = Some(BreakerConfig::default());
            }
            run(m.as_mut(), &bench, &cfg)
        };
        let plain = run_with(false);
        let elastic = run_with(true);
        assert_eq!(plain.measurements, elastic.measurements);
        assert_eq!(plain.curve, elastic.curve);
        assert_eq!(plain.utilization, elastic.utilization);
        assert_eq!(elastic.n_orphaned, 0);
        assert_eq!(elastic.n_speculations, 0);
        assert_eq!(elastic.n_breaker_trips, 0);
    }

    #[test]
    fn worker_churn_orphans_are_recovered_and_runs_complete() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let run_once = || {
            let mut m = MethodKind::Asha.build(&levels, 7);
            let mut cfg = RunConfig::new(4, 2500.0, 7);
            // 10% crash-per-dispatch, crashed workers rejoin after 5 s,
            // leases expire quickly so orphans recycle within the budget.
            cfg.membership =
                Some(MembershipPlan::worker_crashes(0.10, Some(5.0), 7).with_lease_timeout(10.0));
            run(m.as_mut(), &bench, &cfg)
        };
        let r = run_once();
        assert!(r.n_orphaned > 0, "churn should have orphaned some jobs");
        assert!(r.total_evals > 0, "churn must not kill the run");
        assert_eq!(r.failure_counts.orphaned, r.n_orphaned);
        // Orphans flow through the same bounded-retry policy as other
        // failures: every failed attempt is retried or quarantined (jobs
        // still in flight at the budget edge keep the identity inexact in
        // one direction only).
        assert!(r.n_retries + r.n_quarantined <= r.n_failed_attempts);
        for m in &r.measurements {
            assert!(m.value.is_finite(), "orphans must never enter history");
        }
        // Exactly-once under churn is deterministic per seed.
        let r2 = run_once();
        assert_eq!(r.measurements, r2.measurements);
        assert_eq!(r.n_orphaned, r2.n_orphaned);
    }

    #[test]
    fn speculation_backs_up_stragglers_deterministically() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let run_once = |speculate: bool| {
            let mut m = MethodKind::Asha.build(&levels, 21);
            let mut cfg = RunConfig::new(4, 2500.0, 21);
            // Frequent, heavy stragglers (20x slowdown) so backups win.
            cfg.straggler = Some((0.25, 20.0));
            if speculate {
                cfg.speculation = Some(SpeculationConfig {
                    multiple: 2.0,
                    min_completions: 3,
                    max_concurrent: 4,
                });
            }
            run(m.as_mut(), &bench, &cfg)
        };
        let r = run_once(true);
        assert!(r.n_speculations > 0, "heavy stragglers should be backed up");
        assert!(r.n_backup_wins <= r.n_speculations);
        assert!(r.total_evals > 0);
        let r2 = run_once(true);
        assert_eq!(r.measurements, r2.measurements);
        assert_eq!(r.n_speculations, r2.n_speculations);
        assert_eq!(r.n_backup_wins, r2.n_backup_wins);
        // Backups that win cut the tail: the speculated run should finish
        // at least as many evaluations as the unprotected one.
        let plain = run_once(false);
        assert!(
            r.total_evals >= plain.total_evals,
            "speculation lost work: {} vs {}",
            r.total_evals,
            plain.total_evals
        );
    }

    #[test]
    fn breaker_opens_under_quarantine_storm() {
        let bench = CountingOnes::new(4, 4, 7);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut m = MethodKind::HyperTune.build(&levels, 5);
        let mut cfg = RunConfig::new(4, 1500.0, 5);
        cfg.faults = Some(FaultSpec::crashes(0.9));
        cfg.retry = RetryPolicy::none();
        cfg.breaker = Some(BreakerConfig {
            window: 10,
            open_threshold: 0.5,
            close_threshold: 0.2,
            min_samples: 5,
        });
        let r = run(m.as_mut(), &bench, &cfg);
        assert!(r.n_quarantined > 0);
        assert!(
            r.n_breaker_trips >= 1,
            "a 90% failure rate must open the breaker"
        );
    }
}
