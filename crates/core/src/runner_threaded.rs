//! Real-parallel runner: the production execution path.
//!
//! [`run`](crate::runner::run) drives methods on the *simulated* cluster
//! (virtual time, used by every experiment); this module drives the same
//! [`Method`] implementations on a genuine [`ThreadPool`] of OS threads,
//! with wall-clock timestamps. Benchmarks whose `evaluate` performs real
//! work (training a model, querying a service) run truly in parallel; the
//! scheduling logic is byte-for-byte the same as in the simulator, which
//! is the point — the paper's framework separates scheduling policy from
//! execution substrate.

use std::sync::Arc;
use std::time::Instant;

use hypertune_benchmarks::{Benchmark, Eval};
use hypertune_cluster::ThreadPool;
use hypertune_space::Config;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::history::{History, Measurement};
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome};

/// Parameters for a threaded run. Budgets are counted in evaluations
/// (wall-clock budgets belong to the caller's deployment logic).
#[derive(Debug, Clone)]
pub struct ThreadedRunConfig {
    /// Worker threads.
    pub n_workers: usize,
    /// Stop after this many completed evaluations.
    pub max_evals: usize,
    /// Master seed for the method RNG and benchmark noise.
    pub seed: u64,
    /// Discard proportion η (paper default 3).
    pub eta: usize,
}

impl ThreadedRunConfig {
    /// A config with the paper's default η = 3.
    pub fn new(n_workers: usize, max_evals: usize, seed: u64) -> Self {
        Self {
            n_workers,
            max_evals,
            seed,
            eta: 3,
        }
    }
}

/// The outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Method display name.
    pub method: String,
    /// Best validation value found.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// The best configuration.
    pub best_config: Option<Config>,
    /// Completed evaluations per level.
    pub evals_per_level: Vec<usize>,
    /// Total completed evaluations.
    pub total_evals: usize,
    /// Real elapsed time in seconds.
    pub wall_secs: f64,
    /// Every measurement in completion order (timestamps are wall-clock
    /// seconds since the run started).
    pub measurements: Vec<Measurement>,
}

/// Runs `method` against `benchmark` on `config.n_workers` OS threads.
pub fn run_threaded(
    method: &mut dyn Method,
    benchmark: Arc<dyn Benchmark>,
    config: &ThreadedRunConfig,
) -> ThreadedRunResult {
    assert!(config.n_workers > 0 && config.max_evals > 0);
    let levels = ResourceLevels::new(benchmark.max_resource(), config.eta);
    let mut history = History::new(levels.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pending: Vec<JobSpec> = Vec::new();
    let mut evals_per_level = vec![0usize; levels.k()];
    let mut measurements = Vec::new();
    let started = Instant::now();

    let bench_for_pool = Arc::clone(&benchmark);
    let seed = config.seed;
    let mut pool: ThreadPool<JobSpec, Eval> =
        ThreadPool::new(config.n_workers, move |job: &JobSpec| {
            bench_for_pool.evaluate(&job.config, job.resource, seed)
        });

    let mut completed = 0usize;
    let mut dispatched = 0usize;
    while completed < config.max_evals {
        // Fill idle workers (stop dispatching once the cap is reachable).
        while pool.idle_workers() > 0 && dispatched < config.max_evals {
            let mut ctx = MethodContext {
                space: benchmark.space(),
                levels: &levels,
                history: &history,
                pending: &pending,
                rng: &mut rng,
                n_workers: config.n_workers,
                now: started.elapsed().as_secs_f64(),
            };
            match method.next_job(&mut ctx) {
                Some(spec) => {
                    pool.submit(spec.clone()).expect("idle worker available");
                    pending.push(spec);
                    dispatched += 1;
                }
                None => {
                    assert!(
                        pool.in_flight() > 0,
                        "method {} stalled with no running evaluations",
                        method.name()
                    );
                    break;
                }
            }
        }

        let Some(done) = pool.next_completion() else {
            break;
        };
        let spec = done.job;
        let eval = done.output;
        let slot = pending
            .iter()
            .position(|p| *p == spec)
            .expect("completed job was pending");
        pending.swap_remove(slot);
        evals_per_level[spec.level] += 1;
        completed += 1;

        let m = Measurement {
            config: spec.config.clone(),
            level: spec.level,
            resource: spec.resource,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: started.elapsed().as_secs_f64(),
        };
        measurements.push(m.clone());
        history.record(m);

        let outcome = Outcome {
            spec,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: started.elapsed().as_secs_f64(),
        };
        let mut ctx = MethodContext {
            space: benchmark.space(),
            levels: &levels,
            history: &history,
            pending: &pending,
            rng: &mut rng,
            n_workers: config.n_workers,
            now: started.elapsed().as_secs_f64(),
        };
        method.on_result(&outcome, &mut ctx);
    }

    let (best_value, best_test, best_config) = match history.incumbent() {
        Some(m) => (m.value, m.test_value, Some(m.config.clone())),
        None => (f64::INFINITY, f64::INFINITY, None),
    };
    ThreadedRunResult {
        method: method.name().to_string(),
        best_value,
        best_test,
        best_config,
        total_evals: evals_per_level.iter().sum(),
        evals_per_level,
        wall_secs: started.elapsed().as_secs_f64(),
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hypertune_benchmarks::CountingOnes;

    fn threaded(
        kind: MethodKind,
        workers: usize,
        max_evals: usize,
        seed: u64,
    ) -> ThreadedRunResult {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = kind.build(&levels, seed);
        run_threaded(
            method.as_mut(),
            bench,
            &ThreadedRunConfig::new(workers, max_evals, seed),
        )
    }

    #[test]
    fn completes_exactly_max_evals() {
        let r = threaded(MethodKind::Asha, 4, 50, 1);
        assert_eq!(r.total_evals, 50);
        assert_eq!(r.evals_per_level.iter().sum::<usize>(), 50);
        assert!(r.best_value.is_finite());
        assert!(r.wall_secs >= 0.0);
    }

    #[test]
    fn async_and_sync_methods_both_run() {
        for kind in [
            MethodKind::HyperTune,
            MethodKind::Hyperband,
            MethodKind::BatchBo,
        ] {
            let r = threaded(kind, 3, 30, 2);
            assert_eq!(r.total_evals, 30, "{}", kind.name());
        }
    }

    #[test]
    fn measurements_timestamps_monotone() {
        let r = threaded(MethodKind::ARandom, 4, 40, 3);
        for w in r.measurements.windows(2) {
            assert!(w[0].finished_at <= w[1].finished_at);
        }
    }

    #[test]
    fn single_worker_matches_multi_worker_quality_roughly() {
        // Both configurations must find something decent on counting-ones
        // within the same evaluation budget (parallelism changes order,
        // not correctness).
        let a = threaded(MethodKind::Asha, 1, 60, 4);
        let b = threaded(MethodKind::Asha, 4, 60, 4);
        assert!(a.best_value <= 0.0 && b.best_value <= 0.0);
    }
}
