//! Real-parallel runner: the production execution path.
//!
//! [`run`](crate::runner::run) drives methods on the *simulated* cluster
//! (virtual time, used by every experiment); this module drives the same
//! [`Method`] implementations on a genuine [`ThreadPool`] of OS threads,
//! with wall-clock timestamps. Benchmarks whose `evaluate` performs real
//! work (training a model, querying a service) run truly in parallel; the
//! scheduling logic is byte-for-byte the same as in the simulator, which
//! is the point — the paper's framework separates scheduling policy from
//! execution substrate.
//!
//! Fault tolerance mirrors the simulator's: with
//! [`ThreadedRunConfig::faults`] set, the pool marks jobs crashed /
//! errored / corrupt (drawn deterministically in submission order) and
//! the runner applies the same bounded [`RetryPolicy`] — resubmit up to
//! `max_retries` times, then quarantine the config as a `Failed`
//! [`Outcome`]. Backoff is a virtual-time concept and does not apply
//! here: a real scheduler's requeue delay is wall-clock, which this
//! runner does not model.

use std::sync::Arc;
use std::time::Instant;

use hypertune_benchmarks::{Benchmark, Eval};
use hypertune_cluster::{FaultModel, FaultSpec, ThreadPool};
use hypertune_space::Config;
use hypertune_telemetry::{Event, TelemetryHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::diagnostics::{failure_kind, FailureCounts};
use crate::history::{History, Measurement};
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome, OutcomeStatus};
use crate::runner::RetryPolicy;

/// Parameters for a threaded run. Budgets are counted in evaluations
/// (wall-clock budgets belong to the caller's deployment logic).
#[derive(Debug, Clone)]
pub struct ThreadedRunConfig {
    /// Worker threads.
    pub n_workers: usize,
    /// Stop after this many completed evaluations.
    pub max_evals: usize,
    /// Master seed for the method RNG and benchmark noise.
    pub seed: u64,
    /// Discard proportion η (paper default 3).
    pub eta: usize,
    /// Fault injection rates, or `None` for a fault-free pool.
    pub faults: Option<FaultSpec>,
    /// Retry policy for failed jobs (backoff fields are ignored — see
    /// the module docs).
    pub retry: RetryPolicy,
    /// Telemetry pipeline; disabled by default. Events are stamped with
    /// wall seconds since the run started (this substrate has no virtual
    /// clock).
    pub telemetry: TelemetryHandle,
}

impl ThreadedRunConfig {
    /// A config with the paper's default η = 3 and no faults.
    pub fn new(n_workers: usize, max_evals: usize, seed: u64) -> Self {
        Self {
            n_workers,
            max_evals,
            seed,
            eta: 3,
            faults: None,
            retry: RetryPolicy::default_policy(),
            telemetry: TelemetryHandle::disabled(),
        }
    }
}

/// The outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Method display name.
    pub method: String,
    /// Best validation value found.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// The best configuration.
    pub best_config: Option<Config>,
    /// Completed evaluations per level.
    pub evals_per_level: Vec<usize>,
    /// Total completed evaluations.
    pub total_evals: usize,
    /// Real elapsed time in seconds.
    pub wall_secs: f64,
    /// Every measurement in completion order (timestamps are wall-clock
    /// seconds since the run started).
    pub measurements: Vec<Measurement>,
    /// Failed job attempts observed (each retry that failed counts).
    pub n_failed_attempts: usize,
    /// Resubmissions issued by the retry policy.
    pub n_retries: usize,
    /// Jobs quarantined after exhausting their retries.
    pub n_quarantined: usize,
    /// Failed attempts broken down by [`hypertune_cluster::JobStatus`]
    /// (every attempt counts, retried or quarantined).
    pub failure_counts: FailureCounts,
}

/// The pool payload: a job spec plus its retry attempt counter.
#[derive(Debug, Clone, PartialEq)]
struct ThreadedJob {
    spec: JobSpec,
    attempt: usize,
}

/// Runs `method` against `benchmark` on `config.n_workers` OS threads.
pub fn run_threaded(
    method: &mut dyn Method,
    benchmark: Arc<dyn Benchmark>,
    config: &ThreadedRunConfig,
) -> ThreadedRunResult {
    assert!(config.n_workers > 0 && config.max_evals > 0);
    let levels = ResourceLevels::new(benchmark.max_resource(), config.eta);
    let mut history = History::new(levels.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pending: Vec<JobSpec> = Vec::new();
    let mut evals_per_level = vec![0usize; levels.k()];
    let mut measurements = Vec::new();
    let started = Instant::now();

    let bench_for_pool = Arc::clone(&benchmark);
    let seed = config.seed;
    let mut pool: ThreadPool<ThreadedJob, Eval> =
        ThreadPool::new(config.n_workers, move |job: &ThreadedJob| {
            bench_for_pool.evaluate(&job.spec.config, job.spec.resource, seed)
        });
    if let Some(spec) = config.faults {
        pool = pool.with_faults(FaultModel::new(spec, config.seed ^ 0xfa17));
    }
    let telemetry = &config.telemetry;
    pool.set_telemetry(telemetry.clone());
    method.set_telemetry(telemetry.clone());

    let mut n_failed_attempts = 0usize;
    let mut n_retries = 0usize;
    let mut n_quarantined = 0usize;
    let mut failure_counts = FailureCounts::default();
    // At 100% failure rate no job ever completes and every dispatch
    // quarantines; this cap turns that pathological case into a clean
    // early exit instead of an infinite loop.
    let quarantine_cap = 10 * config.max_evals;

    let mut completed = 0usize;
    let mut dispatched = 0usize;
    while completed < config.max_evals && n_quarantined < quarantine_cap {
        // Fill idle workers (stop dispatching once the cap is reachable).
        while pool.idle_workers() > 0 && dispatched < config.max_evals {
            let mut ctx = MethodContext {
                space: benchmark.space(),
                levels: &levels,
                history: &history,
                pending: &pending,
                rng: &mut rng,
                n_workers: config.n_workers,
                now: started.elapsed().as_secs_f64(),
            };
            let next = {
                let step = telemetry.span("scheduler_step");
                let next = method.next_job(&mut ctx);
                drop(step);
                next
            };
            match next {
                Some(spec) => {
                    telemetry.emit_with(started.elapsed().as_secs_f64(), || {
                        Event::TrialDispatched {
                            level: spec.level,
                            bracket: spec.bracket,
                            attempt: 0,
                        }
                    });
                    telemetry.counter_add("trials.dispatched", 1);
                    pool.submit(ThreadedJob {
                        spec: spec.clone(),
                        attempt: 0,
                    })
                    .expect("idle worker available");
                    pending.push(spec);
                    dispatched += 1;
                }
                None => {
                    assert!(
                        pool.in_flight() > 0,
                        "method {} stalled with no running evaluations",
                        method.name()
                    );
                    break;
                }
            }
        }

        let Ok(done) = pool.next_completion() else {
            break;
        };
        let job = done.job;
        if done.status.is_failure() {
            // Corrupt results carry an output but it is untrusted and
            // discarded; every failure kind goes through the same
            // retry-or-quarantine path.
            n_failed_attempts += 1;
            failure_counts.record(done.status);
            telemetry.counter_add("trials.failed_attempts", 1);
            if job.attempt < config.retry.max_retries {
                n_retries += 1;
                telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::TrialRetried {
                    level: job.spec.level,
                    attempt: job.attempt + 1,
                    kind: failure_kind(done.status).expect("status is a failure"),
                });
                telemetry.counter_add("trials.retried", 1);
                pool.submit(ThreadedJob {
                    attempt: job.attempt + 1,
                    ..job
                })
                .expect("the failed job's worker is free");
                continue;
            }
            n_quarantined += 1;
            telemetry.emit_with(started.elapsed().as_secs_f64(), || {
                Event::TrialQuarantined {
                    level: job.spec.level,
                    bracket: job.spec.bracket,
                    kind: failure_kind(done.status).expect("status is a failure"),
                }
            });
            telemetry.counter_add("trials.quarantined", 1);
            let slot = pending
                .iter()
                .position(|p| *p == job.spec)
                .expect("quarantined job was pending");
            pending.swap_remove(slot);
            // Release the budget slot so a replacement config dispatches.
            dispatched -= 1;
            let outcome = Outcome {
                spec: job.spec,
                value: f64::INFINITY,
                test_value: f64::INFINITY,
                cost: 0.0,
                finished_at: started.elapsed().as_secs_f64(),
                status: OutcomeStatus::Failed,
                fail_status: Some(done.status),
            };
            let mut ctx = MethodContext {
                space: benchmark.space(),
                levels: &levels,
                history: &history,
                pending: &pending,
                rng: &mut rng,
                n_workers: config.n_workers,
                now: started.elapsed().as_secs_f64(),
            };
            method.on_result(&outcome, &mut ctx);
            continue;
        }
        let spec = job.spec;
        let eval = done.output.expect("successful jobs carry an output");
        let slot = pending
            .iter()
            .position(|p| *p == spec)
            .expect("completed job was pending");
        pending.swap_remove(slot);
        evals_per_level[spec.level] += 1;
        completed += 1;
        telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::TrialCompleted {
            level: spec.level,
            bracket: spec.bracket,
            value: eval.value,
            cost: eval.cost,
        });
        telemetry.counter_add("trials.completed", 1);
        telemetry.histogram_record("trial.cost", eval.cost);

        let m = Measurement {
            config: spec.config.clone(),
            level: spec.level,
            resource: spec.resource,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: started.elapsed().as_secs_f64(),
        };
        measurements.push(m.clone());
        history.record(m);

        let outcome = Outcome {
            spec,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: started.elapsed().as_secs_f64(),
            status: OutcomeStatus::Success,
            fail_status: None,
        };
        let mut ctx = MethodContext {
            space: benchmark.space(),
            levels: &levels,
            history: &history,
            rng: &mut rng,
            pending: &pending,
            n_workers: config.n_workers,
            now: started.elapsed().as_secs_f64(),
        };
        method.on_result(&outcome, &mut ctx);
    }

    telemetry.flush();
    let (best_value, best_test, best_config) = match history.incumbent() {
        Some(m) => (m.value, m.test_value, Some(m.config.clone())),
        None => (f64::INFINITY, f64::INFINITY, None),
    };
    ThreadedRunResult {
        method: method.name().to_string(),
        best_value,
        best_test,
        best_config,
        total_evals: evals_per_level.iter().sum(),
        evals_per_level,
        wall_secs: started.elapsed().as_secs_f64(),
        measurements,
        n_failed_attempts,
        n_retries,
        n_quarantined,
        failure_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hypertune_benchmarks::CountingOnes;

    fn threaded(
        kind: MethodKind,
        workers: usize,
        max_evals: usize,
        seed: u64,
    ) -> ThreadedRunResult {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = kind.build(&levels, seed);
        run_threaded(
            method.as_mut(),
            bench,
            &ThreadedRunConfig::new(workers, max_evals, seed),
        )
    }

    #[test]
    fn completes_exactly_max_evals() {
        let r = threaded(MethodKind::Asha, 4, 50, 1);
        assert_eq!(r.total_evals, 50);
        assert_eq!(r.evals_per_level.iter().sum::<usize>(), 50);
        assert!(r.best_value.is_finite());
        assert!(r.wall_secs >= 0.0);
    }

    #[test]
    fn async_and_sync_methods_both_run() {
        for kind in [
            MethodKind::HyperTune,
            MethodKind::Hyperband,
            MethodKind::BatchBo,
        ] {
            let r = threaded(kind, 3, 30, 2);
            assert_eq!(r.total_evals, 30, "{}", kind.name());
        }
    }

    #[test]
    fn measurements_timestamps_monotone() {
        let r = threaded(MethodKind::ARandom, 4, 40, 3);
        for w in r.measurements.windows(2) {
            assert!(w[0].finished_at <= w[1].finished_at);
        }
    }

    #[test]
    fn single_worker_matches_multi_worker_quality_roughly() {
        // Both configurations must find something decent on counting-ones
        // within the same evaluation budget (parallelism changes order,
        // not correctness).
        let a = threaded(MethodKind::Asha, 1, 60, 4);
        let b = threaded(MethodKind::Asha, 4, 60, 4);
        assert!(a.best_value <= 0.0 && b.best_value <= 0.0);
    }

    #[test]
    fn crash_faults_are_retried_and_run_still_completes() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 5);
        let mut cfg = ThreadedRunConfig::new(4, 40, 5);
        cfg.faults = Some(FaultSpec::crashes(0.2));
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 40, "retries must preserve the budget");
        assert!(r.n_failed_attempts > 0, "20% crash rate should fire");
        assert!(r.n_retries > 0);
        for m in &r.measurements {
            assert!(m.value.is_finite());
        }
    }

    #[test]
    fn total_failure_terminates_via_quarantine_cap() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::ARandom.build(&levels, 6);
        let mut cfg = ThreadedRunConfig::new(2, 10, 6);
        cfg.faults = Some(FaultSpec::errors(1.0));
        cfg.retry = RetryPolicy {
            max_retries: 1,
            backoff_base: 0.0,
            backoff_mult: 1.0,
        };
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 0);
        assert!(r.n_quarantined >= 10 * 10, "cap should bound the run");
        assert!(r.best_config.is_none());
    }

    #[test]
    fn corrupt_results_never_enter_history() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 7);
        let mut cfg = ThreadedRunConfig::new(4, 30, 7);
        cfg.faults = Some(FaultSpec::corrupt(0.3));
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 30);
        assert!(r.n_failed_attempts > 0, "30% corruption should fire");
        for m in &r.measurements {
            assert!(m.value.is_finite());
        }
    }
}
