//! Real-parallel runner: the production execution path.
//!
//! [`run`](crate::runner::run) drives methods on the *simulated* cluster
//! (virtual time, used by every experiment); this module drives the same
//! [`Method`] implementations on a real executor with wall-clock
//! timestamps. Both driver loops are generic over the
//! [`Executor`] trait, so one runner serves two substrates:
//! [`run_threaded`] builds a genuine [`ThreadPool`] of OS threads, and
//! [`run_distributed`] accepts an already-connected executor such as a
//! [`hypertune_cluster::TcpCluster`] of worker *processes*. Benchmarks
//! whose `evaluate` performs real work (training a model, querying a
//! service) run truly in parallel; the scheduling logic is byte-for-byte
//! the same as in the simulator, which is the point — the paper's
//! framework separates scheduling policy from execution substrate.
//!
//! # Pipelined dispatch
//!
//! Two things keep workers from idling on the surrogate here:
//!
//! 1. **Batch suggestion.** Idle workers are filled with *one*
//!    [`Method::next_jobs`] call per round, so a method that fits a
//!    surrogate pays one fit for the whole batch instead of one per
//!    worker.
//! 2. **Suggestion prefetch** ([`ThreadedRunConfig::prefetch`], on by
//!    default). The method runs on a dedicated suggestion thread that
//!    receives every completion over a FIFO channel and *speculatively*
//!    computes the batch the driver is expected to demand next, against a
//!    cloned RNG. Each speculation is tagged with the history version
//!    (total measurement count plus the pending-set fingerprint) it was
//!    computed at; a demand takes the prefetched batch only if that
//!    version still matches and the demanded batch size equals the
//!    speculated one — otherwise the batch is discarded and recomputed
//!    synchronously. Hits adopt the clone's RNG state, so the method's
//!    random stream is exactly what on-demand suggestion would have
//!    drawn: prefetch changes *when* suggestions are computed, never
//!    *what* they are. Hit/miss/discard counts surface as the
//!    `prefetch.hit` / `prefetch.miss` / `prefetch.discarded` telemetry
//!    counters, and every suggestion round runs under a `suggest_batch`
//!    span.
//!
//! Fault tolerance mirrors the simulator's: with
//! [`ThreadedRunConfig::faults`] set, the pool marks jobs crashed /
//! errored / corrupt (drawn deterministically in submission order) and
//! the runner applies the same bounded [`RetryPolicy`] — resubmit up to
//! `max_retries` times, then quarantine the config as a `Failed`
//! [`Outcome`]. Backoff is a virtual-time concept and does not apply
//! here: a real scheduler's requeue delay is wall-clock, which this
//! runner does not model.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use hypertune_benchmarks::{Benchmark, Eval};
use hypertune_cluster::{Executor, FaultModel, FaultSpec, JobStatus, MembershipPlan, ThreadPool};
use hypertune_space::{Config, ConfigSpace};
use hypertune_telemetry::{Event, TelemetryHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::breaker::{Breaker, BreakerConfig, BreakerTransition};
use crate::diagnostics::{failure_kind, FailureCounts};
use crate::history::{History, HistoryRead, Measurement};
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome, OutcomeStatus};
use crate::runner::RetryPolicy;
use crate::sampler::pending_fingerprint;
use crate::shared::{HistoryView, ShardedPending, SharedHistory};

/// Parameters for a threaded run. Budgets are counted in evaluations
/// (wall-clock budgets belong to the caller's deployment logic).
#[derive(Debug, Clone)]
pub struct ThreadedRunConfig {
    /// Worker threads.
    pub n_workers: usize,
    /// Stop after this many completed evaluations.
    pub max_evals: usize,
    /// Master seed for the method RNG and benchmark noise.
    pub seed: u64,
    /// Discard proportion η (paper default 3).
    pub eta: usize,
    /// Fault injection rates, or `None` for a fault-free pool.
    pub faults: Option<FaultSpec>,
    /// Retry policy for failed jobs (backoff fields are ignored — see
    /// the module docs).
    pub retry: RetryPolicy,
    /// Run the method on a dedicated suggestion thread and prefetch the
    /// next batch off the critical path (see the module docs). Off, the
    /// driver calls the method inline, like the simulator. Either way the
    /// suggestion stream is identical; this only moves the computation.
    pub prefetch: bool,
    /// Elastic membership plan for the pool: scheduled joins/leaves (in
    /// wall seconds since the run starts) plus stochastic worker crashes
    /// that orphan in-flight jobs until their lease expires. Orphans are
    /// requeued through the [`RetryPolicy`] once a worker frees up.
    /// Speculative re-execution is a simulator-only feature: an OS thread
    /// cannot be cancelled, so first-result-wins semantics do not
    /// translate to this substrate.
    pub membership: Option<MembershipPlan>,
    /// Quarantine-storm circuit breaker: when the recent terminal-outcome
    /// failure rate crosses the open threshold the method is degraded
    /// (random sampling, promotions paused) until the rate recovers.
    pub breaker: Option<BreakerConfig>,
    /// Telemetry pipeline; disabled by default. Events are stamped with
    /// wall seconds since the run started (this substrate has no virtual
    /// clock).
    pub telemetry: TelemetryHandle,
}

impl ThreadedRunConfig {
    /// A config with the paper's default η = 3, no faults, and prefetch
    /// enabled.
    pub fn new(n_workers: usize, max_evals: usize, seed: u64) -> Self {
        Self {
            n_workers,
            max_evals,
            seed,
            eta: 3,
            faults: None,
            retry: RetryPolicy::default_policy(),
            prefetch: true,
            membership: None,
            breaker: None,
            telemetry: TelemetryHandle::disabled(),
        }
    }
}

/// The outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Method display name.
    pub method: String,
    /// Best validation value found.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// The best configuration.
    pub best_config: Option<Config>,
    /// Completed evaluations per level.
    pub evals_per_level: Vec<usize>,
    /// Total completed evaluations.
    pub total_evals: usize,
    /// Real elapsed time in seconds.
    pub wall_secs: f64,
    /// Every measurement in completion order (timestamps are wall-clock
    /// seconds since the run started).
    pub measurements: Vec<Measurement>,
    /// Failed job attempts observed (each retry that failed counts).
    pub n_failed_attempts: usize,
    /// Resubmissions issued by the retry policy.
    pub n_retries: usize,
    /// Jobs quarantined after exhausting their retries.
    pub n_quarantined: usize,
    /// Failed attempts broken down by [`hypertune_cluster::JobStatus`]
    /// (every attempt counts, retried or quarantined).
    pub failure_counts: FailureCounts,
    /// Jobs orphaned by worker crashes whose lease expired.
    pub n_orphaned: usize,
    /// Times the circuit breaker opened.
    pub n_breaker_trips: usize,
}

/// The executor payload: a job spec plus its retry attempt counter.
///
/// Public and serde-derived because the TCP substrate ships it to worker
/// processes as the `Dispatch` frame payload; the in-process substrates
/// just move it between threads.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ThreadedJob {
    /// What to evaluate.
    pub spec: JobSpec,
    /// Retry attempt number (0 = the first dispatch).
    pub attempt: usize,
}

/// Driver → suggestion-thread protocol. Strictly FIFO: every state
/// change is sent before the demand that depends on it, so the
/// suggestion thread's view of the run always equals the driver's at the
/// moment a demand is served. The version tag on speculations (below) is
/// the belt-and-braces check that this holds.
enum ToSuggester {
    /// A job left the in-flight set. The driver has already written the
    /// outcome into the shared history/pending stores (single-writer
    /// discipline); the suggestion thread syncs its read views, notifies
    /// the method, then — when `predicted_k > 0` — speculatively computes
    /// the batch the driver is expected to demand next.
    Completed {
        outcome: Outcome,
        predicted_k: usize,
        now: f64,
    },
    /// The driver has idle workers and wants a batch of `k` jobs now.
    Demand { k: usize, now: f64 },
    /// The circuit breaker changed state: walk the degradation ladder.
    /// Any outstanding speculation was computed under the old mode and is
    /// discarded.
    SetDegraded(bool),
}

/// A batch computed ahead of demand, valid only for the exact history
/// version and batch size it was computed against.
struct Speculation {
    k: usize,
    version: (usize, u64),
    batch: Vec<JobSpec>,
    /// RNG state after drawing the batch — adopted on a hit so the
    /// method's random stream is exactly what on-demand suggestion would
    /// have produced.
    rng_after: StdRng,
}

/// The suggestion thread's state: it owns the method and the RNG, and
/// holds *read views* over the driver-written shared stores — a
/// [`HistoryView`] epoch snapshot and the last published pending
/// snapshot. The driver owns the pool and all state writes, and talks to
/// it only through [`ToSuggester`]; the views are re-synced at each
/// message, so suggestion rounds (model fits, acquisition) run entirely
/// against local buffers and never hold a lock the completion path wants.
struct Suggester<'a> {
    method: &'a mut dyn Method,
    space: &'a ConfigSpace,
    levels: &'a ResourceLevels,
    history: HistoryView,
    pending: Arc<ShardedPending>,
    pending_snap: Arc<[JobSpec]>,
    rng: StdRng,
    n_workers: usize,
    telemetry: TelemetryHandle,
    speculation: Option<Speculation>,
    /// Whether this suggester is fed by the prefetch protocol; gates the
    /// `prefetch.*` hit/miss counters so a purely inline run (or the
    /// post-fallback tail of a prefetch run) does not report misses.
    prefetching: bool,
}

impl<'a> Suggester<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        method: &'a mut dyn Method,
        space: &'a ConfigSpace,
        levels: &'a ResourceLevels,
        history: Arc<SharedHistory>,
        pending: Arc<ShardedPending>,
        config: &ThreadedRunConfig,
        telemetry: TelemetryHandle,
        prefetching: bool,
    ) -> Self {
        Self {
            method,
            space,
            levels,
            history: history.view(),
            pending_snap: pending.snapshot(),
            pending,
            rng: StdRng::seed_from_u64(config.seed),
            n_workers: config.n_workers,
            telemetry,
            speculation: None,
            prefetching,
        }
    }

    /// Brings the read views up to date with the shared stores. Called at
    /// each message boundary: the driver publishes every write *before*
    /// sending the message that depends on it (FIFO), so after a refresh
    /// the suggester's view equals the driver's state at send time.
    fn refresh(&mut self) {
        self.history.sync();
        self.pending_snap = self.pending.snapshot();
    }

    fn version(&self) -> (usize, u64) {
        (
            self.history.len(),
            pending_fingerprint(self.space, &self.pending_snap),
        )
    }

    /// Runs one suggestion round against the live RNG.
    fn compute(&mut self, k: usize, now: f64) -> Vec<JobSpec> {
        let mut ctx = MethodContext {
            space: self.space,
            levels: self.levels,
            history: &self.history,
            pending: &self.pending_snap,
            rng: &mut self.rng,
            n_workers: self.n_workers,
            now,
        };
        let span = self.telemetry.span("suggest_batch");
        let batch = self.method.next_jobs(&mut ctx, k);
        drop(span);
        batch
    }

    /// Runs one suggestion round against a *cloned* RNG and stashes the
    /// result; the clone's state is adopted only if the speculation hits.
    fn speculate(&mut self, k: usize, now: f64) {
        let version = self.version();
        let mut rng = self.rng.clone();
        let mut ctx = MethodContext {
            space: self.space,
            levels: self.levels,
            history: &self.history,
            pending: &self.pending_snap,
            rng: &mut rng,
            n_workers: self.n_workers,
            now,
        };
        let span = self.telemetry.span("suggest_batch");
        let batch = self.method.next_jobs(&mut ctx, k);
        drop(span);
        self.speculation = Some(Speculation {
            k,
            version,
            batch,
            rng_after: rng,
        });
    }

    fn on_completed(&mut self, outcome: Outcome, predicted_k: usize, now: f64) {
        // Any outstanding speculation predates this state change. The
        // driver already removed the job from pending (and recorded the
        // measurement, for successes) before sending this message.
        self.speculation = None;
        self.refresh();
        let mut ctx = MethodContext {
            space: self.space,
            levels: self.levels,
            history: &self.history,
            pending: &self.pending_snap,
            rng: &mut self.rng,
            n_workers: self.n_workers,
            now,
        };
        self.method.on_result(&outcome, &mut ctx);
        if predicted_k > 0 {
            self.speculate(predicted_k, now);
        }
    }

    /// Produces a batch. Job ids are left unassigned (0): the driver owns
    /// the id counter and the pending set, and registers the batch there
    /// before dispatching it.
    fn on_demand(&mut self, k: usize, now: f64) -> Vec<JobSpec> {
        self.refresh();
        match self.speculation.take() {
            Some(s) if s.k == k && s.version == self.version() => {
                self.telemetry.counter_add("prefetch.hit", 1);
                self.rng = s.rng_after;
                s.batch
            }
            Some(_) => {
                self.telemetry.counter_add("prefetch.discarded", 1);
                self.compute(k, now)
            }
            None => {
                if self.prefetching {
                    self.telemetry.counter_add("prefetch.miss", 1);
                }
                self.compute(k, now)
            }
        }
    }
}

/// Driver-owned shared run state: the single-writer stores plus the
/// dispatch id counter. Both drivers (and the prefetch driver's inline
/// fallback) funnel every write through here.
struct RunState {
    history: Arc<SharedHistory>,
    pending: Arc<ShardedPending>,
    next_job_id: u64,
}

impl RunState {
    fn new(levels: &ResourceLevels, telemetry: TelemetryHandle) -> Self {
        Self {
            history: Arc::new(SharedHistory::new(levels.clone(), telemetry.clone())),
            pending: Arc::new(ShardedPending::new(telemetry)),
            next_job_id: 1,
        }
    }

    /// Registers a suggested batch: assigns dispatch ids, inserts every
    /// member into the pending set, and publishes the snapshot readers
    /// will see. Call before submitting any member to the pool.
    fn register_batch(&mut self, batch: &mut [JobSpec]) {
        for job in batch.iter_mut() {
            job.id = self.next_job_id;
            self.next_job_id += 1;
            self.pending.insert(job.clone());
        }
        self.pending.publish();
    }

    /// Books a terminal completion (success or quarantine): removes the
    /// job from pending, records the measurement for successes, and
    /// publishes — all *before* the driver tells the suggester, so a
    /// refresh at the message sees exactly this state.
    fn complete(&mut self, spec: &JobSpec, measurement: Option<Measurement>) {
        self.pending.remove(spec);
        if let Some(m) = measurement {
            self.history.append(m);
        }
        self.pending.publish();
    }
}

/// Runs `method` against `benchmark` on `config.n_workers` OS threads.
pub fn run_threaded(
    method: &mut dyn Method,
    benchmark: Arc<dyn Benchmark>,
    config: &ThreadedRunConfig,
) -> ThreadedRunResult {
    assert!(config.n_workers > 0 && config.max_evals > 0);
    let levels = ResourceLevels::new(benchmark.max_resource(), config.eta);

    let bench_for_pool = Arc::clone(&benchmark);
    let seed = config.seed;
    let mut pool: ThreadPool<ThreadedJob, Eval> =
        ThreadPool::new(config.n_workers, move |job: &ThreadedJob| {
            bench_for_pool.evaluate(&job.spec.config, job.spec.resource, seed)
        });
    if let Some(spec) = config.faults {
        pool = pool.with_faults(FaultModel::new(spec, config.seed ^ 0xfa17));
    }
    if let Some(plan) = &config.membership {
        pool = pool.with_membership(plan.clone());
    }
    pool.set_telemetry(config.telemetry.clone());
    method.set_telemetry(config.telemetry.clone());

    if config.prefetch {
        drive_prefetch(method, benchmark.space(), config, &levels, pool)
    } else {
        drive_inline(method, benchmark.space(), config, &levels, pool)
    }
}

/// Runs `method` on an already-connected executor — in practice a
/// [`hypertune_cluster::TcpCluster`] of worker processes, though any
/// [`Executor`] works. The caller owns evaluation: workers must compute
/// the same function the benchmark's `evaluate` would, or the histories
/// diverge (the `hypertune-worker` binary guarantees this by building
/// its evaluator from the same benchmark registry as the driver).
///
/// [`ThreadedRunConfig::faults`] and [`ThreadedRunConfig::membership`]
/// are pool-construction knobs and do not apply here — on a real
/// cluster, faults and churn are supplied by reality.
///
/// # Panics
///
/// Panics when `config.n_workers` disagrees with the executor's actual
/// capacity: the suggester sizes batches by the config, so a mismatch
/// would silently under- or over-fill the cluster.
pub fn run_distributed<E: Executor<ThreadedJob, Eval>>(
    method: &mut dyn Method,
    space: &ConfigSpace,
    levels: &ResourceLevels,
    mut executor: E,
    config: &ThreadedRunConfig,
) -> ThreadedRunResult {
    assert!(config.max_evals > 0);
    assert_eq!(
        config.n_workers,
        executor.n_workers(),
        "config.n_workers must match the executor's capacity"
    );
    executor.set_telemetry(config.telemetry.clone());
    method.set_telemetry(config.telemetry.clone());
    if config.prefetch {
        drive_prefetch(method, space, config, levels, executor)
    } else {
        drive_inline(method, space, config, levels, executor)
    }
}

/// Accounting shared by both drivers, folded into the final result.
#[derive(Default)]
struct Tally {
    evals_per_level: Vec<usize>,
    measurements: Vec<Measurement>,
    n_failed_attempts: usize,
    n_retries: usize,
    n_quarantined: usize,
    failure_counts: FailureCounts,
    n_orphaned: usize,
    n_breaker_trips: usize,
}

impl Tally {
    fn new(levels: &ResourceLevels) -> Self {
        Self {
            evals_per_level: vec![0; levels.k()],
            ..Self::default()
        }
    }

    fn into_result(self, method: String, history: &History, wall_secs: f64) -> ThreadedRunResult {
        let (best_value, best_test, best_config) = match history.incumbent() {
            Some(m) => (m.value, m.test_value, Some(m.config.clone())),
            None => (f64::INFINITY, f64::INFINITY, None),
        };
        ThreadedRunResult {
            method,
            best_value,
            best_test,
            best_config,
            total_evals: self.evals_per_level.iter().sum(),
            evals_per_level: self.evals_per_level,
            wall_secs,
            measurements: self.measurements,
            n_failed_attempts: self.n_failed_attempts,
            n_retries: self.n_retries,
            n_quarantined: self.n_quarantined,
            failure_counts: self.failure_counts,
            n_orphaned: self.n_orphaned,
            n_breaker_trips: self.n_breaker_trips,
        }
    }
}

/// The classic driver: the method is called inline on the driver thread,
/// one batched suggestion round per fill.
fn drive_inline<E: Executor<ThreadedJob, Eval>>(
    method: &mut dyn Method,
    space: &ConfigSpace,
    config: &ThreadedRunConfig,
    levels: &ResourceLevels,
    mut pool: E,
) -> ThreadedRunResult {
    let telemetry = &config.telemetry;
    let started = Instant::now();
    let mut tally = Tally::new(levels);
    let mut breaker = config.breaker.clone().map(Breaker::new);
    let mut orphan_queue = VecDeque::new();
    let mut state = RunState::new(levels, telemetry.clone());
    let mut sg = Suggester::new(
        method,
        space,
        levels,
        Arc::clone(&state.history),
        Arc::clone(&state.pending),
        config,
        telemetry.clone(),
        false,
    );
    let mut completed = 0usize;
    let mut dispatched = 0usize;
    inline_loop(
        &mut sg,
        &mut state,
        &mut pool,
        config,
        started,
        &mut tally,
        &mut breaker,
        &mut orphan_queue,
        &mut completed,
        &mut dispatched,
    );
    telemetry.flush();
    let name = sg.method.name().to_string();
    let wall = started.elapsed().as_secs_f64();
    state.history.with(|h| tally.into_result(name, h, wall))
}

/// Submits, or parks the job in the wait queue: membership events apply
/// lazily inside `submit`, so a slot seen idle a moment ago can vanish by
/// the time the job lands.
fn submit_or_park<E: Executor<ThreadedJob, Eval>>(
    pool: &mut E,
    queue: &mut VecDeque<ThreadedJob>,
    job: ThreadedJob,
) {
    if pool.submit(job.clone()).is_err() {
        queue.push_back(job);
    }
}

/// The driver loop with the method called inline. Used by the
/// no-prefetch driver from the start, and by the prefetch driver to
/// finish a run whose suggestion thread died (`completed`/`dispatched`
/// carry across the switchover).
#[allow(clippy::too_many_arguments)]
fn inline_loop<E: Executor<ThreadedJob, Eval>>(
    sg: &mut Suggester<'_>,
    state: &mut RunState,
    pool: &mut E,
    config: &ThreadedRunConfig,
    started: Instant,
    tally: &mut Tally,
    breaker: &mut Option<Breaker>,
    orphan_queue: &mut VecDeque<ThreadedJob>,
    completed: &mut usize,
    dispatched: &mut usize,
) {
    let telemetry = &config.telemetry;
    // At 100% failure rate no job ever completes and every dispatch
    // quarantines; this cap turns that pathological case into a clean
    // early exit instead of an infinite loop.
    let quarantine_cap = 10 * config.max_evals;
    while *completed < config.max_evals && tally.n_quarantined < quarantine_cap {
        // Requeue recovered orphans first: their worker died, so they
        // wait for the next free slot rather than resubmitting in place.
        while pool.idle_workers() > 0 {
            let Some(job) = orphan_queue.pop_front() else {
                break;
            };
            if pool.submit(job.clone()).is_err() {
                orphan_queue.push_front(job);
                break;
            }
        }
        // Fill idle workers from one suggestion round (stop dispatching
        // once the cap is reachable).
        while pool.idle_workers() > 0 && *dispatched < config.max_evals {
            let k = pool.idle_workers().min(config.max_evals - *dispatched);
            let now = started.elapsed().as_secs_f64();
            let mut batch = sg.on_demand(k, now);
            if batch.is_empty() {
                assert!(
                    pool.in_flight() > 0 || !orphan_queue.is_empty(),
                    "method {} stalled with no running evaluations",
                    sg.method.name()
                );
                break;
            }
            state.register_batch(&mut batch);
            let short = batch.len() < k;
            for spec in batch {
                telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::TrialDispatched {
                    level: spec.level,
                    bracket: spec.bracket,
                    attempt: 0,
                });
                telemetry.counter_add("trials.dispatched", 1);
                submit_or_park(pool, orphan_queue, ThreadedJob { spec, attempt: 0 });
                *dispatched += 1;
            }
            if short {
                // Barrier mid-batch: wait for a completion.
                break;
            }
        }

        let done = match pool.next_completion() {
            Ok(done) => done,
            Err(_) => {
                // Quiescent with work parked and capacity restored: a
                // redialed fleet (TCP substrate) came back after every
                // in-flight job orphaned. Resume dispatching the queue
                // instead of abandoning the run.
                if !orphan_queue.is_empty() && pool.idle_workers() > 0 {
                    continue;
                }
                break;
            }
        };
        let job = done.job;
        let now = started.elapsed().as_secs_f64();
        if done.status.is_failure() {
            if handle_failure(
                done.status,
                job.spec.level,
                job.attempt,
                config,
                telemetry,
                started,
                tally,
            ) {
                let retry = ThreadedJob {
                    attempt: job.attempt + 1,
                    ..job
                };
                if done.status == JobStatus::Orphaned {
                    // The dead worker freed no slot; wait for one.
                    orphan_queue.push_back(retry);
                } else {
                    submit_or_park(pool, orphan_queue, retry);
                }
                continue;
            }
            emit_quarantine(&job.spec, done.status, telemetry, started);
            if let Some(degraded) = feed_breaker(breaker, true, telemetry, started, tally) {
                sg.method.set_degraded(degraded);
            }
            // Release the budget slot so a replacement config dispatches.
            *dispatched -= 1;
            let outcome = failed_outcome(job.spec, done.status, started);
            state.complete(&outcome.spec, None);
            sg.on_completed(outcome, 0, now);
            continue;
        }
        let spec = job.spec;
        let eval = done.output.expect("successful jobs carry an output");
        *completed += 1;
        if let Some(degraded) = feed_breaker(breaker, false, telemetry, started, tally) {
            sg.method.set_degraded(degraded);
        }
        let m = Measurement {
            config: spec.config.clone(),
            level: spec.level,
            resource: spec.resource,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: now,
        };
        let outcome = Outcome {
            spec: spec.clone(),
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: now,
            status: OutcomeStatus::Success,
            fail_status: None,
        };
        state.complete(&spec, Some(m.clone()));
        sg.on_completed(outcome, 0, now);
        book_completion(m, &spec, &eval, telemetry, tally);
    }
}

/// The pipelined driver: the method lives on a dedicated suggestion
/// thread (see the module docs). The driver only moves jobs between the
/// pool and the channels, so dispatch latency is a channel round-trip
/// when the speculation hits.
fn drive_prefetch<E: Executor<ThreadedJob, Eval>>(
    method: &mut dyn Method,
    space: &ConfigSpace,
    config: &ThreadedRunConfig,
    levels: &ResourceLevels,
    mut pool: E,
) -> ThreadedRunResult {
    let telemetry = &config.telemetry;
    let started = Instant::now();
    let method_name = method.name().to_string();
    let mut tally = Tally::new(levels);
    let mut breaker = config.breaker.clone().map(Breaker::new);
    let mut orphan_queue: VecDeque<ThreadedJob> = VecDeque::new();
    let quarantine_cap = 10 * config.max_evals;

    let (cmd_tx, cmd_rx) = mpsc::channel::<ToSuggester>();
    let (batch_tx, batch_rx) = mpsc::channel::<Vec<JobSpec>>();
    let mut state = RunState::new(levels, telemetry.clone());

    std::thread::scope(|s| {
        let suggest_telemetry = telemetry.clone();
        let sg_history = Arc::clone(&state.history);
        let sg_pending = Arc::clone(&state.pending);
        let suggester = s.spawn(move || {
            let mut sg = Suggester::new(
                method,
                space,
                levels,
                sg_history,
                sg_pending,
                config,
                suggest_telemetry,
                true,
            );
            let mut poisoned = false;
            for msg in cmd_rx {
                // The panic guard is the degradation path of satellite
                // robustness: a method that panics on this thread must
                // not take the whole run down. State mutated before the
                // panic stays as-is (best effort); the driver finishes
                // the run inline with whatever survived.
                let handled = catch_unwind(AssertUnwindSafe(|| match msg {
                    ToSuggester::Completed {
                        outcome,
                        predicted_k,
                        now,
                    } => {
                        sg.on_completed(outcome, predicted_k, now);
                        None
                    }
                    ToSuggester::Demand { k, now } => Some(sg.on_demand(k, now)),
                    ToSuggester::SetDegraded(flag) => {
                        sg.speculation = None;
                        sg.method.set_degraded(flag);
                        None
                    }
                }));
                match handled {
                    Ok(None) => {}
                    Ok(Some(batch)) => {
                        if batch_tx.send(batch).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
            (sg, poisoned)
        });

        let mut completed = 0usize;
        let mut dispatched = 0usize;
        // Set when the suggestion thread dies mid-run; the driver then
        // finishes the run inline instead of stalling. A `Completed`
        // message the channel handed back unprocessed is re-applied at
        // the switchover so the method misses at most the state the
        // panic itself destroyed.
        let mut suggester_lost = false;
        let mut undelivered: Option<ToSuggester> = None;
        'run: while completed < config.max_evals && tally.n_quarantined < quarantine_cap {
            while pool.idle_workers() > 0 {
                let Some(job) = orphan_queue.pop_front() else {
                    break;
                };
                if pool.submit(job.clone()).is_err() {
                    orphan_queue.push_front(job);
                    break;
                }
            }
            while pool.idle_workers() > 0 && dispatched < config.max_evals {
                let k = pool.idle_workers().min(config.max_evals - dispatched);
                let now = started.elapsed().as_secs_f64();
                if cmd_tx.send(ToSuggester::Demand { k, now }).is_err() {
                    suggester_lost = true;
                    break 'run;
                }
                let Ok(mut batch) = batch_rx.recv() else {
                    suggester_lost = true;
                    break 'run;
                };
                if batch.is_empty() {
                    assert!(
                        pool.in_flight() > 0 || !orphan_queue.is_empty(),
                        "method {method_name} stalled with no running evaluations"
                    );
                    break;
                }
                state.register_batch(&mut batch);
                let short = batch.len() < k;
                for spec in batch {
                    telemetry.emit_with(started.elapsed().as_secs_f64(), || {
                        Event::TrialDispatched {
                            level: spec.level,
                            bracket: spec.bracket,
                            attempt: 0,
                        }
                    });
                    telemetry.counter_add("trials.dispatched", 1);
                    submit_or_park(
                        &mut pool,
                        &mut orphan_queue,
                        ThreadedJob { spec, attempt: 0 },
                    );
                    dispatched += 1;
                }
                if short {
                    // Barrier mid-batch: wait for a completion.
                    break;
                }
            }

            let done = match pool.next_completion() {
                Ok(done) => done,
                Err(_) => {
                    // Quiescent with work parked and capacity restored: a
                    // redialed fleet (TCP substrate) came back after every
                    // in-flight job orphaned. Resume dispatching the
                    // queue instead of abandoning the run.
                    if !orphan_queue.is_empty() && pool.idle_workers() > 0 {
                        continue;
                    }
                    break;
                }
            };
            let job = done.job;
            if done.status.is_failure() {
                if handle_failure(
                    done.status,
                    job.spec.level,
                    job.attempt,
                    config,
                    telemetry,
                    started,
                    &mut tally,
                ) {
                    let retry = ThreadedJob {
                        attempt: job.attempt + 1,
                        ..job
                    };
                    if done.status == JobStatus::Orphaned {
                        // The dead worker freed no slot; wait for one.
                        orphan_queue.push_back(retry);
                    } else {
                        submit_or_park(&mut pool, &mut orphan_queue, retry);
                    }
                    continue;
                }
                emit_quarantine(&job.spec, done.status, telemetry, started);
                if let Some(degraded) =
                    feed_breaker(&mut breaker, true, telemetry, started, &mut tally)
                {
                    if cmd_tx.send(ToSuggester::SetDegraded(degraded)).is_err() {
                        suggester_lost = true;
                        break 'run;
                    }
                }
                // Release the budget slot so a replacement config
                // dispatches.
                dispatched -= 1;
                let status = done.status;
                let outcome = failed_outcome(job.spec, status, started);
                let now = outcome.finished_at;
                let predicted_k = pool.idle_workers().min(config.max_evals - dispatched);
                state.complete(&outcome.spec, None);
                if let Err(mpsc::SendError(msg)) = cmd_tx.send(ToSuggester::Completed {
                    outcome,
                    predicted_k,
                    now,
                }) {
                    undelivered = Some(msg);
                    suggester_lost = true;
                    break 'run;
                }
                continue;
            }
            let spec = job.spec;
            let eval = done.output.expect("successful jobs carry an output");
            completed += 1;
            if let Some(degraded) =
                feed_breaker(&mut breaker, false, telemetry, started, &mut tally)
            {
                if cmd_tx.send(ToSuggester::SetDegraded(degraded)).is_err() {
                    suggester_lost = true;
                    break 'run;
                }
            }
            let now = started.elapsed().as_secs_f64();
            let m = Measurement {
                config: spec.config.clone(),
                level: spec.level,
                resource: spec.resource,
                value: eval.value,
                test_value: eval.test_value,
                cost: eval.cost,
                finished_at: now,
            };
            let outcome = Outcome {
                spec: spec.clone(),
                value: eval.value,
                test_value: eval.test_value,
                cost: eval.cost,
                finished_at: now,
                status: OutcomeStatus::Success,
                fail_status: None,
            };
            // Predict the size of the next demand: the workers idle right
            // now (including the one this completion freed), capped by
            // the remaining budget. Nothing changes between here and the
            // next fill, so the prediction — and hence the speculation —
            // is normally exact.
            let predicted_k = pool.idle_workers().min(config.max_evals - dispatched);
            // Write to the shared stores, then send — the suggestion
            // thread's refresh at this message must see the new state.
            // Its on_result + speculation then overlap the driver's local
            // bookkeeping below.
            state.complete(&spec, Some(m.clone()));
            if let Err(mpsc::SendError(msg)) = cmd_tx.send(ToSuggester::Completed {
                outcome,
                predicted_k,
                now,
            }) {
                undelivered = Some(msg);
                suggester_lost = true;
                book_completion(m, &spec, &eval, telemetry, &mut tally);
                break 'run;
            }
            book_completion(m, &spec, &eval, telemetry, &mut tally);
        }

        drop(cmd_tx);
        let (mut sg, poisoned) = suggester
            .join()
            .expect("suggestion thread died outside its panic guard");
        if suggester_lost && completed < config.max_evals && tally.n_quarantined < quarantine_cap {
            // Graceful degradation (satellite robustness): the prefetch
            // pipeline is gone — finish the run with inline suggestion on
            // the driver thread instead of stalling or crashing.
            if poisoned {
                telemetry.counter_add("prefetch.suggester_panics", 1);
            }
            telemetry.counter_add("prefetch.fallback_inline", 1);
            sg.prefetching = false;
            sg.speculation = None;
            if let Some(msg) = undelivered.take() {
                match msg {
                    // The driver's shared-store writes for this completion
                    // already happened; only the method notification was
                    // lost. Re-apply it (the suggester refreshes its views
                    // inside on_completed).
                    ToSuggester::Completed { outcome, now, .. } => sg.on_completed(outcome, 0, now),
                    ToSuggester::SetDegraded(flag) => sg.method.set_degraded(flag),
                    ToSuggester::Demand { .. } => {}
                }
            }
            inline_loop(
                &mut sg,
                &mut state,
                &mut pool,
                config,
                started,
                &mut tally,
                &mut breaker,
                &mut orphan_queue,
                &mut completed,
                &mut dispatched,
            );
        }
    });

    telemetry.flush();
    let wall = started.elapsed().as_secs_f64();
    state
        .history
        .with(|h| tally.into_result(method_name, h, wall))
}

/// Books a failed attempt; returns `true` when the job should be
/// resubmitted (the caller owns the actual resubmission).
fn handle_failure(
    status: hypertune_cluster::JobStatus,
    level: usize,
    attempt: usize,
    config: &ThreadedRunConfig,
    telemetry: &TelemetryHandle,
    started: Instant,
    tally: &mut Tally,
) -> bool {
    // Corrupt results carry an output but it is untrusted and discarded;
    // every failure kind goes through the same retry-or-quarantine path.
    tally.n_failed_attempts += 1;
    tally.failure_counts.record(status);
    telemetry.counter_add("trials.failed_attempts", 1);
    if status == JobStatus::Orphaned {
        tally.n_orphaned += 1;
        telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::LeaseExpired {
            level,
            attempt,
        });
        telemetry.counter_add("trials.orphaned", 1);
    }
    if attempt < config.retry.max_retries {
        tally.n_retries += 1;
        telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::TrialRetried {
            level,
            attempt: attempt + 1,
            kind: failure_kind(status).expect("status is a failure"),
        });
        telemetry.counter_add("trials.retried", 1);
        return true;
    }
    tally.n_quarantined += 1;
    false
}

/// Feeds one terminal trial outcome (`failed` = quarantined) to the
/// breaker; returns the new degraded flag on a transition — the two
/// drivers deliver `set_degraded` to the method differently.
fn feed_breaker(
    breaker: &mut Option<Breaker>,
    failed: bool,
    telemetry: &TelemetryHandle,
    started: Instant,
    tally: &mut Tally,
) -> Option<bool> {
    let br = breaker.as_mut()?;
    match br.record(failed)? {
        BreakerTransition::Opened(failure_rate) => {
            tally.n_breaker_trips += 1;
            telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::BreakerOpened {
                failure_rate,
            });
            telemetry.counter_add("breaker.opened", 1);
            Some(true)
        }
        BreakerTransition::Closed => {
            telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::BreakerClosed);
            Some(false)
        }
    }
}

fn emit_quarantine(
    spec: &JobSpec,
    status: hypertune_cluster::JobStatus,
    telemetry: &TelemetryHandle,
    started: Instant,
) {
    telemetry.emit_with(started.elapsed().as_secs_f64(), || {
        Event::TrialQuarantined {
            level: spec.level,
            bracket: spec.bracket,
            kind: failure_kind(status).expect("status is a failure"),
        }
    });
    telemetry.counter_add("trials.quarantined", 1);
}

fn failed_outcome(
    spec: JobSpec,
    status: hypertune_cluster::JobStatus,
    started: Instant,
) -> Outcome {
    Outcome {
        spec,
        value: f64::INFINITY,
        test_value: f64::INFINITY,
        cost: 0.0,
        finished_at: started.elapsed().as_secs_f64(),
        status: OutcomeStatus::Failed,
        fail_status: Some(status),
    }
}

/// Books a successful completion into the tally (shared tail of both
/// drivers).
fn book_completion(
    m: Measurement,
    spec: &JobSpec,
    eval: &Eval,
    telemetry: &TelemetryHandle,
    tally: &mut Tally,
) {
    tally.evals_per_level[spec.level] += 1;
    telemetry.emit_with(m.finished_at, || Event::TrialCompleted {
        level: spec.level,
        bracket: spec.bracket,
        value: eval.value,
        cost: eval.cost,
    });
    telemetry.counter_add("trials.completed", 1);
    telemetry.histogram_record("trial.cost", eval.cost);
    tally.measurements.push(m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hypertune_benchmarks::CountingOnes;
    use hypertune_telemetry::Telemetry;

    fn threaded(
        kind: MethodKind,
        workers: usize,
        max_evals: usize,
        seed: u64,
    ) -> ThreadedRunResult {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = kind.build(&levels, seed);
        run_threaded(
            method.as_mut(),
            bench,
            &ThreadedRunConfig::new(workers, max_evals, seed),
        )
    }

    /// The parallelism-insensitive fingerprint of a measurement stream:
    /// everything but the wall-clock timestamp.
    fn keys(r: &ThreadedRunResult) -> Vec<(Config, usize, u64, u64, u64, u64)> {
        r.measurements
            .iter()
            .map(|m| {
                (
                    m.config.clone(),
                    m.level,
                    m.resource.to_bits(),
                    m.value.to_bits(),
                    m.test_value.to_bits(),
                    m.cost.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn completes_exactly_max_evals() {
        let r = threaded(MethodKind::Asha, 4, 50, 1);
        assert_eq!(r.total_evals, 50);
        assert_eq!(r.evals_per_level.iter().sum::<usize>(), 50);
        assert!(r.best_value.is_finite());
        assert!(r.wall_secs >= 0.0);
    }

    #[test]
    fn inline_driver_completes_exactly_max_evals() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 1);
        let mut cfg = ThreadedRunConfig::new(4, 50, 1);
        cfg.prefetch = false;
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 50);
        assert!(r.best_value.is_finite());
    }

    #[test]
    fn async_and_sync_methods_both_run() {
        for kind in [
            MethodKind::HyperTune,
            MethodKind::Hyperband,
            MethodKind::BatchBo,
        ] {
            let r = threaded(kind, 3, 30, 2);
            assert_eq!(r.total_evals, 30, "{}", kind.name());
        }
    }

    #[test]
    fn measurements_timestamps_monotone() {
        let r = threaded(MethodKind::ARandom, 4, 40, 3);
        for w in r.measurements.windows(2) {
            assert!(w[0].finished_at <= w[1].finished_at);
        }
    }

    #[test]
    fn single_worker_matches_multi_worker_quality_roughly() {
        // Both configurations must find something decent on counting-ones
        // within the same evaluation budget (parallelism changes order,
        // not correctness).
        let a = threaded(MethodKind::Asha, 1, 60, 4);
        let b = threaded(MethodKind::Asha, 4, 60, 4);
        assert!(a.best_value <= 0.0 && b.best_value <= 0.0);
    }

    #[test]
    fn prefetch_matches_inline_driver_at_one_worker() {
        // With a single worker the completion order is deterministic, so
        // the pipelined and inline drivers must produce the same
        // measurement stream bit-for-bit (modulo wall timestamps): the
        // speculation protocol moves suggestion work, never changes it.
        for kind in [MethodKind::HyperTune, MethodKind::Bohb, MethodKind::Asha] {
            let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
            let levels = ResourceLevels::new(bench.max_resource(), 3);

            let mut m1 = kind.build(&levels, 9);
            let mut cfg = ThreadedRunConfig::new(1, 30, 9);
            cfg.prefetch = false;
            let inline = run_threaded(m1.as_mut(), Arc::clone(&bench), &cfg);

            let mut m2 = kind.build(&levels, 9);
            cfg.prefetch = true;
            let prefetched = run_threaded(m2.as_mut(), bench, &cfg);

            assert_eq!(keys(&inline), keys(&prefetched), "{}", kind.name());
            assert_eq!(
                inline.best_value.to_bits(),
                prefetched.best_value.to_bits(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn prefetch_hits_are_recorded() {
        // After the cold start, every completion's speculation should be
        // consumed by the following demand: hits dominate, and the
        // discard path stays a safety valve.
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::HyperTune.build(&levels, 12);
        let mut cfg = ThreadedRunConfig::new(4, 40, 12);
        cfg.telemetry = Telemetry::new().build();
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 40);
        let snap = cfg.telemetry.snapshot().unwrap();
        let hits = snap.counter("prefetch.hit").unwrap_or(0);
        let misses = snap.counter("prefetch.miss").unwrap_or(0);
        assert!(hits > 0, "prefetch never hit (misses: {misses})");
    }

    #[test]
    fn crash_faults_are_retried_and_run_still_completes() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 5);
        let mut cfg = ThreadedRunConfig::new(4, 40, 5);
        cfg.faults = Some(FaultSpec::crashes(0.2));
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 40, "retries must preserve the budget");
        assert!(r.n_failed_attempts > 0, "20% crash rate should fire");
        assert!(r.n_retries > 0);
        for m in &r.measurements {
            assert!(m.value.is_finite());
        }
    }

    #[test]
    fn total_failure_terminates_via_quarantine_cap() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::ARandom.build(&levels, 6);
        let mut cfg = ThreadedRunConfig::new(2, 10, 6);
        cfg.faults = Some(FaultSpec::errors(1.0));
        cfg.retry = RetryPolicy {
            max_retries: 1,
            backoff_base: 0.0,
            backoff_mult: 1.0,
        };
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 0);
        assert!(r.n_quarantined >= 10 * 10, "cap should bound the run");
        assert!(r.best_config.is_none());
    }

    /// A method that panics exactly once inside `next_jobs` (on the
    /// `panic_at`-th suggestion round), then behaves normally — the
    /// poisoned-suggester regression harness.
    struct PanicOnce {
        inner: Box<dyn Method>,
        calls: usize,
        panic_at: usize,
        fired: bool,
    }

    impl Method for PanicOnce {
        fn name(&self) -> &str {
            "PanicOnce"
        }

        fn next_job(&mut self, ctx: &mut MethodContext<'_>) -> Option<JobSpec> {
            self.inner.next_job(ctx)
        }

        fn next_jobs(&mut self, ctx: &mut MethodContext<'_>, k: usize) -> Vec<JobSpec> {
            self.calls += 1;
            if !self.fired && self.calls == self.panic_at {
                self.fired = true;
                panic!("injected suggester panic");
            }
            self.inner.next_jobs(ctx, k)
        }

        fn on_result(&mut self, outcome: &Outcome, ctx: &mut MethodContext<'_>) {
            self.inner.on_result(outcome, ctx);
        }
    }

    #[test]
    fn poisoned_suggester_falls_back_inline_and_completes() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = PanicOnce {
            inner: MethodKind::Asha.build(&levels, 8),
            calls: 0,
            panic_at: 3,
            fired: false,
        };
        let mut cfg = ThreadedRunConfig::new(4, 40, 8);
        cfg.telemetry = Telemetry::new().build();
        let r = run_threaded(&mut method, bench, &cfg);
        assert_eq!(r.total_evals, 40, "run must complete despite the panic");
        let snap = cfg.telemetry.snapshot().unwrap();
        assert_eq!(snap.counter("prefetch.fallback_inline"), Some(1));
        assert_eq!(snap.counter("prefetch.suggester_panics"), Some(1));
    }

    #[test]
    fn worker_churn_run_completes_with_orphan_recovery() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 9);
        let mut cfg = ThreadedRunConfig::new(4, 40, 9);
        // Crash 15% of dispatches; leases expire after 50 ms and crashed
        // workers rejoin after 20 ms, so the pool heals continuously.
        cfg.membership =
            Some(MembershipPlan::worker_crashes(0.15, Some(0.02), 9).with_lease_timeout(0.05));
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 40, "churn must not lose budget");
        assert!(r.n_orphaned > 0, "15% crash rate should orphan jobs");
        assert_eq!(r.failure_counts.orphaned, r.n_orphaned);
        for m in &r.measurements {
            assert!(m.value.is_finite(), "orphans must never enter history");
        }
    }

    #[test]
    fn breaker_trips_under_failure_storm() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::HyperTune.build(&levels, 10);
        let mut cfg = ThreadedRunConfig::new(4, 10, 10);
        cfg.faults = Some(FaultSpec::errors(0.8));
        cfg.retry = RetryPolicy::none();
        cfg.breaker = Some(BreakerConfig {
            window: 10,
            open_threshold: 0.5,
            close_threshold: 0.2,
            min_samples: 5,
        });
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert!(
            r.n_breaker_trips >= 1,
            "an 80% failure rate must trip the breaker"
        );
    }

    #[test]
    fn static_membership_plan_matches_plain_run() {
        for prefetch in [false, true] {
            let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
            let levels = ResourceLevels::new(bench.max_resource(), 3);
            let mut m1 = MethodKind::Asha.build(&levels, 11);
            let mut cfg = ThreadedRunConfig::new(1, 30, 11);
            cfg.prefetch = prefetch;
            let plain = run_threaded(m1.as_mut(), Arc::clone(&bench), &cfg);

            let mut m2 = MethodKind::Asha.build(&levels, 11);
            let mut cfg2 = cfg.clone();
            cfg2.membership = Some(MembershipPlan::static_plan());
            cfg2.breaker = Some(BreakerConfig::default());
            let elastic = run_threaded(m2.as_mut(), bench, &cfg2);

            assert_eq!(keys(&plain), keys(&elastic), "prefetch={prefetch}");
            assert_eq!(elastic.n_orphaned, 0);
            assert_eq!(elastic.n_breaker_trips, 0);
        }
    }

    #[test]
    fn corrupt_results_never_enter_history() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 7);
        let mut cfg = ThreadedRunConfig::new(4, 30, 7);
        cfg.faults = Some(FaultSpec::corrupt(0.3));
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 30);
        assert!(r.n_failed_attempts > 0, "30% corruption should fire");
        for m in &r.measurements {
            assert!(m.value.is_finite());
        }
    }
}
