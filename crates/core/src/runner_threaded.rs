//! Real-parallel runner: the production execution path.
//!
//! [`run`](crate::runner::run) drives methods on the *simulated* cluster
//! (virtual time, used by every experiment); this module drives the same
//! [`Method`] implementations on a genuine [`ThreadPool`] of OS threads,
//! with wall-clock timestamps. Benchmarks whose `evaluate` performs real
//! work (training a model, querying a service) run truly in parallel; the
//! scheduling logic is byte-for-byte the same as in the simulator, which
//! is the point — the paper's framework separates scheduling policy from
//! execution substrate.
//!
//! # Pipelined dispatch
//!
//! Two things keep workers from idling on the surrogate here:
//!
//! 1. **Batch suggestion.** Idle workers are filled with *one*
//!    [`Method::next_jobs`] call per round, so a method that fits a
//!    surrogate pays one fit for the whole batch instead of one per
//!    worker.
//! 2. **Suggestion prefetch** ([`ThreadedRunConfig::prefetch`], on by
//!    default). The method runs on a dedicated suggestion thread that
//!    receives every completion over a FIFO channel and *speculatively*
//!    computes the batch the driver is expected to demand next, against a
//!    cloned RNG. Each speculation is tagged with the history version
//!    (total measurement count plus the pending-set fingerprint) it was
//!    computed at; a demand takes the prefetched batch only if that
//!    version still matches and the demanded batch size equals the
//!    speculated one — otherwise the batch is discarded and recomputed
//!    synchronously. Hits adopt the clone's RNG state, so the method's
//!    random stream is exactly what on-demand suggestion would have
//!    drawn: prefetch changes *when* suggestions are computed, never
//!    *what* they are. Hit/miss/discard counts surface as the
//!    `prefetch.hit` / `prefetch.miss` / `prefetch.discarded` telemetry
//!    counters, and every suggestion round runs under a `suggest_batch`
//!    span.
//!
//! Fault tolerance mirrors the simulator's: with
//! [`ThreadedRunConfig::faults`] set, the pool marks jobs crashed /
//! errored / corrupt (drawn deterministically in submission order) and
//! the runner applies the same bounded [`RetryPolicy`] — resubmit up to
//! `max_retries` times, then quarantine the config as a `Failed`
//! [`Outcome`]. Backoff is a virtual-time concept and does not apply
//! here: a real scheduler's requeue delay is wall-clock, which this
//! runner does not model.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use hypertune_benchmarks::{Benchmark, Eval};
use hypertune_cluster::{FaultModel, FaultSpec, ThreadPool};
use hypertune_space::{Config, ConfigSpace};
use hypertune_telemetry::{Event, TelemetryHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::diagnostics::{failure_kind, FailureCounts};
use crate::history::{History, Measurement};
use crate::levels::ResourceLevels;
use crate::method::{JobSpec, Method, MethodContext, Outcome, OutcomeStatus};
use crate::pending::PendingSet;
use crate::runner::RetryPolicy;
use crate::sampler::pending_fingerprint;

/// Parameters for a threaded run. Budgets are counted in evaluations
/// (wall-clock budgets belong to the caller's deployment logic).
#[derive(Debug, Clone)]
pub struct ThreadedRunConfig {
    /// Worker threads.
    pub n_workers: usize,
    /// Stop after this many completed evaluations.
    pub max_evals: usize,
    /// Master seed for the method RNG and benchmark noise.
    pub seed: u64,
    /// Discard proportion η (paper default 3).
    pub eta: usize,
    /// Fault injection rates, or `None` for a fault-free pool.
    pub faults: Option<FaultSpec>,
    /// Retry policy for failed jobs (backoff fields are ignored — see
    /// the module docs).
    pub retry: RetryPolicy,
    /// Run the method on a dedicated suggestion thread and prefetch the
    /// next batch off the critical path (see the module docs). Off, the
    /// driver calls the method inline, like the simulator. Either way the
    /// suggestion stream is identical; this only moves the computation.
    pub prefetch: bool,
    /// Telemetry pipeline; disabled by default. Events are stamped with
    /// wall seconds since the run started (this substrate has no virtual
    /// clock).
    pub telemetry: TelemetryHandle,
}

impl ThreadedRunConfig {
    /// A config with the paper's default η = 3, no faults, and prefetch
    /// enabled.
    pub fn new(n_workers: usize, max_evals: usize, seed: u64) -> Self {
        Self {
            n_workers,
            max_evals,
            seed,
            eta: 3,
            faults: None,
            retry: RetryPolicy::default_policy(),
            prefetch: true,
            telemetry: TelemetryHandle::disabled(),
        }
    }
}

/// The outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Method display name.
    pub method: String,
    /// Best validation value found.
    pub best_value: f64,
    /// Test value of the best configuration.
    pub best_test: f64,
    /// The best configuration.
    pub best_config: Option<Config>,
    /// Completed evaluations per level.
    pub evals_per_level: Vec<usize>,
    /// Total completed evaluations.
    pub total_evals: usize,
    /// Real elapsed time in seconds.
    pub wall_secs: f64,
    /// Every measurement in completion order (timestamps are wall-clock
    /// seconds since the run started).
    pub measurements: Vec<Measurement>,
    /// Failed job attempts observed (each retry that failed counts).
    pub n_failed_attempts: usize,
    /// Resubmissions issued by the retry policy.
    pub n_retries: usize,
    /// Jobs quarantined after exhausting their retries.
    pub n_quarantined: usize,
    /// Failed attempts broken down by [`hypertune_cluster::JobStatus`]
    /// (every attempt counts, retried or quarantined).
    pub failure_counts: FailureCounts,
}

/// The pool payload: a job spec plus its retry attempt counter.
#[derive(Debug, Clone)]
struct ThreadedJob {
    spec: JobSpec,
    attempt: usize,
}

/// Driver → suggestion-thread protocol. Strictly FIFO: every state
/// change is sent before the demand that depends on it, so the
/// suggestion thread's view of the run always equals the driver's at the
/// moment a demand is served. The version tag on speculations (below) is
/// the belt-and-braces check that this holds.
enum ToSuggester {
    /// A job left the in-flight set. Apply the outcome (and the
    /// measurement, for successes), then — when `predicted_k > 0` —
    /// speculatively compute the batch the driver is expected to demand
    /// next.
    Completed {
        outcome: Outcome,
        measurement: Option<Measurement>,
        predicted_k: usize,
        now: f64,
    },
    /// The driver has idle workers and wants a batch of `k` jobs now.
    Demand { k: usize, now: f64 },
}

/// A batch computed ahead of demand, valid only for the exact history
/// version and batch size it was computed against.
struct Speculation {
    k: usize,
    version: (usize, u64),
    batch: Vec<JobSpec>,
    /// RNG state after drawing the batch — adopted on a hit so the
    /// method's random stream is exactly what on-demand suggestion would
    /// have produced.
    rng_after: StdRng,
}

/// The suggestion thread's state: it owns the method, the history, the
/// pending mirror, and the RNG; the driver owns the pool and talks to it
/// only through [`ToSuggester`].
struct Suggester<'a> {
    method: &'a mut dyn Method,
    space: &'a ConfigSpace,
    levels: &'a ResourceLevels,
    history: History,
    pending: PendingSet,
    rng: StdRng,
    n_workers: usize,
    telemetry: TelemetryHandle,
    next_job_id: u64,
    speculation: Option<Speculation>,
}

impl Suggester<'_> {
    fn version(&self) -> (usize, u64) {
        (
            self.history.len(),
            pending_fingerprint(self.space, self.pending.as_slice()),
        )
    }

    /// Runs one suggestion round against the live RNG.
    fn compute(&mut self, k: usize, now: f64) -> Vec<JobSpec> {
        let mut ctx = MethodContext {
            space: self.space,
            levels: self.levels,
            history: &self.history,
            pending: self.pending.as_slice(),
            rng: &mut self.rng,
            n_workers: self.n_workers,
            now,
        };
        let span = self.telemetry.span("suggest_batch");
        let batch = self.method.next_jobs(&mut ctx, k);
        drop(span);
        batch
    }

    /// Runs one suggestion round against a *cloned* RNG and stashes the
    /// result; the clone's state is adopted only if the speculation hits.
    fn speculate(&mut self, k: usize, now: f64) {
        let version = self.version();
        let mut rng = self.rng.clone();
        let mut ctx = MethodContext {
            space: self.space,
            levels: self.levels,
            history: &self.history,
            pending: self.pending.as_slice(),
            rng: &mut rng,
            n_workers: self.n_workers,
            now,
        };
        let span = self.telemetry.span("suggest_batch");
        let batch = self.method.next_jobs(&mut ctx, k);
        drop(span);
        self.speculation = Some(Speculation {
            k,
            version,
            batch,
            rng_after: rng,
        });
    }

    fn on_completed(
        &mut self,
        outcome: Outcome,
        measurement: Option<Measurement>,
        predicted_k: usize,
        now: f64,
    ) {
        // Any outstanding speculation predates this state change.
        self.speculation = None;
        self.pending.remove(&outcome.spec);
        if let Some(m) = measurement {
            self.history.record(m);
        }
        let mut ctx = MethodContext {
            space: self.space,
            levels: self.levels,
            history: &self.history,
            pending: self.pending.as_slice(),
            rng: &mut self.rng,
            n_workers: self.n_workers,
            now,
        };
        self.method.on_result(&outcome, &mut ctx);
        if predicted_k > 0 {
            self.speculate(predicted_k, now);
        }
    }

    fn on_demand(&mut self, k: usize, now: f64) -> Vec<JobSpec> {
        let mut batch = match self.speculation.take() {
            Some(s) if s.k == k && s.version == self.version() => {
                self.telemetry.counter_add("prefetch.hit", 1);
                self.rng = s.rng_after;
                s.batch
            }
            Some(_) => {
                self.telemetry.counter_add("prefetch.discarded", 1);
                self.compute(k, now)
            }
            None => {
                self.telemetry.counter_add("prefetch.miss", 1);
                self.compute(k, now)
            }
        };
        for job in &mut batch {
            job.id = self.next_job_id;
            self.next_job_id += 1;
            self.pending.insert(job.clone());
        }
        batch
    }
}

/// Runs `method` against `benchmark` on `config.n_workers` OS threads.
pub fn run_threaded(
    method: &mut dyn Method,
    benchmark: Arc<dyn Benchmark>,
    config: &ThreadedRunConfig,
) -> ThreadedRunResult {
    assert!(config.n_workers > 0 && config.max_evals > 0);
    let levels = ResourceLevels::new(benchmark.max_resource(), config.eta);

    let bench_for_pool = Arc::clone(&benchmark);
    let seed = config.seed;
    let mut pool: ThreadPool<ThreadedJob, Eval> =
        ThreadPool::new(config.n_workers, move |job: &ThreadedJob| {
            bench_for_pool.evaluate(&job.spec.config, job.spec.resource, seed)
        });
    if let Some(spec) = config.faults {
        pool = pool.with_faults(FaultModel::new(spec, config.seed ^ 0xfa17));
    }
    pool.set_telemetry(config.telemetry.clone());
    method.set_telemetry(config.telemetry.clone());

    if config.prefetch {
        drive_prefetch(method, &benchmark, config, &levels, pool)
    } else {
        drive_inline(method, &benchmark, config, &levels, pool)
    }
}

/// Accounting shared by both drivers, folded into the final result.
#[derive(Default)]
struct Tally {
    evals_per_level: Vec<usize>,
    measurements: Vec<Measurement>,
    n_failed_attempts: usize,
    n_retries: usize,
    n_quarantined: usize,
    failure_counts: FailureCounts,
}

impl Tally {
    fn new(levels: &ResourceLevels) -> Self {
        Self {
            evals_per_level: vec![0; levels.k()],
            ..Self::default()
        }
    }

    fn into_result(self, method: String, history: &History, wall_secs: f64) -> ThreadedRunResult {
        let (best_value, best_test, best_config) = match history.incumbent() {
            Some(m) => (m.value, m.test_value, Some(m.config.clone())),
            None => (f64::INFINITY, f64::INFINITY, None),
        };
        ThreadedRunResult {
            method,
            best_value,
            best_test,
            best_config,
            total_evals: self.evals_per_level.iter().sum(),
            evals_per_level: self.evals_per_level,
            wall_secs,
            measurements: self.measurements,
            n_failed_attempts: self.n_failed_attempts,
            n_retries: self.n_retries,
            n_quarantined: self.n_quarantined,
            failure_counts: self.failure_counts,
        }
    }
}

/// The classic driver: the method is called inline on the driver thread,
/// one batched suggestion round per fill.
fn drive_inline(
    method: &mut dyn Method,
    benchmark: &Arc<dyn Benchmark>,
    config: &ThreadedRunConfig,
    levels: &ResourceLevels,
    mut pool: ThreadPool<ThreadedJob, Eval>,
) -> ThreadedRunResult {
    let telemetry = &config.telemetry;
    let started = Instant::now();
    let mut history = History::new(levels.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pending = PendingSet::new();
    let mut next_job_id: u64 = 1;
    let mut tally = Tally::new(levels);
    // At 100% failure rate no job ever completes and every dispatch
    // quarantines; this cap turns that pathological case into a clean
    // early exit instead of an infinite loop.
    let quarantine_cap = 10 * config.max_evals;

    let mut completed = 0usize;
    let mut dispatched = 0usize;
    while completed < config.max_evals && tally.n_quarantined < quarantine_cap {
        // Fill idle workers from one suggestion round (stop dispatching
        // once the cap is reachable).
        while pool.idle_workers() > 0 && dispatched < config.max_evals {
            let k = pool.idle_workers().min(config.max_evals - dispatched);
            let mut ctx = MethodContext {
                space: benchmark.space(),
                levels,
                history: &history,
                pending: pending.as_slice(),
                rng: &mut rng,
                n_workers: config.n_workers,
                now: started.elapsed().as_secs_f64(),
            };
            let batch = {
                let span = telemetry.span("suggest_batch");
                let batch = method.next_jobs(&mut ctx, k);
                drop(span);
                batch
            };
            if batch.is_empty() {
                assert!(
                    pool.in_flight() > 0,
                    "method {} stalled with no running evaluations",
                    method.name()
                );
                break;
            }
            let short = batch.len() < k;
            for mut spec in batch {
                spec.id = next_job_id;
                next_job_id += 1;
                telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::TrialDispatched {
                    level: spec.level,
                    bracket: spec.bracket,
                    attempt: 0,
                });
                telemetry.counter_add("trials.dispatched", 1);
                pool.submit(ThreadedJob {
                    spec: spec.clone(),
                    attempt: 0,
                })
                .expect("idle worker available");
                pending.insert(spec);
                dispatched += 1;
            }
            if short {
                // Barrier mid-batch: wait for a completion.
                break;
            }
        }

        let Ok(done) = pool.next_completion() else {
            break;
        };
        let job = done.job;
        if done.status.is_failure() {
            if handle_failure(
                done.status,
                job.spec.level,
                job.attempt,
                config,
                telemetry,
                started,
                &mut tally,
            ) {
                pool.submit(ThreadedJob {
                    attempt: job.attempt + 1,
                    ..job
                })
                .expect("the failed job's worker is free");
                continue;
            }
            emit_quarantine(&job.spec, done.status, telemetry, started);
            pending.remove(&job.spec);
            // Release the budget slot so a replacement config dispatches.
            dispatched -= 1;
            let outcome = failed_outcome(job.spec, done.status, started);
            let mut ctx = MethodContext {
                space: benchmark.space(),
                levels,
                history: &history,
                pending: pending.as_slice(),
                rng: &mut rng,
                n_workers: config.n_workers,
                now: started.elapsed().as_secs_f64(),
            };
            method.on_result(&outcome, &mut ctx);
            continue;
        }
        let spec = job.spec;
        let eval = done.output.expect("successful jobs carry an output");
        pending.remove(&spec);
        completed += 1;
        let now = started.elapsed().as_secs_f64();
        let m = Measurement {
            config: spec.config.clone(),
            level: spec.level,
            resource: spec.resource,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: now,
        };
        history.record(m.clone());
        book_completion(m, &spec, &eval, telemetry, &mut tally);

        let outcome = Outcome {
            spec,
            value: eval.value,
            test_value: eval.test_value,
            cost: eval.cost,
            finished_at: now,
            status: OutcomeStatus::Success,
            fail_status: None,
        };
        let mut ctx = MethodContext {
            space: benchmark.space(),
            levels,
            history: &history,
            pending: pending.as_slice(),
            rng: &mut rng,
            n_workers: config.n_workers,
            now: started.elapsed().as_secs_f64(),
        };
        method.on_result(&outcome, &mut ctx);
    }

    telemetry.flush();
    tally.into_result(
        method.name().to_string(),
        &history,
        started.elapsed().as_secs_f64(),
    )
}

/// The pipelined driver: the method lives on a dedicated suggestion
/// thread (see the module docs). The driver only moves jobs between the
/// pool and the channels, so dispatch latency is a channel round-trip
/// when the speculation hits.
fn drive_prefetch(
    method: &mut dyn Method,
    benchmark: &Arc<dyn Benchmark>,
    config: &ThreadedRunConfig,
    levels: &ResourceLevels,
    mut pool: ThreadPool<ThreadedJob, Eval>,
) -> ThreadedRunResult {
    let telemetry = &config.telemetry;
    let started = Instant::now();
    let method_name = method.name().to_string();
    let mut tally = Tally::new(levels);
    let quarantine_cap = 10 * config.max_evals;

    let (cmd_tx, cmd_rx) = mpsc::channel::<ToSuggester>();
    let (batch_tx, batch_rx) = mpsc::channel::<Vec<JobSpec>>();

    let history = std::thread::scope(|s| {
        let space = benchmark.space();
        let suggest_telemetry = telemetry.clone();
        let suggester = s.spawn(move || {
            let mut sg = Suggester {
                method,
                space,
                levels,
                history: History::new(levels.clone()),
                pending: PendingSet::new(),
                rng: StdRng::seed_from_u64(config.seed),
                n_workers: config.n_workers,
                telemetry: suggest_telemetry,
                next_job_id: 1,
                speculation: None,
            };
            for msg in cmd_rx {
                match msg {
                    ToSuggester::Completed {
                        outcome,
                        measurement,
                        predicted_k,
                        now,
                    } => sg.on_completed(outcome, measurement, predicted_k, now),
                    ToSuggester::Demand { k, now } => {
                        let batch = sg.on_demand(k, now);
                        if batch_tx.send(batch).is_err() {
                            break;
                        }
                    }
                }
            }
            sg.history
        });

        let mut completed = 0usize;
        let mut dispatched = 0usize;
        'run: while completed < config.max_evals && tally.n_quarantined < quarantine_cap {
            while pool.idle_workers() > 0 && dispatched < config.max_evals {
                let k = pool.idle_workers().min(config.max_evals - dispatched);
                let now = started.elapsed().as_secs_f64();
                if cmd_tx.send(ToSuggester::Demand { k, now }).is_err() {
                    break 'run;
                }
                let Ok(batch) = batch_rx.recv() else {
                    // The suggestion thread is gone; join below surfaces
                    // its panic.
                    break 'run;
                };
                if batch.is_empty() {
                    assert!(
                        pool.in_flight() > 0,
                        "method {method_name} stalled with no running evaluations"
                    );
                    break;
                }
                let short = batch.len() < k;
                for spec in batch {
                    telemetry.emit_with(started.elapsed().as_secs_f64(), || {
                        Event::TrialDispatched {
                            level: spec.level,
                            bracket: spec.bracket,
                            attempt: 0,
                        }
                    });
                    telemetry.counter_add("trials.dispatched", 1);
                    pool.submit(ThreadedJob { spec, attempt: 0 })
                        .expect("idle worker available");
                    dispatched += 1;
                }
                if short {
                    // Barrier mid-batch: wait for a completion.
                    break;
                }
            }

            let Ok(done) = pool.next_completion() else {
                break;
            };
            let job = done.job;
            if done.status.is_failure() {
                if handle_failure(
                    done.status,
                    job.spec.level,
                    job.attempt,
                    config,
                    telemetry,
                    started,
                    &mut tally,
                ) {
                    pool.submit(ThreadedJob {
                        attempt: job.attempt + 1,
                        ..job
                    })
                    .expect("the failed job's worker is free");
                    continue;
                }
                emit_quarantine(&job.spec, done.status, telemetry, started);
                // Release the budget slot so a replacement config
                // dispatches.
                dispatched -= 1;
                let status = done.status;
                let outcome = failed_outcome(job.spec, status, started);
                let now = outcome.finished_at;
                let predicted_k = pool.idle_workers().min(config.max_evals - dispatched);
                if cmd_tx
                    .send(ToSuggester::Completed {
                        outcome,
                        measurement: None,
                        predicted_k,
                        now,
                    })
                    .is_err()
                {
                    break 'run;
                }
                continue;
            }
            let spec = job.spec;
            let eval = done.output.expect("successful jobs carry an output");
            completed += 1;
            let now = started.elapsed().as_secs_f64();
            let m = Measurement {
                config: spec.config.clone(),
                level: spec.level,
                resource: spec.resource,
                value: eval.value,
                test_value: eval.test_value,
                cost: eval.cost,
                finished_at: now,
            };
            let outcome = Outcome {
                spec: spec.clone(),
                value: eval.value,
                test_value: eval.test_value,
                cost: eval.cost,
                finished_at: now,
                status: OutcomeStatus::Success,
                fail_status: None,
            };
            // Predict the size of the next demand: the workers idle right
            // now (including the one this completion freed), capped by
            // the remaining budget. Nothing changes between here and the
            // next fill, so the prediction — and hence the speculation —
            // is normally exact.
            let predicted_k = pool.idle_workers().min(config.max_evals - dispatched);
            // Send before the local bookkeeping below so the suggestion
            // thread's on_result + speculation overlaps it.
            if cmd_tx
                .send(ToSuggester::Completed {
                    outcome,
                    measurement: Some(m.clone()),
                    predicted_k,
                    now,
                })
                .is_err()
            {
                break 'run;
            }
            book_completion(m, &spec, &eval, telemetry, &mut tally);
        }

        drop(cmd_tx);
        suggester.join().expect("suggestion thread panicked")
    });

    telemetry.flush();
    tally.into_result(method_name, &history, started.elapsed().as_secs_f64())
}

/// Books a failed attempt; returns `true` when the job should be
/// resubmitted (the caller owns the actual resubmission).
fn handle_failure(
    status: hypertune_cluster::JobStatus,
    level: usize,
    attempt: usize,
    config: &ThreadedRunConfig,
    telemetry: &TelemetryHandle,
    started: Instant,
    tally: &mut Tally,
) -> bool {
    // Corrupt results carry an output but it is untrusted and discarded;
    // every failure kind goes through the same retry-or-quarantine path.
    tally.n_failed_attempts += 1;
    tally.failure_counts.record(status);
    telemetry.counter_add("trials.failed_attempts", 1);
    if attempt < config.retry.max_retries {
        tally.n_retries += 1;
        telemetry.emit_with(started.elapsed().as_secs_f64(), || Event::TrialRetried {
            level,
            attempt: attempt + 1,
            kind: failure_kind(status).expect("status is a failure"),
        });
        telemetry.counter_add("trials.retried", 1);
        return true;
    }
    tally.n_quarantined += 1;
    false
}

fn emit_quarantine(
    spec: &JobSpec,
    status: hypertune_cluster::JobStatus,
    telemetry: &TelemetryHandle,
    started: Instant,
) {
    telemetry.emit_with(started.elapsed().as_secs_f64(), || {
        Event::TrialQuarantined {
            level: spec.level,
            bracket: spec.bracket,
            kind: failure_kind(status).expect("status is a failure"),
        }
    });
    telemetry.counter_add("trials.quarantined", 1);
}

fn failed_outcome(
    spec: JobSpec,
    status: hypertune_cluster::JobStatus,
    started: Instant,
) -> Outcome {
    Outcome {
        spec,
        value: f64::INFINITY,
        test_value: f64::INFINITY,
        cost: 0.0,
        finished_at: started.elapsed().as_secs_f64(),
        status: OutcomeStatus::Failed,
        fail_status: Some(status),
    }
}

/// Books a successful completion into the tally (shared tail of both
/// drivers).
fn book_completion(
    m: Measurement,
    spec: &JobSpec,
    eval: &Eval,
    telemetry: &TelemetryHandle,
    tally: &mut Tally,
) {
    tally.evals_per_level[spec.level] += 1;
    telemetry.emit_with(m.finished_at, || Event::TrialCompleted {
        level: spec.level,
        bracket: spec.bracket,
        value: eval.value,
        cost: eval.cost,
    });
    telemetry.counter_add("trials.completed", 1);
    telemetry.histogram_record("trial.cost", eval.cost);
    tally.measurements.push(m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hypertune_benchmarks::CountingOnes;
    use hypertune_telemetry::Telemetry;

    fn threaded(
        kind: MethodKind,
        workers: usize,
        max_evals: usize,
        seed: u64,
    ) -> ThreadedRunResult {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = kind.build(&levels, seed);
        run_threaded(
            method.as_mut(),
            bench,
            &ThreadedRunConfig::new(workers, max_evals, seed),
        )
    }

    /// The parallelism-insensitive fingerprint of a measurement stream:
    /// everything but the wall-clock timestamp.
    fn keys(r: &ThreadedRunResult) -> Vec<(Config, usize, u64, u64, u64, u64)> {
        r.measurements
            .iter()
            .map(|m| {
                (
                    m.config.clone(),
                    m.level,
                    m.resource.to_bits(),
                    m.value.to_bits(),
                    m.test_value.to_bits(),
                    m.cost.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn completes_exactly_max_evals() {
        let r = threaded(MethodKind::Asha, 4, 50, 1);
        assert_eq!(r.total_evals, 50);
        assert_eq!(r.evals_per_level.iter().sum::<usize>(), 50);
        assert!(r.best_value.is_finite());
        assert!(r.wall_secs >= 0.0);
    }

    #[test]
    fn inline_driver_completes_exactly_max_evals() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 1);
        let mut cfg = ThreadedRunConfig::new(4, 50, 1);
        cfg.prefetch = false;
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 50);
        assert!(r.best_value.is_finite());
    }

    #[test]
    fn async_and_sync_methods_both_run() {
        for kind in [
            MethodKind::HyperTune,
            MethodKind::Hyperband,
            MethodKind::BatchBo,
        ] {
            let r = threaded(kind, 3, 30, 2);
            assert_eq!(r.total_evals, 30, "{}", kind.name());
        }
    }

    #[test]
    fn measurements_timestamps_monotone() {
        let r = threaded(MethodKind::ARandom, 4, 40, 3);
        for w in r.measurements.windows(2) {
            assert!(w[0].finished_at <= w[1].finished_at);
        }
    }

    #[test]
    fn single_worker_matches_multi_worker_quality_roughly() {
        // Both configurations must find something decent on counting-ones
        // within the same evaluation budget (parallelism changes order,
        // not correctness).
        let a = threaded(MethodKind::Asha, 1, 60, 4);
        let b = threaded(MethodKind::Asha, 4, 60, 4);
        assert!(a.best_value <= 0.0 && b.best_value <= 0.0);
    }

    #[test]
    fn prefetch_matches_inline_driver_at_one_worker() {
        // With a single worker the completion order is deterministic, so
        // the pipelined and inline drivers must produce the same
        // measurement stream bit-for-bit (modulo wall timestamps): the
        // speculation protocol moves suggestion work, never changes it.
        for kind in [MethodKind::HyperTune, MethodKind::Bohb, MethodKind::Asha] {
            let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
            let levels = ResourceLevels::new(bench.max_resource(), 3);

            let mut m1 = kind.build(&levels, 9);
            let mut cfg = ThreadedRunConfig::new(1, 30, 9);
            cfg.prefetch = false;
            let inline = run_threaded(m1.as_mut(), Arc::clone(&bench), &cfg);

            let mut m2 = kind.build(&levels, 9);
            cfg.prefetch = true;
            let prefetched = run_threaded(m2.as_mut(), bench, &cfg);

            assert_eq!(keys(&inline), keys(&prefetched), "{}", kind.name());
            assert_eq!(
                inline.best_value.to_bits(),
                prefetched.best_value.to_bits(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn prefetch_hits_are_recorded() {
        // After the cold start, every completion's speculation should be
        // consumed by the following demand: hits dominate, and the
        // discard path stays a safety valve.
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::HyperTune.build(&levels, 12);
        let mut cfg = ThreadedRunConfig::new(4, 40, 12);
        cfg.telemetry = Telemetry::new().build();
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 40);
        let snap = cfg.telemetry.snapshot().unwrap();
        let hits = snap.counter("prefetch.hit").unwrap_or(0);
        let misses = snap.counter("prefetch.miss").unwrap_or(0);
        assert!(hits > 0, "prefetch never hit (misses: {misses})");
    }

    #[test]
    fn crash_faults_are_retried_and_run_still_completes() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 5);
        let mut cfg = ThreadedRunConfig::new(4, 40, 5);
        cfg.faults = Some(FaultSpec::crashes(0.2));
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 40, "retries must preserve the budget");
        assert!(r.n_failed_attempts > 0, "20% crash rate should fire");
        assert!(r.n_retries > 0);
        for m in &r.measurements {
            assert!(m.value.is_finite());
        }
    }

    #[test]
    fn total_failure_terminates_via_quarantine_cap() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::ARandom.build(&levels, 6);
        let mut cfg = ThreadedRunConfig::new(2, 10, 6);
        cfg.faults = Some(FaultSpec::errors(1.0));
        cfg.retry = RetryPolicy {
            max_retries: 1,
            backoff_base: 0.0,
            backoff_mult: 1.0,
        };
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 0);
        assert!(r.n_quarantined >= 10 * 10, "cap should bound the run");
        assert!(r.best_config.is_none());
    }

    #[test]
    fn corrupt_results_never_enter_history() {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, 7);
        let mut cfg = ThreadedRunConfig::new(4, 30, 7);
        cfg.faults = Some(FaultSpec::corrupt(0.3));
        let r = run_threaded(method.as_mut(), bench, &cfg);
        assert_eq!(r.total_evals, 30);
        assert!(r.n_failed_attempts > 0, "30% corruption should fire");
        for m in &r.measurements {
            assert!(m.value.is_finite());
        }
    }
}
