//! Contract tests for pipelined dispatch: the batch suggestion API
//! (`Method::next_jobs`) must degenerate to the sequential `next_job`
//! path at k = 1 for every method, and the threaded runner's prefetching
//! driver must produce the same run as the inline driver.

use std::sync::Arc;

use hypertune::core::{JobSpec, Measurement, Method, MethodContext, Outcome, OutcomeStatus};
use hypertune::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// One half of the lockstep pair: a method plus the runner state the
/// context views borrow from.
struct Side {
    method: Box<dyn Method>,
    history: History,
    pending: Vec<JobSpec>,
    rng: StdRng,
}

impl Side {
    fn new(kind: MethodKind, levels: &ResourceLevels, seed: u64) -> Self {
        Self {
            method: kind.build(levels, seed),
            history: History::new(levels.clone()),
            pending: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x5eed),
        }
    }

    fn dispatch(
        &mut self,
        space: &ConfigSpace,
        levels: &ResourceLevels,
        n_workers: usize,
        batched: bool,
    ) -> Option<JobSpec> {
        let Side {
            method,
            history,
            pending,
            rng,
        } = self;
        let mut ctx = MethodContext {
            space,
            levels,
            history: &*history,
            pending: pending.as_slice(),
            rng,
            n_workers,
            now: 0.0,
        };
        if batched {
            method.next_jobs(&mut ctx, 1).pop()
        } else {
            method.next_job(&mut ctx)
        }
    }

    fn complete(
        &mut self,
        space: &ConfigSpace,
        levels: &ResourceLevels,
        n_workers: usize,
        job: JobSpec,
        value: f64,
    ) {
        self.history.record(Measurement {
            config: job.config.clone(),
            level: job.level,
            resource: job.resource,
            value,
            test_value: value,
            cost: 1.0,
            finished_at: 0.0,
        });
        let outcome = Outcome {
            spec: job,
            value,
            test_value: value,
            cost: 1.0,
            finished_at: 0.0,
            status: OutcomeStatus::Success,
            fail_status: None,
        };
        let Side {
            method,
            history,
            pending,
            rng,
        } = self;
        let mut ctx = MethodContext {
            space,
            levels,
            history: &*history,
            pending: pending.as_slice(),
            rng,
            n_workers,
            now: 0.0,
        };
        method.on_result(&outcome, &mut ctx);
    }
}

/// Deterministic synthetic objective, so completions are a pure function
/// of the dispatched job.
fn synth_value(space: &ConfigSpace, job: &JobSpec) -> f64 {
    let enc = space.encode(&job.config);
    enc.iter().sum::<f64>() / enc.len() as f64 + 0.01 * job.level as f64
}

/// Drives two instances of `kind` in lockstep — one through the
/// sequential `next_job`, one through `next_jobs(_, 1)` — completing
/// jobs oldest-first, and asserts the dispatch streams are identical.
fn lockstep(kind: MethodKind, seed: u64, evals: usize) {
    let space = ConfigSpace::builder()
        .float("x", 0.0, 1.0)
        .float("y", -1.0, 1.0)
        .build();
    let levels = ResourceLevels::new(27.0, 3);
    let n_workers = 3;
    let mut seq = Side::new(kind, &levels, seed);
    let mut bat = Side::new(kind, &levels, seed);

    let mut done = 0;
    while done < evals {
        while seq.pending.len() < n_workers {
            let a = seq.dispatch(&space, &levels, n_workers, false);
            let b = bat.dispatch(&space, &levels, n_workers, true);
            assert_eq!(a, b, "{} diverged at eval {done}", kind.name());
            match a {
                Some(job) => {
                    seq.pending.push(job);
                    bat.pending.push(b.unwrap());
                }
                // Barrier on both sides; drain a completion.
                None => break,
            }
        }
        assert!(
            !seq.pending.is_empty(),
            "{} stalled with nothing in flight",
            kind.name()
        );
        let job = seq.pending.remove(0);
        let jb = bat.pending.remove(0);
        let value = synth_value(&space, &job);
        seq.complete(&space, &levels, n_workers, job, value);
        bat.complete(&space, &levels, n_workers, jb, value);
        done += 1;
    }
    // Both sides must also have consumed the same amount of randomness.
    assert_eq!(
        seq.rng.next_u64(),
        bat.rng.next_u64(),
        "{} left the RNG streams out of sync",
        kind.name()
    );
}

/// The parallelism-insensitive fingerprint of a measurement stream:
/// everything but the wall-clock timestamp.
fn keys(r: &hypertune::core::ThreadedRunResult) -> Vec<(Config, usize, u64, u64, u64, u64)> {
    r.measurements
        .iter()
        .map(|m| {
            (
                m.config.clone(),
                m.level,
                m.resource.to_bits(),
                m.value.to_bits(),
                m.test_value.to_bits(),
                m.cost.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// k = 1 batch suggestion is bit-identical to sequential `next_job`
    /// for every method in the registry: same jobs, same order, same RNG
    /// consumption. This is the contract that keeps the simulated runner
    /// (which drives everything through `next_jobs(_, 1)`) reproducing
    /// the paper figures exactly.
    #[test]
    fn batch_k1_bit_identical_to_sequential(seed in 0u64..1000) {
        for &kind in MethodKind::all() {
            lockstep(kind, seed, 45);
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The threaded runner's prefetching driver and its inline driver
    /// produce identical measurement streams on a fault-free run (one
    /// worker pins the completion order): speculation moves suggestion
    /// work off the critical path without changing a single suggestion.
    #[test]
    fn prefetch_and_inline_drivers_agree(seed in 0u64..500) {
        for kind in [MethodKind::HyperTune, MethodKind::ABo, MethodKind::Bohb] {
            let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 7));
            let levels = ResourceLevels::new(bench.max_resource(), 3);

            let mut cfg = hypertune::core::ThreadedRunConfig::new(1, 25, seed);
            cfg.prefetch = false;
            let mut m1 = kind.build(&levels, seed);
            let inline = hypertune::core::run_threaded(m1.as_mut(), Arc::clone(&bench), &cfg);

            cfg.prefetch = true;
            let mut m2 = kind.build(&levels, seed);
            let prefetched = hypertune::core::run_threaded(m2.as_mut(), bench, &cfg);

            prop_assert_eq!(keys(&inline), keys(&prefetched), "{}", kind.name());
            prop_assert_eq!(
                inline.best_value.to_bits(),
                prefetched.best_value.to_bits()
            );
        }
    }
}
