//! Property-based tests on framework invariants: bracket state machines,
//! selector distributions, and runner accounting under arbitrary inputs.

use hypertune::core::allocator::BracketSelector;
use hypertune::core::bracket::{AsyncBracket, SyncBracket};
use hypertune::core::ranking::ranking_loss;
use hypertune::prelude::*;
use hypertune::space::ParamValue;
use proptest::prelude::*;

fn cfg(v: f64) -> Config {
    Config::new(vec![ParamValue::Float(v)])
}

proptest! {
    /// SyncBracket always terminates, never dispatches more jobs per rung
    /// than its schedule says, and the survivor of a noise-free bracket is
    /// among the best of its seeds.
    #[test]
    fn sync_bracket_respects_schedule(values in proptest::collection::vec(0.0f64..1.0, 27)) {
        let levels = ResourceLevels::new(27.0, 3);
        let mut b = SyncBracket::new(&levels, 0);
        let mut idx = 0;
        while b.needs_configs() > 0 {
            // Duplicate values are fine; make configs unique by index.
            b.add_config(cfg(values[idx] + idx as f64 * 1e-12));
            idx += 1;
        }
        let schedule = levels.bracket_schedule(0);
        for (rung, &(n, _)) in schedule.iter().enumerate() {
            let mut jobs = Vec::new();
            while let Some((c, lvl)) = b.next_job() {
                prop_assert_eq!(lvl, rung);
                jobs.push(c);
            }
            prop_assert_eq!(jobs.len(), n);
            for c in jobs {
                let v = c.values()[0].as_f64().unwrap();
                b.on_result(c, v);
            }
        }
        prop_assert!(b.is_done());
    }

    /// D-ASHA's delay quota bounds cumulative promotions out of the base
    /// rung by |D_0|/eta under any interleaving — the sample-efficiency
    /// guarantee that vanilla ASHA lacks (its cumulative promotions can
    /// exceed the quota when later, better configs displace earlier
    /// promotions from the top 1/eta: the "inaccurate promotions" of
    /// §4.2). For ASHA we assert only the weaker per-config property.
    #[test]
    fn async_bracket_promotion_quota(
        values in proptest::collection::vec(0.0f64..1.0, 3..50),
        delay in any::<bool>(),
        interleave in any::<u8>(),
    ) {
        let levels = ResourceLevels::new(27.0, 3);
        let mut b = AsyncBracket::new(&levels, 0, delay);
        let mut promoted_configs: Vec<Config> = Vec::new();
        let mut results_at_0 = 0usize;
        for (i, &v) in values.iter().enumerate() {
            b.add_base_job();
            b.on_result(cfg(v + i as f64 * 1e-12), 0, v);
            results_at_0 += 1;
            // Interleave promotion attempts pseudo-randomly.
            if i % (1 + (interleave % 3) as usize) == 0 {
                while let Some((c, lvl)) = b.try_promote() {
                    if lvl == 1 {
                        // No config is ever promoted twice from a rung.
                        prop_assert!(!promoted_configs.contains(&c));
                        promoted_configs.push(c.clone());
                    }
                    let v = c.values()[0].as_f64().unwrap();
                    b.on_result(c, lvl, v);
                }
            }
            if delay {
                prop_assert!(promoted_configs.len() * 3 <= results_at_0,
                    "{} promotions from {results_at_0} results", promoted_configs.len());
            }
        }
    }

    /// Selector weights are a probability distribution for any θ.
    #[test]
    fn selector_weights_normalized(theta in proptest::collection::vec(0.0f64..10.0, 4)) {
        let levels = ResourceLevels::new(27.0, 3);
        let mut s = BracketSelector::new(&levels);
        s.update_theta(&theta);
        if let Some(w) = s.weights() {
            let sum: f64 = w.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        } else {
            // Only possible when θ was all zeros.
            prop_assert!(theta.iter().all(|&t| t == 0.0));
        }
    }

    /// Ranking loss is symmetric under common permutation and bounded by
    /// the number of pairs.
    #[test]
    fn ranking_loss_bounds(ys in proptest::collection::vec(-10.0f64..10.0, 2..20), shift in -5.0f64..5.0) {
        let preds: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        // A rank-preserving transform has zero loss.
        prop_assert_eq!(ranking_loss(&preds, &ys), 0);
        // Any predictions are bounded by n(n-1)/2.
        let rev: Vec<f64> = ys.iter().map(|y| -y).collect();
        let n = ys.len();
        prop_assert!(ranking_loss(&rev, &ys) <= n * (n - 1) / 2);
    }

    /// Runner accounting: evals_per_level sums to total_evals and the
    /// recorded curve is monotone, for arbitrary worker counts/budgets.
    #[test]
    fn runner_accounting(n_workers in 1usize..10, budget in 200.0f64..1500.0, seed in 0u64..50) {
        let bench = CountingOnes::new(3, 3, 9);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut method = MethodKind::Asha.build(&levels, seed);
        let r = run(method.as_mut(), &bench, &RunConfig::new(n_workers, budget, seed));
        prop_assert_eq!(r.evals_per_level.iter().sum::<usize>(), r.total_evals);
        for w in r.curve.windows(2) {
            prop_assert!(w[1].value <= w[0].value);
            prop_assert!(w[1].time >= w[0].time);
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utilization));
    }
}

proptest! {
    /// Resume-from-snapshot is bit-identical to the uninterrupted run,
    /// across methods, seeds, checkpoint intervals, and fault rates: the
    /// core guarantee of the WAL-replay design.
    #[test]
    fn resume_equals_uninterrupted_run(
        kind_idx in 0usize..5,
        seed in 0u64..1000,
        every in 3usize..12,
        crash in 0.0f64..0.25,
    ) {
        let kind = [
            MethodKind::ARandom,
            MethodKind::Asha,
            MethodKind::AHyperband,
            MethodKind::HyperTune,
            MethodKind::Hyperband,
        ][kind_idx];
        let bench = CountingOnes::new(3, 3, 9);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut cfg = RunConfig::new(3, 600.0, seed);
        if crash > 0.01 {
            cfg.faults = Some(FaultSpec::crashes(crash));
        }

        let mut m_full = kind.build(&levels, seed);
        let full = run(m_full.as_mut(), &bench, &cfg);

        let dir = std::env::temp_dir().join(format!(
            "hypertune-pt-resume-{kind_idx}-{seed}-{every}"
        ));
        let path = dir.join("snap.json");
        let policy = CheckpointPolicy::new(&path, every);
        let mut m_ckpt = kind.build(&levels, seed);
        run_checkpointed(m_ckpt.as_mut(), &bench, &cfg, &policy).unwrap();

        if path.exists() {
            let snapshot = RunSnapshot::load(&path).unwrap();
            let mut m_res = kind.build(&levels, seed);
            let resumed = resume(m_res.as_mut(), &bench, &cfg, &snapshot, None).unwrap();
            prop_assert_eq!(&resumed.measurements, &full.measurements);
            prop_assert_eq!(resumed.best_value, full.best_value);
            prop_assert_eq!(resumed.n_quarantined, full.n_quarantined);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
