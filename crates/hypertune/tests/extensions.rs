//! Integration tests for the extensions beyond the paper's core: the TPE
//! optimizer slot, the median stopping rule, classic multi-fidelity test
//! functions, GP kernels, and run diagnostics.

use hypertune::benchmarks::{BraninMf, Hartmann6Mf};
use hypertune::core::methods::{AsyncHb, BracketPolicy};
use hypertune::core::sampler::RandomSampler;
use hypertune::prelude::*;

fn run_kind(kind: MethodKind, bench: &dyn Benchmark, budget: f64, seed: u64) -> RunResult {
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = kind.build(&levels, seed);
    run(method.as_mut(), bench, &RunConfig::new(4, budget, seed))
}

#[test]
fn tpe_variants_run_and_improve_over_time() {
    let bench = tasks::xgboost_pokerhand(0);
    for kind in [MethodKind::BohbTpe, MethodKind::HyperTuneTpe] {
        let r = run_kind(kind, &bench, 2.0 * 3600.0, 3);
        assert!(r.total_evals > 0, "{}", kind.name());
        assert!(r.best_value.is_finite());
        if r.curve.len() >= 2 {
            assert!(r.curve.last().unwrap().value <= r.curve[0].value);
        }
    }
}

#[test]
fn median_stop_uses_partial_evaluations() {
    let bench = tasks::xgboost_covertype(0);
    let r = run_kind(MethodKind::MedianStop, &bench, 2.0 * 3600.0, 5);
    assert!(r.total_evals > 0);
    // It starts everything at the base level, so level 0 dominates.
    assert!(r.evals_per_level[0] >= r.evals_per_level[3]);
    // And it is fully asynchronous.
    assert!(r.utilization > 0.9, "utilization {}", r.utilization);
}

#[test]
fn hypertune_finds_branin_region() {
    let bench = BraninMf::new(10.0, 0);
    let r = run_kind(MethodKind::HyperTune, &bench, 4000.0, 1);
    // Branin's optimum is 0.3979; a short run should get below 2.0
    // (value range spans ~0..300).
    assert!(r.best_value < 3.0, "best {}", r.best_value);
}

#[test]
fn hypertune_reasonable_on_hartmann6() {
    let bench = Hartmann6Mf::new(0);
    let r = run_kind(MethodKind::HyperTune, &bench, 4000.0, 2);
    // Optimum -3.322; random search scores about -1 on this budget.
    assert!(r.best_value < -1.0, "best {}", r.best_value);
}

#[test]
fn diagnostics_track_theta_and_brackets() {
    let bench = tasks::nas_cifar10_valid(0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = AsyncHb::new(
        "HT-diag".into(),
        &levels,
        BracketPolicy::learned(&levels),
        true,
        Box::new(RandomSampler),
        7,
    );
    let r = run(&mut method, &bench, &RunConfig::new(8, 3.0 * 3600.0, 7));
    assert!(r.total_evals > 0);
    let d = method.diagnostics();
    let starts: usize = d.bracket_starts.iter().sum();
    assert!(starts > 0, "fresh configs recorded");
    // Round-robin init touches every bracket.
    assert!(
        d.bracket_starts.iter().all(|&n| n > 0),
        "{:?}",
        d.bracket_starts
    );
    // Theta was eventually estimated and is a distribution.
    let theta = d.final_theta().expect("theta estimated");
    assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // Promotions happened in at least one bracket.
    assert!(d.bracket_promotions.iter().sum::<usize>() > 0);
    assert!(d.report().contains("final theta"));
}

#[test]
fn gp_kernel_families_all_fit_benchmark_data() {
    use hypertune::surrogate::kernel::{Kernel, Matern32, Matern52, Rbf};
    use hypertune::surrogate::{GaussianProcess, SurrogateModel};
    use std::sync::Arc;
    let bench = tasks::resnet_cifar10(0);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0)
    };
    let xs: Vec<Vec<f64>> = (0..25)
        .map(|_| bench.space().encode(&bench.space().sample(&mut rng)))
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            bench
                .space()
                .decode(x)
                .map(|c| bench.evaluate(&c, 27.0, 0).value)
                .unwrap()
        })
        .collect();
    for kernel in [
        Arc::new(Rbf) as Arc<dyn Kernel>,
        Arc::new(Matern32),
        Arc::new(Matern52),
    ] {
        let mut gp = GaussianProcess::with_kernel(kernel);
        gp.fit(&xs, &ys).unwrap();
        let p = SurrogateModel::predict(&gp, &xs[0]).unwrap();
        assert!(p.mean.is_finite() && p.var >= 0.0);
    }
}

#[test]
fn classic_functions_report_known_optima() {
    assert_eq!(BraninMf::new(10.0, 0).optimum(), Some(0.397887));
    assert_eq!(Hartmann6Mf::new(0).optimum(), Some(-3.32237));
}
