//! End-to-end integration tests spanning all crates: methods drive real
//! benchmarks through the simulated cluster, and the paper's qualitative
//! claims hold at small scale.

use hypertune::prelude::*;

fn run_kind(
    kind: MethodKind,
    bench: &dyn Benchmark,
    workers: usize,
    budget: f64,
    seed: u64,
) -> RunResult {
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = kind.build(&levels, seed);
    run(
        method.as_mut(),
        bench,
        &RunConfig::new(workers, budget, seed),
    )
}

#[test]
fn hypertune_converges_on_counting_ones() {
    let bench = CountingOnes::new(8, 8, 3);
    let r = run_kind(MethodKind::HyperTune, &bench, 8, 8000.0, 1);
    // Optimum is -1; a decent run should get most of the way there.
    assert!(
        r.best_value < -0.75,
        "Hyper-Tune should approach the optimum, got {}",
        r.best_value
    );
    assert!(r.utilization > 0.9, "async scheduling keeps workers busy");
}

#[test]
fn hypertune_beats_random_search_on_nas() {
    // Averaged over three seeds on the NAS table at the paper's budget —
    // the headline claim of Figure 5. (At much tighter budgets the two
    // methods tie: Hyper-Tune's bracket selection needs enough complete
    // evaluations to learn θ before its advantage materializes.)
    let bench = tasks::nas_cifar10_valid(0);
    let budget = 24.0 * 3600.0;
    let avg = |kind: MethodKind| -> f64 {
        (0..3)
            .map(|s| run_kind(kind, &bench, 8, budget, 42 + s).best_value)
            .sum::<f64>()
            / 3.0
    };
    let ht = avg(MethodKind::HyperTune);
    let rnd = avg(MethodKind::ARandom);
    assert!(
        ht <= rnd + 1e-9,
        "Hyper-Tune {ht:.4} should beat A-Random {rnd:.4}"
    );
}

#[test]
fn partial_evaluations_beat_full_only_under_tight_budget() {
    // With expensive evaluations and a budget of a few full trains, the
    // HB family must have evaluated far more configurations than
    // full-fidelity random search.
    let bench = tasks::xgboost_covertype(1);
    let budget = 2.0 * 3600.0;
    let asha = run_kind(MethodKind::Asha, &bench, 8, budget, 7);
    let rnd = run_kind(MethodKind::ARandom, &bench, 8, budget, 7);
    assert!(
        asha.total_evals > 2 * rnd.total_evals,
        "ASHA {} evals vs A-Random {}",
        asha.total_evals,
        rnd.total_evals
    );
}

#[test]
fn sync_methods_idle_async_methods_do_not() {
    let bench = tasks::xgboost_covertype(2);
    let budget = 2.0 * 3600.0;
    let hb = run_kind(MethodKind::Hyperband, &bench, 8, budget, 3);
    let ahb = run_kind(MethodKind::AHyperband, &bench, 8, budget, 3);
    assert!(
        ahb.utilization > 0.9,
        "A-HB utilization {}",
        ahb.utilization
    );
    assert!(
        hb.utilization < ahb.utilization,
        "sync {} vs async {}",
        hb.utilization,
        ahb.utilization
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let bench = tasks::nas_cifar100(0);
    let a = run_kind(MethodKind::HyperTune, &bench, 4, 4000.0, 11);
    let b = run_kind(MethodKind::HyperTune, &bench, 4, 4000.0, 11);
    assert_eq!(a.best_value, b.best_value);
    assert_eq!(a.total_evals, b.total_evals);
    assert_eq!(a.evals_per_level, b.evals_per_level);
    assert_eq!(a.curve.len(), b.curve.len());
}

#[test]
fn all_methods_complete_on_all_benchmark_families() {
    let nas = tasks::nas_cifar10_valid(1);
    let xgb = tasks::xgboost_pokerhand(1);
    let co = CountingOnes::new(4, 4, 1);
    let benches: [&dyn Benchmark; 3] = [&nas, &xgb, &co];
    for bench in benches {
        for kind in [MethodKind::Sha, MethodKind::Bohb, MethodKind::HyperTune] {
            let r = run_kind(kind, bench, 4, 1200.0, 5);
            assert!(
                r.total_evals > 0,
                "{} on {} did nothing",
                kind.name(),
                bench.name()
            );
        }
    }
}

#[test]
fn curves_are_monotone_and_within_budget() {
    let bench = tasks::lstm_ptb(0);
    let budget = 4.0 * 3600.0;
    for kind in [MethodKind::Asha, MethodKind::MfesHb, MethodKind::HyperTune] {
        let r = run_kind(kind, &bench, 4, budget, 9);
        for w in r.curve.windows(2) {
            assert!(w[1].value <= w[0].value, "{}", kind.name());
            assert!(w[1].time >= w[0].time);
        }
        if let Some(last) = r.curve.last() {
            assert!(last.time <= budget);
        }
    }
}

#[test]
fn best_config_is_valid_and_reproducible() {
    let bench = tasks::resnet_cifar10(0);
    let r = run_kind(MethodKind::HyperTune, &bench, 4, 6.0 * 3600.0, 13);
    let cfg = r.best_config.expect("found something");
    bench.space().check(&cfg).unwrap();
    // Re-evaluating the best config at its recorded fidelity with the
    // run's seed reproduces the recorded value exactly.
    let resource = r.best_resource.expect("incumbent has a resource");
    let re = bench.evaluate(&cfg, resource, 13);
    assert_eq!(re.value, r.best_value);
}

#[test]
fn threaded_executor_matches_benchmark_trait() {
    // The same Benchmark drives the real thread pool: results must agree
    // with direct evaluation.
    let bench = tasks::xgboost_higgs(0);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0)
    };
    let configs: Vec<Config> = (0..6).map(|_| bench.space().sample(&mut rng)).collect();
    let expected: Vec<f64> = configs
        .iter()
        .map(|c| bench.evaluate(c, 27.0, 5).value)
        .collect();
    let pool_bench = tasks::xgboost_higgs(0);
    let mut pool = ThreadPool::new(3, move |c: &Config| pool_bench.evaluate(c, 27.0, 5).value);
    for c in &configs {
        pool.submit(c.clone()).ok();
    }
    let mut submitted = 3usize.min(configs.len());
    // Submit remaining as workers free up.
    let mut results = Vec::new();
    while results.len() < configs.len() {
        if let Ok(r) = pool.next_completion() {
            results.push(r);
            if submitted < configs.len() {
                pool.submit(configs[submitted].clone()).unwrap();
                submitted += 1;
            }
        }
    }
    for r in results {
        let idx = configs.iter().position(|c| *c == r.job).unwrap();
        assert_eq!(r.output, Some(expected[idx]));
    }
}

#[test]
fn stragglers_do_not_break_any_engine() {
    let bench = CountingOnes::new(4, 4, 2);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    for kind in [
        MethodKind::Hyperband,
        MethodKind::HyperTune,
        MethodKind::BatchBo,
    ] {
        let mut method = kind.build(&levels, 21);
        let mut cfg = RunConfig::new(6, 1500.0, 21);
        cfg.straggler = Some((0.3, 5.0));
        let r = run(method.as_mut(), &bench, &cfg);
        assert!(r.total_evals > 0, "{}", kind.name());
    }
}
