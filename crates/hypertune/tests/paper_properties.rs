//! Integration tests pinning the paper's quantitative structures: the
//! Table 1 bracket geometry, Algorithm 1's promotion discipline, the
//! Eq. 2/Eq. 3 weight plumbing, and scheduler sample-efficiency claims.

use hypertune::core::allocator::BracketSelector;
use hypertune::core::bracket::AsyncBracket;
use hypertune::core::ranking;
use hypertune::prelude::*;

#[test]
fn table1_geometry_r27_eta3() {
    let levels = ResourceLevels::new(27.0, 3);
    assert_eq!(
        levels.bracket_schedule(0),
        vec![(27, 1.0), (9, 3.0), (3, 9.0), (1, 27.0)]
    );
    assert_eq!(
        levels.bracket_schedule(1),
        vec![(12, 3.0), (4, 9.0), (1, 27.0)]
    );
    assert_eq!(levels.bracket_schedule(2), vec![(6, 9.0), (2, 27.0)]);
    assert_eq!(levels.bracket_schedule(3), vec![(4, 27.0)]);
}

#[test]
fn dasha_promotion_count_bounded_by_quota() {
    // Algorithm 1's invariant: after any interleaving, the number of
    // promotions out of rung k is at most |D_k| / eta.
    let levels = ResourceLevels::new(27.0, 3);
    let mut bracket = AsyncBracket::new(&levels, 0, true);
    use hypertune::space::ParamValue;
    let mut promoted = 0usize;
    let mut fed = 0usize;
    for i in 0..60 {
        let cfg = Config::new(vec![ParamValue::Float(i as f64)]);
        bracket.add_base_job();
        bracket.on_result(cfg, 0, i as f64);
        fed += 1;
        while let Some((c, lvl)) = bracket.try_promote() {
            if lvl == 1 {
                promoted += 1;
            }
            // Complete the promoted evaluation immediately.
            let v = c.values()[0].as_f64().unwrap();
            bracket.on_result(c, lvl, v);
        }
        assert!(
            promoted * 3 <= fed,
            "promotions {promoted} exceed |D_0|/3 of {fed}"
        );
    }
    assert!(promoted > 0);
}

#[test]
fn dasha_is_more_sample_efficient_than_asha_under_noise() {
    // The §5.7 claim: with noisy low-fidelity measurements, D-ASHA spends
    // a smaller fraction of its promotions on configurations outside the
    // true top third. Uses the XGBoost surrogate with strong noise.
    let bench = tasks::xgboost_covertype(5);
    let budget = 3.0 * 3600.0;
    let frac_wasted = |kind: MethodKind| -> f64 {
        let mut total_promoted_cost = 0.0;
        let mut total_cost = 0.0;
        for seed in 0..3 {
            let levels = ResourceLevels::new(bench.max_resource(), 3);
            let mut m = kind.build(&levels, 100 + seed);
            let r = run(m.as_mut(), &bench, &RunConfig::new(8, budget, 100 + seed));
            // Proxy: cost share spent above the base level.
            let per_level = &r.evals_per_level;
            for (lvl, &n) in per_level.iter().enumerate() {
                let c = n as f64 * 3f64.powi(lvl as i32);
                total_cost += c;
                if lvl > 0 {
                    total_promoted_cost += c;
                }
            }
        }
        total_promoted_cost / total_cost
    };
    let asha = frac_wasted(MethodKind::Asha);
    let dasha = frac_wasted(MethodKind::AshaDasha);
    // The delay strategy bounds promotion volume, so D-ASHA's share of
    // promoted-evaluation cost must not exceed ASHA's by more than noise.
    assert!(
        dasha <= asha + 0.05,
        "D-ASHA promoted-cost share {dasha:.3} vs ASHA {asha:.3}"
    );
}

#[test]
fn theta_weights_flow_into_bracket_weights() {
    // Eq. 2 + c = 1/r: a theta concentrated on the cheapest level makes
    // that bracket dominate the sampling distribution.
    let levels = ResourceLevels::new(27.0, 3);
    let mut sel = BracketSelector::new(&levels);
    sel.update_theta(&[0.6, 0.2, 0.1, 0.1]);
    let w = sel.weights().unwrap();
    // raw = [0.6/1, 0.2/3, 0.1/9, 0.1/27]: bracket 0 dominates.
    assert!(w[0] > 0.85, "weights {w:?}");
    assert!(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]);
}

#[test]
fn ranking_loss_identifies_informative_fidelity_on_real_benchmark() {
    // Build a history from actual benchmark evaluations: level 0 of the
    // NAS table correlates with level 3, so theta[0] should get mass.
    use hypertune::core::{History, Measurement};
    let bench = tasks::nas_cifar10_valid(3);
    let levels = ResourceLevels::new(27.0, 3);
    let mut h = History::new(levels);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(8)
    };
    for i in 0..40 {
        let cfg = bench.space().sample(&mut rng);
        let low = bench.evaluate(&cfg, 1.0, 0);
        h.record(Measurement {
            config: cfg.clone(),
            level: 0,
            resource: 1.0,
            value: low.value,
            test_value: low.test_value,
            cost: low.cost,
            finished_at: i as f64,
        });
        if i % 2 == 0 {
            let full = bench.evaluate(&cfg, 27.0, 0);
            h.record(Measurement {
                config: cfg,
                level: 3,
                resource: 27.0,
                value: full.value,
                test_value: full.test_value,
                cost: full.cost,
                finished_at: i as f64 + 0.5,
            });
        }
    }
    let theta = ranking::compute_theta(&h, bench.space(), 1).unwrap();
    assert_eq!(theta.len(), 4);
    assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // Unpopulated levels get zero.
    assert_eq!(theta[1], 0.0);
    assert_eq!(theta[2], 0.0);
}

#[test]
fn bracket_selection_initializes_round_robin_three_times() {
    let levels = ResourceLevels::new(27.0, 3);
    let mut sel = BracketSelector::new(&levels);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0)
    };
    let picks: Vec<usize> = (0..12).map(|_| sel.select(&mut rng)).collect();
    assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
}

#[test]
fn multi_fidelity_sampler_beats_random_on_structured_benchmark() {
    // §5.7 "Effectiveness of Multi-fidelity Optimizer" in miniature:
    // Hyper-Tune (MFES) vs Hyper-Tune with random sampling (A-HB + BS
    // equivalent scheduling) on the NAS table, 3 seeds each.
    let bench = tasks::nas_cifar100(2);
    let budget = 24.0 * 3600.0;
    let avg = |kind: MethodKind| -> f64 {
        (0..3)
            .map(|s| {
                let levels = ResourceLevels::new(bench.max_resource(), 3);
                let mut m = kind.build(&levels, 300 + s);
                run(m.as_mut(), &bench, &RunConfig::new(8, budget, 300 + s)).best_value
            })
            .sum::<f64>()
            / 3.0
    };
    let mfes = avg(MethodKind::HyperTune);
    let random = avg(MethodKind::AHyperbandBs);
    assert!(
        mfes <= random + 0.005,
        "MFES sampling {mfes:.4} should not lose to random {random:.4}"
    );
}
