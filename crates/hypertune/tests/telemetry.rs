//! Telemetry integration: the disabled/enabled bit-identity guarantee,
//! same-seed trace determinism, and agreement between the event log, the
//! metrics registry, and the method's own diagnostics.

use std::sync::Arc;

use hypertune::core::methods::{AsyncHb, BracketPolicy};
use hypertune::core::sampler::MfesSampler;
use hypertune::core::{run_threaded, ThreadedRunConfig};
use hypertune::prelude::*;
use proptest::prelude::*;

/// Zeroes the wall-clock parts of a trace (span durations and the close
/// timestamps derived from them) so two same-seed runs compare equal.
fn scrub_spans(records: Vec<EventRecord>) -> Vec<EventRecord> {
    records
        .into_iter()
        .map(|mut r| {
            if let Event::SpanClosed { duration, .. } = &mut r.event {
                *duration = 0.0;
                r.time = 0.0;
            }
            r
        })
        .collect()
}

#[test]
fn enabled_telemetry_leaves_sim_run_bit_identical() {
    // Tracing must observe, never perturb: a traced run (ring sink) and
    // an untraced run with the same seed agree on every measurement bit,
    // with fault injection and retries in the mix.
    let bench = CountingOnes::new(4, 4, 0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut cfg = RunConfig::new(6, 1500.0, 11);
    cfg.faults = Some(FaultSpec::crashes(0.1));

    let mut m_plain = MethodKind::HyperTune.build(&levels, 11);
    let plain = run(m_plain.as_mut(), &bench, &cfg);

    let ring = RingBufferSink::new(1 << 16);
    let mut traced_cfg = cfg.clone();
    traced_cfg.telemetry = Telemetry::new().with_sink(ring.clone()).build();
    let mut m_traced = MethodKind::HyperTune.build(&levels, 11);
    let traced = run(m_traced.as_mut(), &bench, &traced_cfg);

    assert_eq!(traced.measurements, plain.measurements);
    assert_eq!(traced.curve, plain.curve);
    assert_eq!(traced.best_value.to_bits(), plain.best_value.to_bits());
    assert_eq!(traced.n_failed_attempts, plain.n_failed_attempts);
    assert_eq!(traced.n_quarantined, plain.n_quarantined);
    assert_eq!(traced.failure_counts, plain.failure_counts);
    assert!(plain.n_failed_attempts > 0, "faults should have fired");
    assert!(!ring.snapshot().is_empty(), "the trace should be non-empty");
}

#[test]
fn enabled_telemetry_leaves_threaded_run_bit_identical() {
    // Same guarantee on the OS-thread substrate. One worker keeps the
    // completion order deterministic; timestamps are wall-clock there, so
    // the comparison covers everything except `finished_at`.
    let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, 0));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let cfg = ThreadedRunConfig::new(1, 40, 7);

    let mut m_plain = MethodKind::HyperTune.build(&levels, 7);
    let plain = run_threaded(m_plain.as_mut(), Arc::clone(&bench), &cfg);

    let ring = RingBufferSink::new(1 << 16);
    let mut traced_cfg = ThreadedRunConfig::new(1, 40, 7);
    traced_cfg.telemetry = Telemetry::new().with_sink(ring.clone()).build();
    let mut m_traced = MethodKind::HyperTune.build(&levels, 7);
    let traced = run_threaded(m_traced.as_mut(), bench, &traced_cfg);

    let key = |r: &hypertune::core::Measurement| {
        (
            r.config.clone(),
            r.level,
            r.resource.to_bits(),
            r.value.to_bits(),
            r.test_value.to_bits(),
            r.cost.to_bits(),
        )
    };
    assert_eq!(
        traced.measurements.iter().map(key).collect::<Vec<_>>(),
        plain.measurements.iter().map(key).collect::<Vec<_>>()
    );
    assert_eq!(traced.best_value.to_bits(), plain.best_value.to_bits());
    assert_eq!(traced.total_evals, plain.total_evals);
    assert_eq!(traced.evals_per_level, plain.evals_per_level);
    assert!(!ring.snapshot().is_empty());
}

#[test]
fn trace_summary_matches_run_and_diagnostics() {
    // The reconstruction guarantee behind `trace-report`: folding the
    // JSONL log back recovers the run's promotion counts, retry and
    // quarantine tallies, and the full bracket-weight (θ) trajectory, all
    // of which the engine also tracks internally.
    let bench = CountingOnes::new(4, 4, 0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = AsyncHb::new(
        "Hyper-Tune".into(),
        &levels,
        BracketPolicy::learned(&levels),
        true,
        Box::new(MfesSampler::new(5)),
        5,
    );

    let dir = std::env::temp_dir().join("hypertune-it-telemetry-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let mut cfg = RunConfig::new(6, 1200.0, 5);
    cfg.faults = Some(FaultSpec::crashes(0.15));
    cfg.telemetry = Telemetry::new()
        .with_sink(JsonlSink::create(&path).unwrap())
        .build();
    let result = run(&mut method, &bench, &cfg);

    let records = read_jsonl(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Sequence numbers are strictly monotone over the whole log.
    assert!(records.windows(2).all(|w| w[1].seq > w[0].seq));

    let summary = TraceSummary::from_records(&records);
    let diag = method.diagnostics();

    for (b, &n) in diag.bracket_promotions.iter().enumerate() {
        assert_eq!(summary.promotions_by_bracket(b), n, "bracket {b}");
    }
    let completed: usize = summary.levels.values().map(|f| f.completed).sum();
    assert_eq!(completed, result.total_evals);
    let retried: usize = summary.levels.values().map(|f| f.retried).sum();
    assert_eq!(retried, result.n_retries);
    let quarantined: usize = summary.levels.values().map(|f| f.quarantined).sum();
    assert_eq!(quarantined, result.n_quarantined);
    let faults: usize = summary.faults.values().sum();
    assert_eq!(faults, result.n_failed_attempts);
    assert_eq!(result.failure_counts.total(), result.n_failed_attempts);

    // The weight trajectory in the log is exactly the θ history.
    assert_eq!(summary.weight_rounds.len(), diag.theta_history.len());
    for (round, (n_full, theta)) in summary.weight_rounds.iter().zip(&diag.theta_history) {
        assert_eq!(round.n_full, *n_full);
        assert_eq!(&round.theta, theta);
    }
    assert!(
        !summary.weight_rounds.is_empty(),
        "θ should have refreshed at least once"
    );
}

#[test]
fn metrics_registry_matches_run_accounting() {
    let bench = CountingOnes::new(4, 4, 0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut cfg = RunConfig::new(4, 1000.0, 3);
    cfg.faults = Some(FaultSpec::crashes(0.1));
    cfg.telemetry = Telemetry::new().build();
    let mut method = MethodKind::HyperTune.build(&levels, 3);
    let result = run(method.as_mut(), &bench, &cfg);

    // An untouched counter has no entry, so compare through unwrap_or(0).
    let snap = cfg.telemetry.snapshot().unwrap();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(counter("trials.completed"), result.total_evals as u64);
    assert_eq!(
        counter("trials.failed_attempts"),
        result.n_failed_attempts as u64
    );
    assert_eq!(counter("trials.retried"), result.n_retries as u64);
    assert_eq!(counter("trials.quarantined"), result.n_quarantined as u64);
    assert!(result.n_failed_attempts > 0, "faults should have fired");
    // Attempts are fresh dispatches plus retry resubmissions; every one
    // either completes, fails, or is still in flight when the budget runs
    // out (at most one job per worker).
    let attempts = counter("trials.dispatched") as usize + result.n_retries;
    let finished = result.total_evals + result.n_failed_attempts;
    assert!(attempts >= finished);
    assert!(attempts <= finished + 4);
    let costs = snap.histogram("trial.cost").unwrap();
    assert_eq!(costs.count, result.total_evals as u64);
}

proptest! {
    /// Same seed, same trace: two traced runs emit identical event
    /// sequences (sequence numbers, virtual timestamps, payloads) modulo
    /// wall-clock span durations, across seeds and fault rates.
    #[test]
    fn same_seed_runs_emit_identical_event_sequences(seed in 0u64..500, crash in 0.0f64..0.2) {
        let bench = CountingOnes::new(3, 3, 9);
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut cfg = RunConfig::new(3, 400.0, seed);
        if crash > 0.02 {
            cfg.faults = Some(FaultSpec::crashes(crash));
        }
        let mut logs = Vec::new();
        for _ in 0..2 {
            let ring = RingBufferSink::new(1 << 16);
            let mut c = cfg.clone();
            c.telemetry = Telemetry::new().with_sink(ring.clone()).build();
            let mut m = MethodKind::HyperTune.build(&levels, seed);
            let _ = run(m.as_mut(), &bench, &c);
            logs.push(scrub_spans(ring.snapshot()));
        }
        prop_assert!(!logs[0].is_empty());
        prop_assert_eq!(&logs[0], &logs[1]);
        prop_assert!(logs[0].windows(2).all(|w| w[1].seq == w[0].seq + 1));
    }
}
