//! Multi-tenant service tests, matching DESIGN.md §17's claims:
//!
//! 1. **Service ≡ single-study driver** — one study on a one-worker
//!    fleet must produce the same measurement stream, bit-for-bit, as
//!    `run_threaded` at one worker with the same seed. The control
//!    plane must not change the science. Checked on both real
//!    substrates: `ThreadPool` and a loopback `TcpCluster` in
//!    multi-study fleet mode.
//! 2. **Fair share** — two equal-weight studies on a saturated pool
//!    finish trials at a bounded ratio, and a stopped study never
//!    receives a slot.
//! 3. **Restart drill** — kill the service with live studies, recover
//!    from the per-study WALs, and the combined pre/post-kill telemetry
//!    must reconcile to zero duplicated trials *per tenant*, with the
//!    per-study trace summaries agreeing with the service's own
//!    diagnostics.

use std::sync::Arc;
use std::time::Duration;

use hypertune::prelude::*;
use hypertune::registry;
use hypertune::service::BenchResolver;
use serde_json::json;

fn resolver() -> BenchResolver {
    Arc::new(registry::make_bench)
}

fn pool(n: usize) -> ThreadPool<ServiceJob, Eval> {
    ThreadPool::new(n, pool_eval(resolver()))
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hypertune-svc-it-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The parallelism-insensitive fingerprint of a measurement stream:
/// everything but the wall-clock timestamp.
fn keys(ms: &[Measurement]) -> Vec<(Config, usize, u64, u64, u64, u64)> {
    ms.iter()
        .map(|m| {
            (
                m.config.clone(),
                m.level,
                m.resource.to_bits(),
                m.value.to_bits(),
                m.test_value.to_bits(),
                m.cost.to_bits(),
            )
        })
        .collect()
}

/// Serves one in-process worker session in multi-study fleet mode,
/// mirroring `hypertune-worker`'s `multi_study` branch: every dispatch
/// is a [`ServiceJob`] carrying its own benchmark coordinates.
fn spawn_fleet_worker() -> String {
    use hypertune::cluster::EvalFn;
    use serde::{Deserialize, Value};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let opts = WorkerOptions {
        heartbeat_interval: Duration::from_millis(50),
        once: true,
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || {
        serve_worker(listener, opts, move |_hello: &Value| {
            Ok(Box::new(move |payload: &Value| {
                let job = ServiceJob::from_value(payload).expect("well-formed service dispatch");
                let bench =
                    registry::make_bench(&job.bench, job.bench_seed).expect("registered benchmark");
                let eval =
                    bench.evaluate(&job.job.spec.config, job.job.spec.resource, job.bench_seed);
                (JobStatus::Succeeded, serde_json::to_value(&eval))
            }) as EvalFn)
        })
    });
    addr
}

/// Reference stream: the dedicated single-study threaded driver at one
/// worker, no prefetch, completion order fully determined by the seed.
fn reference_stream(seed: u64, max_evals: usize) -> Vec<Measurement> {
    let bench: Arc<dyn Benchmark> =
        Arc::from(registry::make_bench("counting-ones-small", seed).expect("registered benchmark"));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::HyperTune.build(&levels, seed);
    let mut cfg = ThreadedRunConfig::new(1, max_evals, seed);
    cfg.prefetch = false;
    run_threaded(method.as_mut(), bench, &cfg).measurements
}

fn one_worker_spec(seed: u64, max_evals: usize) -> StudySpec {
    StudySpec::new("equiv", "counting-ones-small", MethodKind::HyperTune)
        .with_seed(seed)
        .with_max_evals(max_evals)
        .with_max_in_flight(1)
}

#[test]
fn service_matches_dedicated_driver_on_thread_pool() {
    const SEED: u64 = 7;
    const EVALS: usize = 24;
    let reference = reference_stream(SEED, EVALS);

    let mut svc = TuningService::new(pool(1), resolver(), ServiceConfig::new()).unwrap();
    let h = svc.create_study(one_worker_spec(SEED, EVALS)).unwrap();
    svc.drain().unwrap();

    assert_eq!(svc.status(h), Some(StudyStatus::Completed));
    assert_eq!(
        keys(&reference),
        keys(svc.measurements(h)),
        "the service control plane must not change the study"
    );
}

#[test]
fn service_matches_dedicated_driver_over_tcp() {
    const SEED: u64 = 7;
    const EVALS: usize = 24;
    let reference = reference_stream(SEED, EVALS);

    let addr = spawn_fleet_worker();
    let cluster: TcpCluster<ServiceJob, Eval> = TcpCluster::connect(
        &[addr],
        json!({ "multi_study": true }),
        TcpClusterOptions::default(),
    )
    .expect("loopback connect");
    let mut svc = TuningService::new(cluster, resolver(), ServiceConfig::new()).unwrap();
    let h = svc.create_study(one_worker_spec(SEED, EVALS)).unwrap();
    svc.drain().unwrap();

    assert_eq!(svc.status(h), Some(StudyStatus::Completed));
    assert_eq!(
        keys(&reference),
        keys(svc.measurements(h)),
        "the wire must not change the study either"
    );
}

#[test]
fn equal_weights_split_a_saturated_pool_fairly() {
    const EVALS: usize = 30;
    let mut svc = TuningService::new(pool(2), resolver(), ServiceConfig::new()).unwrap();
    let spec = |name: &str, seed: u64| {
        StudySpec::new(name, "counting-ones-small", MethodKind::ARandom)
            .with_seed(seed)
            .with_max_evals(EVALS)
            .with_max_in_flight(4)
    };
    let a = svc.create_study(spec("a", 1)).unwrap();
    let b = svc.create_study(spec("b", 2)).unwrap();
    // A stopped tenant must never receive a slot afterwards.
    let c = svc.create_study(spec("c", 3)).unwrap();
    svc.stop_study(c).unwrap();

    // Both live studies want 4 slots each on a 2-worker pool: the pool
    // is saturated and every grant is the scheduler's choice.
    let processed = svc.run_completions(40).unwrap();
    assert_eq!(processed, 40, "two live studies have > 40 trials of work");
    let (done_a, done_b) = (svc.completed(a), svc.completed(b));
    assert_eq!(svc.completed(c), 0, "stopped study got a slot");
    assert!(svc.measurements(c).is_empty());
    let (lo, hi) = (done_a.min(done_b), done_a.max(done_b));
    assert!(
        hi <= 2 * lo,
        "equal weights must finish within 2x of each other: a={done_a} b={done_b}"
    );

    svc.drain().unwrap();
    assert_eq!(svc.status(a), Some(StudyStatus::Completed));
    assert_eq!(svc.status(b), Some(StudyStatus::Completed));
    assert_eq!(svc.status(c), Some(StudyStatus::Stopped));
    assert_eq!(svc.completed(a), EVALS);
    assert_eq!(svc.completed(b), EVALS);
}

#[test]
fn restart_drill_recovers_every_tenant_exactly_once() {
    const STUDIES: u64 = 3;
    const EVALS: usize = 12;
    let dir = unique_dir("restart");
    let spec = |i: u64| {
        StudySpec::new(
            format!("tenant-{i}"),
            "counting-ones-small",
            MethodKind::HyperTune,
        )
        .with_seed(i)
        .with_max_evals(EVALS)
        .with_max_in_flight(2)
    };

    // Phase 1: run three studies partway, then "kill" the service by
    // dropping it with trials still in flight.
    let ring1 = RingBufferSink::new(1 << 16);
    let cfg1 = ServiceConfig::new()
        .with_state_dir(&dir)
        .with_telemetry(Telemetry::new().with_sink(ring1.clone()).build());
    let mut svc = TuningService::new(pool(4), resolver(), cfg1).unwrap();
    for i in 0..STUDIES {
        svc.create_study(spec(i)).unwrap();
    }
    let processed = svc.run_completions(10).unwrap();
    assert_eq!(processed, 10, "the kill must land mid-run");
    drop(svc);

    // Phase 2: a fresh service recovers the state directory and drains
    // the survivors.
    let ring2 = RingBufferSink::new(1 << 16);
    let cfg2 = ServiceConfig::new()
        .with_state_dir(&dir)
        .with_telemetry(Telemetry::new().with_sink(ring2.clone()).build());
    let mut svc = TuningService::new(pool(4), resolver(), cfg2).unwrap();
    let recovered = svc.recover().unwrap();
    assert_eq!(recovered.len() as u64, STUDIES);
    svc.drain().unwrap();

    let stats = svc.stats();
    for h in svc.handles() {
        assert_eq!(svc.status(h), Some(StudyStatus::Completed));
        assert_eq!(svc.completed(h), EVALS);
    }

    // Fold both phases' telemetry into one log and reconcile per
    // tenant: no trial may ever complete twice, in any study.
    let mut records = ring1.snapshot();
    records.extend(ring2.snapshot());
    let per_tenant = TraceSummary::per_tenant(&records);
    for (tenant, summary) in &per_tenant {
        let Some(id) = tenant else { continue };
        assert_eq!(
            summary.duplicated_trials(),
            0,
            "study {id} completed a trial twice:\n{}",
            summary.render()
        );
        // Satellite cross-check: the trace's view of each tenant must
        // agree with the service's own diagnostics.
        let completed: usize = summary.levels.values().map(|f| f.completed).sum();
        let quarantined: usize = summary.levels.values().map(|f| f.quarantined).sum();
        let study = stats
            .studies
            .iter()
            .find(|s| s.id == *id)
            .expect("trace tenant unknown to the service");
        assert_eq!(
            completed, study.completed,
            "study {id}: trace and diagnostics disagree on completions"
        );
        assert_eq!(quarantined, study.quarantined);
        assert_eq!(study.generation, 1, "one restart means generation 1");
    }
    assert_eq!(
        per_tenant.iter().filter(|(t, _)| t.is_some()).count() as u64,
        STUDIES
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Smoke-scale TCP rider for the two properties above: fair share and
/// restart recovery also hold when the fleet is a real wire. Two
/// tenants plus a stopped one share a 2-worker loopback fleet; the
/// service is killed mid-run and a fresh service (fresh workers, fresh
/// connections) recovers the state directory and finishes the job.
#[test]
fn fair_share_and_restart_survive_the_wire() {
    const EVALS: usize = 10;
    let dir = unique_dir("tcp-restart");
    let spec = |name: &str, seed: u64| {
        StudySpec::new(name, "counting-ones-small", MethodKind::ARandom)
            .with_seed(seed)
            .with_max_evals(EVALS)
            .with_max_in_flight(2)
    };
    let connect = || -> TcpCluster<ServiceJob, Eval> {
        let addrs: Vec<String> = (0..2).map(|_| spawn_fleet_worker()).collect();
        TcpCluster::connect(
            &addrs,
            json!({ "multi_study": true }),
            TcpClusterOptions::default(),
        )
        .expect("loopback connect")
    };

    let ring1 = RingBufferSink::new(1 << 16);
    let cfg1 = ServiceConfig::new()
        .with_state_dir(&dir)
        .with_telemetry(Telemetry::new().with_sink(ring1.clone()).build());
    let mut svc = TuningService::new(connect(), resolver(), cfg1).unwrap();
    let a = svc.create_study(spec("a", 1)).unwrap();
    let b = svc.create_study(spec("b", 2)).unwrap();
    let c = svc.create_study(spec("c", 3)).unwrap();
    svc.stop_study(c).unwrap();
    let processed = svc.run_completions(8).unwrap();
    assert_eq!(processed, 8, "the kill must land mid-run");
    let (done_a, done_b) = (svc.completed(a), svc.completed(b));
    assert!(
        done_a > 0 && done_b > 0 && done_a.abs_diff(done_b) <= 4,
        "equal weights must share the wire: a={done_a} b={done_b}"
    );
    assert_eq!(svc.completed(c), 0, "stopped study got a slot");
    drop(svc);

    let ring2 = RingBufferSink::new(1 << 16);
    let cfg2 = ServiceConfig::new()
        .with_state_dir(&dir)
        .with_telemetry(Telemetry::new().with_sink(ring2.clone()).build());
    let mut svc = TuningService::new(connect(), resolver(), cfg2).unwrap();
    let recovered = svc.recover().unwrap();
    assert_eq!(recovered.len(), 3);
    svc.drain().unwrap();
    assert_eq!(svc.status(a), Some(StudyStatus::Completed));
    assert_eq!(svc.status(b), Some(StudyStatus::Completed));
    assert_eq!(svc.status(c), Some(StudyStatus::Stopped));
    assert_eq!(svc.completed(a), EVALS);
    assert_eq!(svc.completed(b), EVALS);

    let mut records = ring1.snapshot();
    records.extend(ring2.snapshot());
    for (tenant, summary) in &TraceSummary::per_tenant(&records) {
        let Some(id) = tenant else { continue };
        assert_eq!(
            summary.duplicated_trials(),
            0,
            "study {id} completed a trial twice over the wire:\n{}",
            summary.render()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
