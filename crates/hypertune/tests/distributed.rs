//! Loopback tests for the TCP substrate: substrate equivalence and
//! exactly-once accounting under real process death.
//!
//! Three layers of evidence, matching DESIGN.md §16's claims:
//!
//! 1. **TcpCluster ≡ ThreadPool** — at one worker (deterministic
//!    completion order) the two real substrates must produce the same
//!    measurement stream bit-for-bit, with either driver.
//! 2. **TcpCluster ≡ SimCluster** — the simulator at one worker emits
//!    the identical suggestion/measurement stream, so a TCP study's
//!    best configuration equals the sim's over the same eval prefix.
//! 3. **kill -9 exactly-once** — a real `hypertune-worker` *process*
//!    SIGKILLed mid-evaluation must surface as an orphan, be retried,
//!    and leave a telemetry trace whose reconciliation shows zero
//!    duplicated completions.

use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use hypertune::core::run_distributed;
use hypertune::prelude::*;
use hypertune::registry;
use serde_json::json;

/// Serves one in-process worker session for `bench_name`, mirroring the
/// `hypertune-worker` binary's evaluator (same registry, same seed
/// plumbing) without the process-spawn overhead.
fn spawn_inproc_worker(bench_name: &'static str, seed: u64) -> String {
    use hypertune::cluster::EvalFn;
    use serde::{Deserialize, Value};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let opts = WorkerOptions {
        heartbeat_interval: Duration::from_millis(50),
        once: true,
    };
    std::thread::spawn(move || {
        serve_worker(listener, opts, move |_hello: &Value| {
            let bench = registry::make_bench(bench_name, seed).expect("registered bench");
            Ok(Box::new(move |payload: &Value| {
                let job = ThreadedJob::from_value(payload).expect("well-formed dispatch");
                let eval = bench.evaluate(&job.spec.config, job.spec.resource, seed);
                (JobStatus::Succeeded, serde_json::to_value(&eval))
            }) as EvalFn)
        })
    });
    addr
}

fn connect_one(addr: String, seed: u64) -> TcpCluster<ThreadedJob, Eval> {
    TcpCluster::connect(
        &[addr],
        json!({"bench": "counting-ones-small", "seed": seed}),
        TcpClusterOptions::default(),
    )
    .expect("loopback connect")
}

/// The parallelism-insensitive fingerprint of a measurement stream:
/// everything but the wall-clock timestamp.
fn keys(ms: &[Measurement]) -> Vec<(Config, usize, u64, u64, u64, u64)> {
    ms.iter()
        .map(|m| {
            (
                m.config.clone(),
                m.level,
                m.resource.to_bits(),
                m.value.to_bits(),
                m.test_value.to_bits(),
                m.cost.to_bits(),
            )
        })
        .collect()
}

#[test]
fn tcp_matches_thread_pool_bit_identical_at_one_worker() {
    const SEED: u64 = 5;
    for prefetch in [false, true] {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, SEED));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut cfg = ThreadedRunConfig::new(1, 30, SEED);
        cfg.prefetch = prefetch;

        let mut m_pool = MethodKind::HyperTune.build(&levels, SEED);
        let pool_run = run_threaded(m_pool.as_mut(), Arc::clone(&bench), &cfg);

        let addr = spawn_inproc_worker("counting-ones-small", SEED);
        let cluster = connect_one(addr, SEED);
        let mut m_tcp = MethodKind::HyperTune.build(&levels, SEED);
        let tcp_run = run_distributed(m_tcp.as_mut(), bench.space(), &levels, cluster, &cfg);

        assert_eq!(
            keys(&pool_run.measurements),
            keys(&tcp_run.measurements),
            "prefetch={prefetch}: the wire must not change the study"
        );
        assert_eq!(
            pool_run.best_value.to_bits(),
            tcp_run.best_value.to_bits(),
            "prefetch={prefetch}"
        );
        assert_eq!(pool_run.best_config, tcp_run.best_config);
    }
}

#[test]
fn tcp_matches_sim_stream_and_best_config_at_one_worker() {
    const SEED: u64 = 11;
    const EVALS: usize = 40;
    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);

    // Sim: generous virtual budget, then truncate to the same prefix.
    let mut m_sim = MethodKind::HyperTune.build(&levels, SEED);
    let sim = run(
        m_sim.as_mut(),
        bench.as_ref(),
        &RunConfig::new(1, 1000.0, SEED),
    );
    assert!(
        sim.measurements.len() >= EVALS,
        "budget too small for prefix"
    );

    let addr = spawn_inproc_worker("counting-ones-small", SEED);
    let cluster = connect_one(addr, SEED);
    let mut m_tcp = MethodKind::HyperTune.build(&levels, SEED);
    let mut cfg = ThreadedRunConfig::new(1, EVALS, SEED);
    cfg.prefetch = false;
    let tcp = run_distributed(m_tcp.as_mut(), bench.space(), &levels, cluster, &cfg);

    // The streams agree measurement-for-measurement...
    assert_eq!(keys(&sim.measurements[..EVALS]), keys(&tcp.measurements));
    // ...so the best configuration over the shared prefix is the same
    // config (the ISSUE acceptance criterion, in its strongest form).
    // "Best" follows `HistoryRead::incumbent`: the best *complete*
    // (full-resource) evaluation, falling back to any level.
    let max_r = bench.max_resource();
    let prefix = &sim.measurements[..EVALS];
    let by_value = |a: &&Measurement, b: &&Measurement| a.value.total_cmp(&b.value);
    let sim_best = prefix
        .iter()
        .filter(|m| m.resource == max_r)
        .min_by(by_value)
        .or_else(|| prefix.iter().min_by(by_value))
        .expect("non-empty prefix");
    assert_eq!(Some(&sim_best.config), tcp.best_config.as_ref());
    assert_eq!(sim_best.value.to_bits(), tcp.best_value.to_bits());
}

/// Spawns a real `hypertune-worker` process and parses its bound address
/// off stdout.
fn spawn_worker_process() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hypertune-worker"))
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hypertune-worker");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    use std::io::BufRead;
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("worker announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn kill_nine_mid_run_is_exactly_once() {
    const SEED: u64 = 9;
    let (mut victim, addr_a) = spawn_worker_process();
    let (mut survivor, addr_b) = spawn_worker_process();

    // 60ms per eval: slow enough that the victim is reliably
    // mid-evaluation when the SIGKILL lands, fast enough for CI.
    let hello = json!({"bench": "counting-ones-small", "seed": SEED, "sleep_ms": 60});
    let cluster: TcpCluster<ThreadedJob, Eval> = TcpCluster::connect(
        &[addr_a, addr_b],
        hello,
        TcpClusterOptions {
            lease_timeout: Duration::from_secs(2),
        },
    )
    .expect("connect to both worker processes");

    // SIGKILL the first worker shortly into the run, from a side thread
    // (the driver thread is busy inside run_distributed).
    let killer = {
        let pid = victim.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            nix_kill(pid);
        })
    };

    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::HyperTune.build(&levels, SEED);
    let ring = RingBufferSink::new(1 << 16);
    let mut cfg = ThreadedRunConfig::new(2, 25, SEED);
    cfg.telemetry = Telemetry::new().with_sink(ring.clone()).build();
    let result = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &cfg);

    killer.join().unwrap();
    let _ = victim.kill();
    let _ = victim.wait();
    let _ = survivor.kill();
    let _ = survivor.wait();

    assert_eq!(result.total_evals, 25, "the run must finish on one worker");
    assert!(
        result.n_orphaned >= 1,
        "the SIGKILLed worker's job must orphan (orphaned={})",
        result.n_orphaned
    );
    assert!(
        result.n_retries >= 1,
        "the orphan must re-enter the retry path"
    );

    // Exactly-once, by the book: fold the trace and reconcile.
    let summary = TraceSummary::from_records(&ring.snapshot());
    assert_eq!(
        summary.duplicated_trials(),
        0,
        "no trial may complete twice:\n{}",
        summary.render()
    );
    assert!(
        summary.render().contains("0 duplicated"),
        "trace-report must show `0 duplicated`"
    );
    for m in &result.measurements {
        assert!(m.value.is_finite(), "orphans must never enter history");
    }
}

/// A literal `kill -9` by pid. `Child::kill` also sends SIGKILL on
/// unix, but it needs `&mut Child`, which the main thread still owns
/// for the post-run `wait`; the killer thread only gets the pid.
fn nix_kill(pid: u32) {
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
}
