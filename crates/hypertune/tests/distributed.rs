//! Loopback tests for the TCP substrate: substrate equivalence and
//! exactly-once accounting under real process death.
//!
//! Three layers of evidence, matching DESIGN.md §16's claims:
//!
//! 1. **TcpCluster ≡ ThreadPool** — at one worker (deterministic
//!    completion order) the two real substrates must produce the same
//!    measurement stream bit-for-bit, with either driver.
//! 2. **TcpCluster ≡ SimCluster** — the simulator at one worker emits
//!    the identical suggestion/measurement stream, so a TCP study's
//!    best configuration equals the sim's over the same eval prefix.
//! 3. **kill -9 exactly-once** — a real `hypertune-worker` *process*
//!    SIGKILLed mid-evaluation must surface as an orphan, be retried,
//!    and leave a telemetry trace whose reconciliation shows zero
//!    duplicated completions.

use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use hypertune::core::run_distributed;
use hypertune::prelude::*;
use hypertune::registry;
use serde_json::json;

/// Serves one in-process worker session for `bench_name`, mirroring the
/// `hypertune-worker` binary's evaluator (same registry, same seed
/// plumbing) without the process-spawn overhead.
fn spawn_inproc_worker(bench_name: &'static str, seed: u64) -> String {
    spawn_inproc_worker_with(bench_name, seed, 1, Codec::Binary)
}

fn spawn_inproc_worker_with(
    bench_name: &'static str,
    seed: u64,
    slots: usize,
    codec: Codec,
) -> String {
    use hypertune::cluster::EvalFn;
    use serde::{Deserialize, Value};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let opts = WorkerOptions {
        heartbeat_interval: Duration::from_millis(50),
        once: true,
        slots,
        codec,
    };
    std::thread::spawn(move || {
        serve_worker(listener, opts, move |_hello: &Value| {
            let bench = registry::make_bench(bench_name, seed).expect("registered bench");
            Ok(Box::new(move |payload: &Value| {
                let job = ThreadedJob::from_value(payload).expect("well-formed dispatch");
                let eval = bench.evaluate(&job.spec.config, job.spec.resource, seed);
                (JobStatus::Succeeded, serde_json::to_value(&eval))
            }) as EvalFn)
        })
    });
    addr
}

fn connect_one(addr: String, seed: u64) -> TcpCluster<ThreadedJob, Eval> {
    connect_fleet(vec![addr], seed, Codec::Binary)
}

fn connect_fleet(addrs: Vec<String>, seed: u64, codec: Codec) -> TcpCluster<ThreadedJob, Eval> {
    TcpCluster::connect(
        &addrs,
        json!({"bench": "counting-ones-small", "seed": seed}),
        TcpClusterOptions {
            codec,
            ..TcpClusterOptions::default()
        },
    )
    .expect("loopback connect")
}

/// The parallelism-insensitive fingerprint of a measurement stream:
/// everything but the wall-clock timestamp.
fn keys(ms: &[Measurement]) -> Vec<(Config, usize, u64, u64, u64, u64)> {
    ms.iter()
        .map(|m| {
            (
                m.config.clone(),
                m.level,
                m.resource.to_bits(),
                m.value.to_bits(),
                m.test_value.to_bits(),
                m.cost.to_bits(),
            )
        })
        .collect()
}

#[test]
fn tcp_matches_thread_pool_bit_identical_at_one_worker() {
    const SEED: u64 = 5;
    for prefetch in [false, true] {
        let bench: Arc<dyn Benchmark> = Arc::new(CountingOnes::new(4, 4, SEED));
        let levels = ResourceLevels::new(bench.max_resource(), 3);
        let mut cfg = ThreadedRunConfig::new(1, 30, SEED);
        cfg.prefetch = prefetch;

        let mut m_pool = MethodKind::HyperTune.build(&levels, SEED);
        let pool_run = run_threaded(m_pool.as_mut(), Arc::clone(&bench), &cfg);

        let addr = spawn_inproc_worker("counting-ones-small", SEED);
        let cluster = connect_one(addr, SEED);
        let mut m_tcp = MethodKind::HyperTune.build(&levels, SEED);
        let tcp_run = run_distributed(m_tcp.as_mut(), bench.space(), &levels, cluster, &cfg);

        assert_eq!(
            keys(&pool_run.measurements),
            keys(&tcp_run.measurements),
            "prefetch={prefetch}: the wire must not change the study"
        );
        assert_eq!(
            pool_run.best_value.to_bits(),
            tcp_run.best_value.to_bits(),
            "prefetch={prefetch}"
        );
        assert_eq!(pool_run.best_config, tcp_run.best_config);
    }
}

#[test]
fn tcp_matches_sim_stream_and_best_config_at_one_worker() {
    const SEED: u64 = 11;
    const EVALS: usize = 40;
    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);

    // Sim: generous virtual budget, then truncate to the same prefix.
    let mut m_sim = MethodKind::HyperTune.build(&levels, SEED);
    let sim = run(
        m_sim.as_mut(),
        bench.as_ref(),
        &RunConfig::new(1, 1000.0, SEED),
    );
    assert!(
        sim.measurements.len() >= EVALS,
        "budget too small for prefix"
    );

    let addr = spawn_inproc_worker("counting-ones-small", SEED);
    let cluster = connect_one(addr, SEED);
    let mut m_tcp = MethodKind::HyperTune.build(&levels, SEED);
    let mut cfg = ThreadedRunConfig::new(1, EVALS, SEED);
    cfg.prefetch = false;
    let tcp = run_distributed(m_tcp.as_mut(), bench.space(), &levels, cluster, &cfg);

    // The streams agree measurement-for-measurement...
    assert_eq!(keys(&sim.measurements[..EVALS]), keys(&tcp.measurements));
    // ...so the best configuration over the shared prefix is the same
    // config (the ISSUE acceptance criterion, in its strongest form).
    // "Best" follows `HistoryRead::incumbent`: the best *complete*
    // (full-resource) evaluation, falling back to any level.
    let max_r = bench.max_resource();
    let prefix = &sim.measurements[..EVALS];
    let by_value = |a: &&Measurement, b: &&Measurement| a.value.total_cmp(&b.value);
    let sim_best = prefix
        .iter()
        .filter(|m| m.resource == max_r)
        .min_by(by_value)
        .or_else(|| prefix.iter().min_by(by_value))
        .expect("non-empty prefix");
    assert_eq!(Some(&sim_best.config), tcp.best_config.as_ref());
    assert_eq!(sim_best.value.to_bits(), tcp.best_value.to_bits());
}

/// Runs one width-1 Hyper-Tune study over loopback with the given worker
/// slots and negotiated codec, returning its measurement stream.
fn run_study(seed: u64, slots: usize, codec: Codec) -> ThreadedRunResult {
    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, seed));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let addr = spawn_inproc_worker_with("counting-ones-small", seed, slots, codec);
    let cluster = connect_fleet(vec![addr], seed, codec);
    let mut method = MethodKind::HyperTune.build(&levels, seed);
    // A slots=N worker gives the driver N units of in-flight capacity,
    // so the config's width is the fleet's total slot count.
    let mut cfg = ThreadedRunConfig::new(slots, 30, seed);
    cfg.prefetch = false;
    run_distributed(method.as_mut(), bench.space(), &levels, cluster, &cfg)
}

#[test]
fn binary_codec_stream_is_bit_identical_to_json() {
    // The ISSUE acceptance bar: the codec is transport, not policy.
    // The same study over JSON framing and over the binary codec must
    // produce byte-for-byte identical measurement streams — f64s cross
    // the wire bit-exact in both encodings.
    const SEED: u64 = 17;
    let json_run = run_study(SEED, 1, Codec::Json);
    let bin_run = run_study(SEED, 1, Codec::Binary);
    assert_eq!(
        keys(&json_run.measurements),
        keys(&bin_run.measurements),
        "codec must not change the study"
    );
    assert_eq!(json_run.best_value.to_bits(), bin_run.best_value.to_bits());
    assert_eq!(json_run.best_config, bin_run.best_config);
}

#[test]
fn multi_slot_pipeline_is_deterministic_and_codec_invariant() {
    // Pipelining changes *when* the driver sees results relative to its
    // own dispatching (a slots=4 worker acks four dispatches before the
    // first completes), so a history-conditioned method like Hyper-Tune
    // legitimately explores a different (but deterministic) trajectory
    // than at slots=1. Pin what must hold: the slots=4 stream is
    // reproducible run-over-run, and invariant to the wire codec.
    const SEED: u64 = 23;
    let a = run_study(SEED, 4, Codec::Binary);
    let b = run_study(SEED, 4, Codec::Binary);
    assert_eq!(
        keys(&a.measurements),
        keys(&b.measurements),
        "slots=4 must be deterministic"
    );
    let j = run_study(SEED, 4, Codec::Json);
    assert_eq!(
        keys(&a.measurements),
        keys(&j.measurements),
        "slots=4 must be codec-invariant"
    );
}

#[test]
fn pending_insensitive_method_is_slot_invariant() {
    // Asynchronous random search suggests from a seeded RNG that never
    // consults completions, so for it the slot count cannot matter at
    // all: slots=4 ≡ slots=1, bit for bit.
    const SEED: u64 = 29;
    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut streams = Vec::new();
    for slots in [1usize, 4] {
        let addr = spawn_inproc_worker_with("counting-ones-small", SEED, slots, Codec::Binary);
        let cluster = connect_fleet(vec![addr], SEED, Codec::Binary);
        let mut method = MethodKind::ARandom.build(&levels, SEED);
        let mut cfg = ThreadedRunConfig::new(slots, 30, SEED);
        cfg.prefetch = false;
        let run = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &cfg);
        streams.push(keys(&run.measurements));
    }
    assert_eq!(streams[0], streams[1], "slots must be invisible to ARandom");
}

#[test]
fn mixed_version_fleet_matches_uniform_fleets() {
    // The mixed-version drill: a fleet with one v1 (JSON-pinned) worker
    // and one binary worker must evaluate exactly the same trials as a
    // uniform fleet of either codec. With ARandom the suggestion
    // sequence is completion-independent, so the *multiset* of
    // measurements is pinned even though two real workers race; compare
    // sorted fingerprints.
    const SEED: u64 = 37;
    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let fleet = |worker_codecs: [Codec; 2]| {
        let addrs: Vec<String> = worker_codecs
            .iter()
            .map(|&c| spawn_inproc_worker_with("counting-ones-small", SEED, 1, c))
            .collect();
        let cluster = connect_fleet(addrs, SEED, Codec::Binary);
        let mut method = MethodKind::ARandom.build(&levels, SEED);
        let cfg = ThreadedRunConfig::new(2, 30, SEED);
        let run = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &cfg);
        // Config is not Ord; a Debug rendering is a faithful stand-in
        // for sorting (it shows every value bit-exactly).
        let mut ks: Vec<String> = keys(&run.measurements)
            .into_iter()
            .map(|k| format!("{k:?}"))
            .collect();
        ks.sort();
        ks
    };
    let mixed = fleet([Codec::Json, Codec::Binary]);
    let all_binary = fleet([Codec::Binary, Codec::Binary]);
    let all_json = fleet([Codec::Json, Codec::Json]);
    assert_eq!(mixed, all_binary, "mixed fleet must match all-binary");
    assert_eq!(mixed, all_json, "mixed fleet must match all-json");
}

/// Spawns a real `hypertune-worker` process and parses its bound address
/// off stdout.
fn spawn_worker_process() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hypertune-worker"))
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hypertune-worker");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    use std::io::BufRead;
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("worker announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn kill_nine_mid_run_is_exactly_once() {
    const SEED: u64 = 9;
    let (mut victim, addr_a) = spawn_worker_process();
    let (mut survivor, addr_b) = spawn_worker_process();

    // 60ms per eval: slow enough that the victim is reliably
    // mid-evaluation when the SIGKILL lands, fast enough for CI.
    let hello = json!({"bench": "counting-ones-small", "seed": SEED, "sleep_ms": 60});
    let cluster: TcpCluster<ThreadedJob, Eval> = TcpCluster::connect(
        &[addr_a, addr_b],
        hello,
        TcpClusterOptions {
            lease_timeout: Duration::from_secs(2),
            ..TcpClusterOptions::default()
        },
    )
    .expect("connect to both worker processes");

    // SIGKILL the first worker shortly into the run, from a side thread
    // (the driver thread is busy inside run_distributed).
    let killer = {
        let pid = victim.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            nix_kill(pid);
        })
    };

    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::HyperTune.build(&levels, SEED);
    let ring = RingBufferSink::new(1 << 16);
    let mut cfg = ThreadedRunConfig::new(2, 25, SEED);
    cfg.telemetry = Telemetry::new().with_sink(ring.clone()).build();
    let result = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &cfg);

    killer.join().unwrap();
    let _ = victim.kill();
    let _ = victim.wait();
    let _ = survivor.kill();
    let _ = survivor.wait();

    assert_eq!(result.total_evals, 25, "the run must finish on one worker");
    assert!(
        result.n_orphaned >= 1,
        "the SIGKILLed worker's job must orphan (orphaned={})",
        result.n_orphaned
    );
    assert!(
        result.n_retries >= 1,
        "the orphan must re-enter the retry path"
    );

    // Exactly-once, by the book: fold the trace and reconcile.
    let summary = TraceSummary::from_records(&ring.snapshot());
    assert_eq!(
        summary.duplicated_trials(),
        0,
        "no trial may complete twice:\n{}",
        summary.render()
    );
    assert!(
        summary.render().contains("0 duplicated"),
        "trace-report must show `0 duplicated`"
    );
    for m in &result.measurements {
        assert!(m.value.is_finite(), "orphans must never enter history");
    }
}

/// A literal `kill -9` by pid. `Child::kill` also sends SIGKILL on
/// unix, but it needs `&mut Child`, which the main thread still owns
/// for the post-run `wait`; the killer thread only gets the pid.
fn nix_kill(pid: u32) {
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
}

#[test]
fn partition_drill_redials_under_new_epoch_exactly_once() {
    // The tentpole drill (DESIGN.md §16.4): a real worker process behind
    // the chaos proxy, a blackhole window mid-run. The driver's lease
    // expires inside the window (orphaning the in-flight trial), the
    // redial loop hammers the dead address until the partition heals,
    // the worker's serial accept loop re-admits the driver under a new
    // session epoch, and the run finishes — with zero duplicated trials.
    const SEED: u64 = 41;
    let (mut worker, addr) = spawn_worker_process();

    let ring = RingBufferSink::new(1 << 16);
    let telemetry = Telemetry::new().with_sink(ring.clone()).build();
    // Blackhole from t=300ms for 1000ms: both directions stall, redial
    // attempts inside the window are accepted-then-dropped (fast fail).
    let proxy = ChaosProxy::launch(
        addr.as_str(),
        ChaosPlan::partition(300, 1000),
        telemetry.clone(),
    )
    .expect("launch chaos proxy");

    // 40ms per eval keeps the worker mid-job when the window opens;
    // lease 700ms (vs the worker's 250ms heartbeat) expires only when
    // heartbeats are genuinely severed.
    let hello = json!({"bench": "counting-ones-small", "seed": SEED, "sleep_ms": 40});
    let cluster: TcpCluster<ThreadedJob, Eval> = TcpCluster::connect(
        &[proxy.addr().to_string()],
        hello,
        TcpClusterOptions {
            lease_timeout: Duration::from_millis(700),
            reconnect: ReconnectPolicy {
                max_attempts: 60,
                base_backoff: Duration::from_millis(25),
                max_backoff: Duration::from_millis(100),
                jitter_seed: SEED,
            },
            ..TcpClusterOptions::default()
        },
    )
    .expect("connect through the chaos proxy");

    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::HyperTune.build(&levels, SEED);
    let mut cfg = ThreadedRunConfig::new(1, 25, SEED);
    cfg.prefetch = false;
    cfg.telemetry = telemetry.clone();
    let result = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &cfg);

    let _ = worker.kill();
    let _ = worker.wait();

    assert_eq!(
        result.total_evals, 25,
        "the run must finish once the partition heals (orphaned={}, retries={})",
        result.n_orphaned, result.n_retries
    );
    assert!(
        result.n_orphaned >= 1,
        "the partitioned worker's in-flight trial must orphan"
    );

    let summary = TraceSummary::from_records(&ring.snapshot());
    assert!(
        summary.workers_reconnected >= 1,
        "the driver must redial back in under a new epoch:\n{}",
        summary.render()
    );
    assert!(
        summary
            .chaos_injected
            .get("blackhole")
            .copied()
            .unwrap_or(0)
            >= 1,
        "the proxy must announce the blackhole window"
    );
    assert_eq!(
        summary.duplicated_trials(),
        0,
        "epoch fencing must keep the drill exactly-once:\n{}",
        summary.render()
    );
    assert!(
        summary.render().contains("0 duplicated"),
        "trace-report must show `0 duplicated`"
    );
    for m in &result.measurements {
        assert!(m.value.is_finite(), "orphans must never enter history");
    }
}

#[test]
fn chaos_free_proxy_and_armed_redial_are_bit_identical_to_plain_tcp() {
    // The do-no-harm pin: routing through a ChaosProxy with an empty
    // plan AND arming the reconnect policy must not perturb the study —
    // the measurement stream stays bit-identical to a plain TCP run
    // with the defaults (redial disabled, no proxy).
    const SEED: u64 = 43;
    let plain = run_study(SEED, 1, Codec::Binary);

    let addr = spawn_inproc_worker_with("counting-ones-small", SEED, 1, Codec::Binary);
    let proxy = ChaosProxy::launch(
        addr.as_str(),
        ChaosPlan::none(),
        TelemetryHandle::disabled(),
    )
    .expect("launch chaos proxy");
    let cluster: TcpCluster<ThreadedJob, Eval> = TcpCluster::connect(
        &[proxy.addr().to_string()],
        json!({"bench": "counting-ones-small", "seed": SEED}),
        TcpClusterOptions {
            reconnect: ReconnectPolicy::with_attempts(8, SEED),
            ..TcpClusterOptions::default()
        },
    )
    .expect("connect through the idle proxy");
    let bench: Box<dyn Benchmark> = Box::new(CountingOnes::new(4, 4, SEED));
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::HyperTune.build(&levels, SEED);
    let mut cfg = ThreadedRunConfig::new(1, 30, SEED);
    cfg.prefetch = false;
    let proxied = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &cfg);

    assert_eq!(
        keys(&plain.measurements),
        keys(&proxied.measurements),
        "an idle proxy and an armed (unused) redial policy must not change the study"
    );
    assert_eq!(plain.best_value.to_bits(), proxied.best_value.to_bits());
    assert_eq!(plain.best_config, proxied.best_config);
}
