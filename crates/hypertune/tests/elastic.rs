//! Contract tests for elastic execution (worker churn, lease recovery,
//! speculation, degradation ladder):
//!
//! - with a **static** membership plan and speculation/breaker disabled,
//!   the elastic code paths must be invisible — every method in the
//!   registry produces a bit-identical run;
//! - with churn and speculation **enabled**, runs stay deterministic per
//!   seed and account for every dispatched trial exactly once.

use hypertune::prelude::*;
use proptest::prelude::*;

/// Bitwise fingerprint of a run: the full measurement stream plus the
/// anytime curve (timestamps included — the simulator is deterministic).
fn fingerprint(r: &RunResult) -> Vec<(Config, usize, u64, u64, u64, u64, u64)> {
    r.measurements
        .iter()
        .map(|m| {
            (
                m.config.clone(),
                m.level,
                m.resource.to_bits(),
                m.value.to_bits(),
                m.test_value.to_bits(),
                m.cost.to_bits(),
                m.finished_at.to_bits(),
            )
        })
        .collect()
}

fn run_with(kind: MethodKind, bench: &CountingOnes, config: &RunConfig) -> RunResult {
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = kind.build(&levels, config.seed);
    run(method.as_mut(), bench, config)
}

/// The tentpole invariant: handing the runner a membership plan with no
/// events (and leaving speculation and the breaker off) must not perturb
/// a single bit of any method's run.
#[test]
fn static_plan_is_invisible_for_every_method() {
    let bench = CountingOnes::new(3, 4, 0);
    for &kind in MethodKind::all() {
        let plain = RunConfig::new(4, 400.0, 17);
        let mut elastic = RunConfig::new(4, 400.0, 17);
        elastic.membership = Some(MembershipPlan::static_plan());
        let a = run_with(kind, &bench, &plain);
        let b = run_with(kind, &bench, &elastic);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} diverged under a static membership plan",
            kind.name()
        );
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        assert_eq!(a.best_value.to_bits(), b.best_value.to_bits());
        assert_eq!(b.n_orphaned, 0);
        assert_eq!(b.n_speculations, 0);
        assert_eq!(b.n_breaker_trips, 0);
    }
}

/// Churn + speculation + breaker all enabled at once: the full elastic
/// configuration every run below uses.
fn chaos_config(seed: u64) -> RunConfig {
    let mut config = RunConfig::new(6, 900.0, seed);
    config.membership = Some(
        MembershipPlan::worker_crashes(0.08, Some(5.0), seed ^ 0xc4a5).with_lease_timeout(10.0),
    );
    config.speculation = Some(SpeculationConfig::default());
    config.breaker = Some(BreakerConfig::default());
    config.retry = RetryPolicy::default_policy();
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Elastic runs are a pure function of the seed: two runs with
    /// identical churn, speculation, and breaker settings agree bit for
    /// bit — including every robustness counter — and the failure
    /// accounting reconciles (each orphaned attempt is counted exactly
    /// once, never double-booked as both a failure and a success).
    #[test]
    fn chaotic_runs_are_deterministic_per_seed(seed in 0u64..500) {
        let bench = CountingOnes::new(3, 4, 0);
        for kind in [MethodKind::Asha, MethodKind::HyperTune] {
            let a = run_with(kind, &bench, &chaos_config(seed));
            let b = run_with(kind, &bench, &chaos_config(seed));
            prop_assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "{} not deterministic under churn",
                kind.name()
            );
            prop_assert_eq!(a.n_orphaned, b.n_orphaned);
            prop_assert_eq!(a.n_speculations, b.n_speculations);
            prop_assert_eq!(a.n_backup_wins, b.n_backup_wins);
            prop_assert_eq!(a.n_breaker_trips, b.n_breaker_trips);
            prop_assert_eq!(a.n_retries, b.n_retries);
            prop_assert_eq!(a.n_quarantined, b.n_quarantined);
            // Exactly-once accounting: orphaned attempts all surface in
            // the per-status failure breakdown, and no trial is counted
            // as both retried and quarantined.
            prop_assert_eq!(a.failure_counts.orphaned, a.n_orphaned);
            prop_assert!(a.n_retries + a.n_quarantined <= a.n_failed_attempts);
            prop_assert!(a.n_backup_wins <= a.n_speculations);
            prop_assert!(a.total_evals > 0, "{} made no progress", kind.name());
            for m in &a.measurements {
                prop_assert!(m.value.is_finite());
            }
        }
    }
}
