//! Integration tests for checkpoint/resume across the full stack.

use hypertune::core::persist::{Checkpoint, RunRecord};
use hypertune::core::History;
use hypertune::prelude::*;

#[test]
fn checkpoint_roundtrips_a_real_run_history() {
    // Run Hyper-Tune, snapshot its measurements via RunResult, rebuild a
    // history, and verify the incumbent matches.
    let bench = tasks::nas_cifar10_valid(0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::HyperTune.build(&levels, 5);
    let r = run(method.as_mut(), &bench, &RunConfig::new(4, 5000.0, 5));

    let mut history = History::new(levels.clone());
    for m in &r.measurements {
        history.record(m.clone());
    }
    let cp = Checkpoint::from_history(&history);
    let dir = std::env::temp_dir().join("hypertune-it-persist");
    let path = dir.join("run.json");
    cp.save(&path).unwrap();
    let restored = Checkpoint::load(&path).unwrap().into_history();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(restored.len(), r.total_evals);
    assert_eq!(
        restored.incumbent().map(|m| m.value),
        history.incumbent().map(|m| m.value)
    );
}

#[test]
fn resumed_theta_matches_uninterrupted_theta() {
    // θ is a pure function of the history, so computing it on a restored
    // checkpoint must give the same weights as on the live history.
    use hypertune::core::ranking::compute_theta;
    let bench = tasks::xgboost_covertype(0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::AHyperband.build(&levels, 9);
    let r = run(method.as_mut(), &bench, &RunConfig::new(8, 2.0 * 3600.0, 9));

    let mut live = History::new(levels.clone());
    for m in &r.measurements {
        live.record(m.clone());
    }
    let restored = Checkpoint::from_history(&live).into_history();
    let a = compute_theta(&live, bench.space(), 3);
    let b = compute_theta(&restored, bench.space(), 3);
    assert_eq!(a, b);
}

#[test]
fn run_records_archive_a_figure_worth_of_runs() {
    let bench = CountingOnes::new(4, 4, 0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut records = Vec::new();
    for kind in [MethodKind::ARandom, MethodKind::Asha, MethodKind::HyperTune] {
        let mut m = kind.build(&levels, 3);
        let r = run(m.as_mut(), &bench, &RunConfig::new(4, 800.0, 3));
        records.push(RunRecord::from(&r));
    }
    let json = serde_json::to_string(&records).unwrap();
    let back: Vec<RunRecord> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 3);
    assert_eq!(back[2].method, "Hyper-Tune");
    for rec in &back {
        assert!(rec.total_evals > 0);
        assert!(rec.curve.windows(2).all(|w| w[1].value <= w[0].value));
    }
}

#[test]
fn measurements_in_runresult_match_evals_per_level() {
    let bench = tasks::lstm_ptb(0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut method = MethodKind::Asha.build(&levels, 2);
    let r = run(method.as_mut(), &bench, &RunConfig::new(4, 2.0 * 3600.0, 2));
    let mut per_level = vec![0usize; levels.k()];
    for m in &r.measurements {
        per_level[m.level] += 1;
    }
    assert_eq!(per_level, r.evals_per_level);
    // Completion order is time-ordered.
    for w in r.measurements.windows(2) {
        assert!(w[0].finished_at <= w[1].finished_at);
    }
}

#[test]
fn snapshot_resume_is_bit_identical_on_a_real_task() {
    // The full WAL-replay path on a realistic benchmark with faults on:
    // run, checkpoint mid-flight, "crash", resume from disk, and compare
    // every measurement bit-for-bit.
    let bench = tasks::nas_cifar10_valid(0);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let mut cfg = RunConfig::new(4, 4000.0, 17);
    cfg.faults = Some(FaultSpec::crashes(0.1));

    let mut m_full = MethodKind::HyperTune.build(&levels, 17);
    let full = run(m_full.as_mut(), &bench, &cfg);
    assert!(full.n_failed_attempts > 0, "faults should have fired");

    let dir = std::env::temp_dir().join("hypertune-it-snapshot-resume");
    let path = dir.join("snap.json");
    let policy = CheckpointPolicy::new(&path, 10);
    let mut m_ckpt = MethodKind::HyperTune.build(&levels, 17);
    run_checkpointed(m_ckpt.as_mut(), &bench, &cfg, &policy).unwrap();

    let snapshot = RunSnapshot::load(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(snapshot.seed, 17);
    assert!(!snapshot.submissions.is_empty());

    let mut m_res = MethodKind::HyperTune.build(&levels, 17);
    let resumed = resume(m_res.as_mut(), &bench, &cfg, &snapshot, None).unwrap();
    assert_eq!(resumed.measurements, full.measurements);
    assert_eq!(resumed.curve, full.curve);
    assert_eq!(resumed.n_quarantined, full.n_quarantined);
}

#[test]
fn resume_with_wrong_method_diverges() {
    // Replay verification catches resuming under a different method: the
    // first dispatch that differs from the log is reported, instead of
    // silently producing a franken-run.
    let bench = CountingOnes::new(4, 4, 7);
    let levels = ResourceLevels::new(bench.max_resource(), 3);
    let cfg = RunConfig::new(4, 800.0, 3);
    let dir = std::env::temp_dir().join("hypertune-it-wrong-method");
    let path = dir.join("snap.json");
    let policy = CheckpointPolicy::new(&path, 5);
    let mut m = MethodKind::Asha.build(&levels, 3);
    run_checkpointed(m.as_mut(), &bench, &cfg, &policy).unwrap();
    let snapshot = RunSnapshot::load(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let mut wrong = MethodKind::ARandom.build(&levels, 3);
    match resume(wrong.as_mut(), &bench, &cfg, &snapshot, None) {
        Err(ResumeError::Diverged { .. }) => {}
        other => panic!("expected Diverged, got {other:?}"),
    }
}
