//! # Hyper-Tune: efficient hyper-parameter tuning at scale
//!
//! A from-scratch Rust reproduction of *Hyper-Tune: Towards Efficient
//! Hyper-parameter Tuning at Scale* (Li et al., VLDB 2022): a distributed
//! tuning framework built on three system components —
//!
//! 1. **automatic resource allocation** via learned bracket selection,
//! 2. **asynchronous scheduling** via D-ASHA (delayed asynchronous
//!    successive halving), and
//! 3. a **multi-fidelity optimizer** (MFES ensemble surrogates).
//!
//! This facade crate re-exports the full public API and hosts the
//! runnable examples and cross-crate integration tests.
//!
//! The execution layer is fault-tolerant: worker crashes, evaluation
//! errors, hangs, and corrupt results can be injected
//! ([`cluster::FaultSpec`]), failed jobs are retried with bounded
//! backoff and quarantined when hopeless ([`core::runner::RetryPolicy`]),
//! and long runs checkpoint to disk and resume bit-identically
//! ([`core::runner::resume`]).
//!
//! ## Quick start
//!
//! ```
//! use hypertune::prelude::*;
//!
//! // A benchmark: the counting-ones toy objective (or implement the
//! // `Benchmark` trait for your own training job).
//! let bench = CountingOnes::new(4, 4, 0);
//!
//! // Hyper-Tune with 8 simulated workers and a small virtual budget.
//! let levels = ResourceLevels::new(bench.max_resource(), 3);
//! let mut method = MethodKind::HyperTune.build(&levels, 42);
//! let result = run(method.as_mut(), &bench, &RunConfig::new(8, 2000.0, 42));
//!
//! assert!(result.best_value <= 0.0); // counting-ones optimum is -1
//! println!("best = {:.3} after {} evaluations", result.best_value, result.total_evals);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`space`] | configuration spaces, parameters, encodings |
//! | [`surrogate`] | random forest / GP surrogates, acquisition functions, MFES ensemble |
//! | [`cluster`] | discrete-event cluster simulator + threaded executor |
//! | [`benchmarks`] | counting-ones, tabular NAS, simulated XGBoost/ResNet/LSTM workloads |
//! | [`core`] | schedulers (SHA/ASHA/D-ASHA), bracket selection, samplers, all methods, the runner |
//! | [`service`] | multi-tenant tuning service: fair-share scheduling, study lifecycle, per-study WALs |
//! | [`telemetry`] | structured event log, metrics registry, timing spans, trace replay |
//!
//! ## Tracing a run
//!
//! Every run accepts a [`telemetry::TelemetryHandle`]
//! ([`core::runner::RunConfig::telemetry`]); the default disabled handle
//! is free and leaves runs bit-identical to untraced ones. An enabled
//! handle records dispatches, completions, retries, promotions, bracket
//! weights, and surrogate activity:
//!
//! ```
//! use hypertune::prelude::*;
//!
//! let bench = CountingOnes::new(4, 4, 0);
//! let levels = ResourceLevels::new(bench.max_resource(), 3);
//! let mut method = MethodKind::HyperTune.build(&levels, 42);
//! let ring = RingBufferSink::new(4096);
//! let mut config = RunConfig::new(8, 500.0, 42);
//! config.telemetry = Telemetry::new().with_sink(ring.clone()).build();
//! let _result = run(method.as_mut(), &bench, &config);
//! assert!(!ring.snapshot().is_empty());
//! ```

pub use hypertune_benchmarks as benchmarks;
pub use hypertune_cluster as cluster;
pub use hypertune_core as core;
pub use hypertune_service as service;
pub use hypertune_space as space;
pub use hypertune_surrogate as surrogate;
pub use hypertune_telemetry as telemetry;

pub mod registry;

/// The most common imports in one place.
pub mod prelude {
    pub use hypertune_benchmarks::{
        tasks, Benchmark, CountingOnes, Eval, SyntheticBenchmark, SyntheticSpec, TabularNasBench,
    };
    pub use hypertune_cluster::{
        serve_worker, ChaosFault, ChaosPlan, ChaosProxy, Codec, Executor, FaultSpec, JobStatus,
        MembershipEvent, MembershipPlan, ReconnectPolicy, ScheduledFault, SimCluster,
        StragglerModel, TcpCluster, TcpClusterOptions, ThreadPool, WorkerOptions,
    };
    pub use hypertune_core::{
        resume, run, run_checkpointed, run_distributed, run_threaded, BreakerConfig,
        CheckpointPolicy, FailureCounts, History, HistoryRead, JobSpec, Measurement, Method,
        MethodContext, MethodKind, Outcome, OutcomeStatus, ResourceLevels, ResumeError,
        RetryPolicy, RunConfig, RunResult, RunSnapshot, SpeculationConfig, ThreadedJob,
        ThreadedRunConfig, ThreadedRunResult,
    };
    pub use hypertune_service::{
        pool_eval, ServiceConfig, ServiceJob, StudyHandle, StudySpec, StudyStatus, TuningService,
    };
    pub use hypertune_space::{Config, ConfigSpace, ParamValue};
    pub use hypertune_telemetry::{
        read_jsonl, Event, EventRecord, JsonlSink, RingBufferSink, Telemetry, TelemetryHandle,
        TraceSummary,
    };
}
