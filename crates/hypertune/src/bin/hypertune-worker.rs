//! `hypertune-worker` — one node of a real Hyper-Tune cluster.
//!
//! ```text
//! USAGE:
//!   hypertune-worker [--listen ADDR] [--once] [--slots N] [--codec C]
//!
//! FLAGS:
//!   --listen ADDR   Bind address (default 127.0.0.1:0 — an OS-assigned
//!                   port). The actual address is printed to stdout as
//!                   `listening on ADDR` once the socket is bound, so
//!                   scripts can discover ephemeral ports.
//!   --once          Serve exactly one driver session, then exit.
//!   --slots N       Accept up to N pipelined dispatches per session
//!                   (default 1). Evaluation stays on one thread in
//!                   FIFO order; slots hide round-trips, they do not
//!                   add parallelism.
//!   --codec C       `binary` (default) upgrades the wire codec when
//!                   the driver offers it; `json` pins the session to
//!                   the version-1 JSON framing (a v1 peer).
//!
//! EXAMPLE (one driver, two workers, all on localhost):
//!   hypertune-worker --listen 127.0.0.1:7101 &
//!   hypertune-worker --listen 127.0.0.1:7102 &
//!   hypertune cluster --workers 127.0.0.1:7101,127.0.0.1:7102 \
//!       --bench counting-ones-small --method hyper-tune --max-evals 60
//! ```
//!
//! The worker is benchmark-agnostic until a driver connects: the `Hello`
//! handshake payload names the benchmark, the evaluation seed, and an
//! optional per-job `sleep_ms` (a testing knob that stretches evaluations
//! so fault drills can kill a worker *mid-job* deterministically). The
//! evaluator is built from the same registry the driver uses, which is
//! what keeps distributed histories bit-comparable with in-process ones.
//!
//! A multi-tenant service driver (`hypertune serve`) instead sends
//! `{"multi_study": true}` in its `Hello`: dispatches are then
//! [`ServiceJob`]s carrying their own `(bench, seed)` coordinates, and
//! the worker resolves benchmark instances per job (cached per pair),
//! since consecutive jobs may belong to different studies tuning
//! different objectives.

use hypertune::benchmarks::Benchmark;
use hypertune::cluster::{serve_worker, Codec, EvalFn, JobStatus, WorkerOptions};
use hypertune::core::ThreadedJob;
use hypertune::registry;
use hypertune::service::ServiceJob;
use serde::{Deserialize, Value};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

fn usage() -> ! {
    eprintln!("usage: hypertune-worker [--listen ADDR] [--once] [--slots N] [--codec json|binary]");
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut once = false;
    let mut slots = 1usize;
    let mut codec = Codec::Binary;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => {
                listen = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("missing value for --listen");
                        usage()
                    })
                    .clone()
            }
            "--once" => once = true,
            "--slots" => {
                slots = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--slots needs a positive integer");
                        usage()
                    })
            }
            "--codec" => {
                codec = match it.next().map(String::as_str) {
                    Some("json") => Codec::Json,
                    Some("binary") => Codec::Binary,
                    _ => {
                        eprintln!("--codec must be `json` or `binary`");
                        usage()
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("hypertune-worker: cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    let addr = listener.local_addr().expect("bound socket has an address");
    // Scripts parse this line to discover OS-assigned ports; keep it
    // first on stdout and flush-by-newline.
    println!("listening on {addr}");

    let opts = WorkerOptions {
        once,
        slots,
        codec,
        ..WorkerOptions::default()
    };
    let outcome = serve_worker(listener, opts, |hello: &Value| {
        let obj = hello
            .as_object()
            .ok_or_else(|| "Hello payload must be an object".to_string())?;
        let sleep_ms = obj.get("sleep_ms").and_then(|v| v.as_u64()).unwrap_or(0);
        if obj
            .get("multi_study")
            .and_then(|v| v.as_bool())
            .unwrap_or(false)
        {
            // Multi-tenant fleet mode: every dispatch names its own
            // benchmark; instances are cached per (name, seed) pair.
            eprintln!("hypertune-worker: session opened: multi-study fleet mode");
            let cache: Mutex<BTreeMap<(String, u64), Arc<dyn Benchmark>>> =
                Mutex::new(BTreeMap::new());
            return Ok(Box::new(move |payload: &Value| {
                let job = match ServiceJob::from_value(payload) {
                    Ok(job) => job,
                    Err(e) => {
                        eprintln!("hypertune-worker: undecodable service dispatch: {e}");
                        return (JobStatus::Errored, Value::Null);
                    }
                };
                let key = (job.bench.clone(), job.bench_seed);
                let bench = {
                    let mut cache = cache.lock().expect("bench cache poisoned");
                    match cache.get(&key) {
                        Some(b) => Arc::clone(b),
                        None => match registry::make_bench(&job.bench, job.bench_seed) {
                            Some(b) => {
                                let b: Arc<dyn Benchmark> = Arc::from(b);
                                cache.insert(key, Arc::clone(&b));
                                b
                            }
                            None => {
                                eprintln!("hypertune-worker: unknown benchmark `{}`", job.bench);
                                return (JobStatus::Errored, Value::Null);
                            }
                        },
                    }
                };
                if sleep_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                }
                let eval =
                    bench.evaluate(&job.job.spec.config, job.job.spec.resource, job.bench_seed);
                (JobStatus::Succeeded, serde_json::to_value(&eval))
            }) as EvalFn);
        }
        let bench_name = obj
            .get("bench")
            .and_then(|v| v.as_str())
            .ok_or_else(|| "Hello payload needs a `bench` string".to_string())?;
        let seed = obj.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
        let bench = registry::make_bench(bench_name, seed)
            .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
        eprintln!("hypertune-worker: session opened: bench={bench_name} seed={seed}");
        Ok(Box::new(move |payload: &Value| {
            let job = match ThreadedJob::from_value(payload) {
                Ok(job) => job,
                Err(e) => {
                    eprintln!("hypertune-worker: undecodable dispatch: {e}");
                    return (JobStatus::Errored, Value::Null);
                }
            };
            if sleep_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
            }
            let eval = bench.evaluate(&job.spec.config, job.spec.resource, seed);
            (JobStatus::Succeeded, serde_json::to_value(&eval))
        }) as EvalFn)
    });
    if let Err(e) = outcome {
        eprintln!("hypertune-worker: accept loop failed: {e}");
        std::process::exit(1);
    }
}
