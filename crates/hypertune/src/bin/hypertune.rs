//! `hypertune` — command-line tuner over the built-in benchmarks.
//!
//! ```text
//! USAGE:
//!   hypertune run [--bench NAME] [--method NAME] [--workers N]
//!                 [--budget-hours H] [--seed S] [--eta E] [--trace]
//!   hypertune list
//!
//! EXAMPLES:
//!   hypertune run --bench nas-cifar100 --method hyper-tune --workers 8 --budget-hours 4
//!   hypertune run --bench xgboost-covertype --method bohb --seed 7
//!   hypertune list
//! ```
//!
//! Argument parsing is hand-rolled to keep the dependency set minimal.

use hypertune::prelude::*;

type BenchEntry = (&'static str, Box<dyn Fn(u64) -> Box<dyn Benchmark>>);

fn benches() -> Vec<BenchEntry> {
    vec![
        (
            "counting-ones",
            Box::new(|s| Box::new(CountingOnes::new(8, 8, s))),
        ),
        (
            "nas-cifar10",
            Box::new(|s| Box::new(tasks::nas_cifar10_valid(s))),
        ),
        (
            "nas-cifar100",
            Box::new(|s| Box::new(tasks::nas_cifar100(s))),
        ),
        (
            "nas-imagenet16",
            Box::new(|s| Box::new(tasks::nas_imagenet16(s))),
        ),
        (
            "xgboost-covertype",
            Box::new(|s| Box::new(tasks::xgboost_covertype(s))),
        ),
        (
            "xgboost-pokerhand",
            Box::new(|s| Box::new(tasks::xgboost_pokerhand(s))),
        ),
        (
            "xgboost-hepmass",
            Box::new(|s| Box::new(tasks::xgboost_hepmass(s))),
        ),
        (
            "xgboost-higgs",
            Box::new(|s| Box::new(tasks::xgboost_higgs(s))),
        ),
        (
            "resnet-cifar10",
            Box::new(|s| Box::new(tasks::resnet_cifar10(s))),
        ),
        ("lstm-ptb", Box::new(|s| Box::new(tasks::lstm_ptb(s)))),
        (
            "industrial",
            Box::new(|s| Box::new(tasks::industrial_recsys(s))),
        ),
        (
            "branin",
            Box::new(|s| Box::new(hypertune::benchmarks::BraninMf::new(10.0, s))),
        ),
        (
            "hartmann6",
            Box::new(|s| Box::new(hypertune::benchmarks::Hartmann6Mf::new(s))),
        ),
    ]
}

fn methods() -> Vec<(&'static str, MethodKind)> {
    vec![
        ("random", MethodKind::ARandom),
        ("bo", MethodKind::BatchBo),
        ("a-bo", MethodKind::ABo),
        ("sha", MethodKind::Sha),
        ("asha", MethodKind::Asha),
        ("hyperband", MethodKind::Hyperband),
        ("a-hyperband", MethodKind::AHyperband),
        ("bohb", MethodKind::Bohb),
        ("bohb-tpe", MethodKind::BohbTpe),
        ("a-bohb", MethodKind::ABohb),
        ("mfes-hb", MethodKind::MfesHb),
        ("a-rea", MethodKind::ARea),
        ("hyper-tune", MethodKind::HyperTune),
        ("hyper-tune-tpe", MethodKind::HyperTuneTpe),
    ]
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  hypertune run [--bench NAME] [--method NAME] [--workers N]\n                [--budget-hours H] [--seed S] [--eta E] [--trace]\n  hypertune list"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("benchmarks:");
            for (name, _) in benches() {
                println!("  {name}");
            }
            println!("methods:");
            for (name, _) in methods() {
                println!("  {name}");
            }
        }
        Some("run") => run_command(&args[1..]),
        _ => usage(),
    }
}

fn run_command(args: &[String]) {
    let mut bench_name = "counting-ones".to_string();
    let mut method_name = "hyper-tune".to_string();
    let mut workers = 8usize;
    let mut budget_hours = 1.0f64;
    let mut seed = 0u64;
    let mut eta = 3usize;
    let mut trace = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--bench" => bench_name = value("--bench"),
            "--method" => method_name = value("--method"),
            "--workers" => workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--budget-hours" => {
                budget_hours = value("--budget-hours").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--eta" => eta = value("--eta").parse().unwrap_or_else(|_| usage()),
            "--trace" => trace = true,
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let bench = benches()
        .into_iter()
        .find(|(n, _)| *n == bench_name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark `{bench_name}` (see `hypertune list`)");
            std::process::exit(2);
        })
        .1(seed);
    let kind = methods()
        .into_iter()
        .find(|(n, _)| *n == method_name)
        .unwrap_or_else(|| {
            eprintln!("unknown method `{method_name}` (see `hypertune list`)");
            std::process::exit(2);
        })
        .1;

    let budget = budget_hours * 3600.0;
    let mut config = RunConfig::new(workers, budget, seed);
    config.eta = eta;
    let levels = ResourceLevels::new(bench.max_resource(), eta);
    let mut method = kind.build(&levels, seed);

    eprintln!(
        "running {} on {} | {workers} workers | {budget_hours} virtual hours | seed {seed} | eta {eta}",
        kind.name(),
        bench.name()
    );
    let start = std::time::Instant::now();
    let result = run(method.as_mut(), bench.as_ref(), &config);
    eprintln!("finished in {:.2?} of real time", start.elapsed());

    println!("method:       {}", result.method);
    println!("best value:   {:.6}", result.best_value);
    println!("best test:    {:.6}", result.best_test);
    if let Some(cfg) = &result.best_config {
        println!("best config:  {}", bench.space().describe(cfg));
    }
    println!(
        "evaluations:  {} {:?}",
        result.total_evals, result.evals_per_level
    );
    println!("utilization:  {:.1}%", 100.0 * result.utilization);
    if let Some(opt) = bench.optimum() {
        println!("regret:       {:.6}", (result.best_value - opt).max(0.0));
    }
    if trace {
        println!("\nworker trace:");
        print!("{}", result.trace.render_ascii(budget, 100));
    }
}
