//! `hypertune` — command-line tuner over the built-in benchmarks.
//!
//! ```text
//! USAGE:
//!   hypertune run [--bench NAME] [--method NAME] [--workers N]
//!                 [--budget-hours H] [--seed S] [--eta E] [--trace]
//!   hypertune cluster --workers ADDR[,ADDR...] [--bench NAME] [--method NAME]
//!                 [--max-evals N] [--seed S] [--eta E] [--lease-secs F]
//!                 [--eval-sleep-ms MS] [--no-prefetch] [--trace FILE]
//!   hypertune list
//!
//! EXAMPLES:
//!   hypertune run --bench nas-cifar100 --method hyper-tune --workers 8 --budget-hours 4
//!   hypertune run --bench xgboost-covertype --method bohb --seed 7
//!   hypertune cluster --workers 127.0.0.1:7101,127.0.0.1:7102 \
//!       --bench counting-ones-small --max-evals 60 --trace /tmp/run.jsonl
//!   hypertune list
//! ```
//!
//! `run` drives the discrete-event simulator (virtual time); `cluster`
//! drives real `hypertune-worker` processes over TCP (wall-clock time,
//! see DESIGN.md §16 and the README's "Running a real cluster"). Start
//! the workers first — `--workers` takes their listen addresses.
//!
//! Argument parsing is hand-rolled to keep the dependency set minimal.

use hypertune::prelude::*;
use hypertune::registry;
use serde_json::json;

fn usage() -> ! {
    eprintln!(
        "usage:\n  hypertune run [--bench NAME] [--method NAME] [--workers N]\n                [--budget-hours H] [--seed S] [--eta E] [--trace]\n  hypertune cluster --workers ADDR[,ADDR...] [--bench NAME] [--method NAME]\n                [--max-evals N] [--seed S] [--eta E] [--lease-secs F]\n                [--eval-sleep-ms MS] [--no-prefetch] [--trace FILE]\n  hypertune list"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("benchmarks:");
            for (name, _) in registry::benches() {
                println!("  {name}");
            }
            println!("methods:");
            for (name, _) in registry::methods() {
                println!("  {name}");
            }
        }
        Some("run") => run_command(&args[1..]),
        Some("cluster") => cluster_command(&args[1..]),
        _ => usage(),
    }
}

fn lookup_bench(name: &str, seed: u64) -> Box<dyn Benchmark> {
    registry::make_bench(name, seed).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}` (see `hypertune list`)");
        std::process::exit(2);
    })
}

fn lookup_method(name: &str) -> MethodKind {
    registry::find_method(name).unwrap_or_else(|| {
        eprintln!("unknown method `{name}` (see `hypertune list`)");
        std::process::exit(2);
    })
}

fn run_command(args: &[String]) {
    let mut bench_name = "counting-ones".to_string();
    let mut method_name = "hyper-tune".to_string();
    let mut workers = 8usize;
    let mut budget_hours = 1.0f64;
    let mut seed = 0u64;
    let mut eta = 3usize;
    let mut trace = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--bench" => bench_name = value("--bench"),
            "--method" => method_name = value("--method"),
            "--workers" => workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--budget-hours" => {
                budget_hours = value("--budget-hours").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--eta" => eta = value("--eta").parse().unwrap_or_else(|_| usage()),
            "--trace" => trace = true,
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let bench = lookup_bench(&bench_name, seed);
    let kind = lookup_method(&method_name);

    let budget = budget_hours * 3600.0;
    let mut config = RunConfig::new(workers, budget, seed);
    config.eta = eta;
    let levels = ResourceLevels::new(bench.max_resource(), eta);
    let mut method = kind.build(&levels, seed);

    eprintln!(
        "running {} on {} | {workers} workers | {budget_hours} virtual hours | seed {seed} | eta {eta}",
        kind.name(),
        bench.name()
    );
    let start = std::time::Instant::now();
    let result = run(method.as_mut(), bench.as_ref(), &config);
    eprintln!("finished in {:.2?} of real time", start.elapsed());

    println!("method:       {}", result.method);
    println!("best value:   {:.6}", result.best_value);
    println!("best test:    {:.6}", result.best_test);
    if let Some(cfg) = &result.best_config {
        println!("best config:  {}", bench.space().describe(cfg));
    }
    println!(
        "evaluations:  {} {:?}",
        result.total_evals, result.evals_per_level
    );
    println!("utilization:  {:.1}%", 100.0 * result.utilization);
    if let Some(opt) = bench.optimum() {
        println!("regret:       {:.6}", (result.best_value - opt).max(0.0));
    }
    if trace {
        println!("\nworker trace:");
        print!("{}", result.trace.render_ascii(budget, 100));
    }
}

fn cluster_command(args: &[String]) {
    let mut bench_name = "counting-ones-small".to_string();
    let mut method_name = "hyper-tune".to_string();
    let mut worker_addrs: Vec<String> = Vec::new();
    let mut max_evals = 60usize;
    let mut seed = 0u64;
    let mut eta = 3usize;
    let mut lease_secs = 10.0f64;
    let mut eval_sleep_ms = 0u64;
    let mut prefetch = true;
    let mut trace_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--bench" => bench_name = value("--bench"),
            "--method" => method_name = value("--method"),
            "--workers" => {
                worker_addrs = value("--workers")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--max-evals" => max_evals = value("--max-evals").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--eta" => eta = value("--eta").parse().unwrap_or_else(|_| usage()),
            "--lease-secs" => {
                lease_secs = value("--lease-secs").parse().unwrap_or_else(|_| usage())
            }
            "--eval-sleep-ms" => {
                eval_sleep_ms = value("--eval-sleep-ms").parse().unwrap_or_else(|_| usage())
            }
            "--no-prefetch" => prefetch = false,
            "--trace" => trace_path = Some(value("--trace")),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if worker_addrs.is_empty() {
        eprintln!("--workers ADDR[,ADDR...] is required (start hypertune-worker first)");
        usage()
    }

    // The benchmark is driver-side only here: it supplies the search
    // space and resource ladder. Evaluation happens on the workers,
    // which build the same benchmark from this name and seed.
    let bench = lookup_bench(&bench_name, seed);
    let kind = lookup_method(&method_name);
    let levels = ResourceLevels::new(bench.max_resource(), eta);
    let mut method = kind.build(&levels, seed);

    let telemetry = match &trace_path {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            });
            Telemetry::new().with_sink(sink).build()
        }
        None => TelemetryHandle::disabled(),
    };

    let hello = json!({
        "bench": bench_name.as_str(),
        "seed": seed,
        "sleep_ms": eval_sleep_ms,
    });
    let opts = TcpClusterOptions {
        lease_timeout: std::time::Duration::from_secs_f64(lease_secs),
    };
    eprintln!(
        "connecting to {} worker(s): {}",
        worker_addrs.len(),
        worker_addrs.join(", ")
    );
    let cluster: TcpCluster<ThreadedJob, Eval> = TcpCluster::connect(&worker_addrs, hello, opts)
        .unwrap_or_else(|e| {
            eprintln!("cluster connect failed: {e}");
            std::process::exit(1);
        });

    let mut config = ThreadedRunConfig::new(cluster.n_workers(), max_evals, seed);
    config.eta = eta;
    config.prefetch = prefetch;
    config.telemetry = telemetry.clone();

    eprintln!(
        "running {} on {} | {} TCP workers | {max_evals} evals | seed {seed} | eta {eta}",
        kind.name(),
        bench.name(),
        worker_addrs.len(),
    );
    let start = std::time::Instant::now();
    let result = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &config);
    telemetry.flush();
    eprintln!("finished in {:.2?} of wall time", start.elapsed());

    println!("method:       {}", result.method);
    println!("best value:   {:.6}", result.best_value);
    println!("best test:    {:.6}", result.best_test);
    if let Some(cfg) = &result.best_config {
        println!("best config:  {}", bench.space().describe(cfg));
    }
    println!(
        "evaluations:  {} {:?}",
        result.total_evals, result.evals_per_level
    );
    println!("orphaned:     {}", result.n_orphaned);
    println!("retries:      {}", result.n_retries);
    if let Some(opt) = bench.optimum() {
        println!("regret:       {:.6}", (result.best_value - opt).max(0.0));
    }
    if let Some(path) = &trace_path {
        println!("trace:        {path} (fold with `trace-report {path}`)");
    }
}
