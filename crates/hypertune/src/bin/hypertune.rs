//! `hypertune` — command-line tuner over the built-in benchmarks.
//!
//! ```text
//! USAGE:
//!   hypertune run [--bench NAME] [--method NAME] [--workers N]
//!                 [--budget-hours H] [--seed S] [--eta E] [--trace]
//!   hypertune cluster --workers ADDR[,ADDR...] [--bench NAME] [--method NAME]
//!                 [--max-evals N] [--seed S] [--eta E] [--lease-secs F]
//!                 [--eval-sleep-ms MS] [--no-prefetch] [--codec json|binary]
//!                 [--connect-timeout-ms MS] [--connect-retries N]
//!                 [--redial-attempts N] [--redial-backoff-ms MS]
//!                 [--chaos FILE] [--trace FILE]
//!   hypertune serve [--pool N | --workers ADDR[,ADDR...]] [--state-dir DIR]
//!                 [--script FILE] [--resume] [--lease-secs F]
//!                 [--codec json|binary] [--connect-timeout-ms MS]
//!                 [--connect-retries N] [--redial-attempts N]
//!                 [--redial-backoff-ms MS] [--trace FILE]
//!   hypertune list
//!
//! EXAMPLES:
//!   hypertune run --bench nas-cifar100 --method hyper-tune --workers 8 --budget-hours 4
//!   hypertune run --bench xgboost-covertype --method bohb --seed 7
//!   hypertune cluster --workers 127.0.0.1:7101,127.0.0.1:7102 \
//!       --bench counting-ones-small --max-evals 60 --trace /tmp/run.jsonl
//!   hypertune serve --pool 8 --state-dir /tmp/studies --script studies.jsonl
//!   hypertune list
//! ```
//!
//! `run` drives the discrete-event simulator (virtual time); `cluster`
//! drives real `hypertune-worker` processes over TCP (wall-clock time,
//! see DESIGN.md §16 and the README's "Running a real cluster"). Start
//! the workers first — `--workers` takes their listen addresses.
//! `--codec binary` (the default) offers the compact binary wire codec
//! in the handshake; binary-capable workers take it per-connection,
//! JSON-only workers keep speaking version-1 JSON in the same fleet.
//!
//! Partition tolerance (DESIGN.md §16.4): `--connect-timeout-ms` and
//! `--connect-retries` bound the initial dial; `--redial-attempts` with
//! `--redial-backoff-ms` arms the driver's reconnect loop — a worker
//! that drops mid-run is redialed with exponential backoff and, on
//! success, rejoins under a new session epoch (no trial double-booked).
//! `--chaos FILE` (cluster only) loads a JSON [`ChaosPlan`] and routes
//! every worker connection through an in-process fault proxy that
//! replays the plan deterministically — see the README's "Chaos
//! drills".
//!
//! `serve` runs the multi-tenant tuning service (DESIGN.md §17): many
//! studies fair-shared over one fleet — an in-process thread pool
//! (`--pool N`) or TCP workers started in multi-study mode
//! (`--workers`). Studies are driven by a JSONL command script, one
//! object per line:
//!
//! ```text
//!   {"cmd":"create","name":"lr-sweep","bench":"counting-ones-small",
//!    "method":"hyper-tune","seed":1,"max_evals":16,"weight":2,"max_in_flight":4}
//!   {"cmd":"run","completions":40}     # process 40 fleet results
//!   {"cmd":"stop","study":1}           # stop a study by id
//!   {"cmd":"drain"}                    # finish every live study
//!   {"cmd":"status"}                   # print the per-study summary
//! ```
//!
//! With `--state-dir`, every study persists a WAL + sidecar there;
//! `--resume` recovers them on startup (and, when no `--script` is
//! given, drains the survivors to completion) — kill the service
//! mid-run, restart with `--resume`, and no trial is ever booked twice.
//!
//! Argument parsing is hand-rolled to keep the dependency set minimal.

use hypertune::prelude::*;
use hypertune::registry;
use serde_json::json;

fn usage() -> ! {
    eprintln!(
        "usage:\n  hypertune run [--bench NAME] [--method NAME] [--workers N]\n                [--budget-hours H] [--seed S] [--eta E] [--trace]\n  hypertune cluster --workers ADDR[,ADDR...] [--bench NAME] [--method NAME]\n                [--max-evals N] [--seed S] [--eta E] [--lease-secs F]\n                [--eval-sleep-ms MS] [--no-prefetch] [--codec json|binary]\n                [--connect-timeout-ms MS] [--connect-retries N]\n                [--redial-attempts N] [--redial-backoff-ms MS]\n                [--chaos FILE] [--trace FILE]\n  hypertune serve [--pool N | --workers ADDR[,ADDR...]] [--state-dir DIR]\n                [--script FILE] [--resume] [--lease-secs F]\n                [--codec json|binary] [--connect-timeout-ms MS]\n                [--connect-retries N] [--redial-attempts N]\n                [--redial-backoff-ms MS] [--trace FILE]\n  hypertune list"
    );
    std::process::exit(2);
}

fn parse_codec(s: &str) -> Codec {
    match s {
        "json" => Codec::Json,
        "binary" => Codec::Binary,
        _ => {
            eprintln!("--codec must be `json` or `binary`");
            usage()
        }
    }
}

/// Builds the driver's redial policy from the CLI knobs: 0 attempts
/// keeps redialing off (a dropped worker stays gone, as before);
/// otherwise backoff doubles from `backoff_ms` up to a 20x cap, with
/// jitter seeded from the run seed so drills replay exactly.
fn reconnect_policy(attempts: u32, backoff_ms: u64, seed: u64) -> ReconnectPolicy {
    if attempts == 0 {
        ReconnectPolicy::disabled()
    } else {
        ReconnectPolicy {
            max_attempts: attempts,
            base_backoff: std::time::Duration::from_millis(backoff_ms.max(1)),
            max_backoff: std::time::Duration::from_millis(backoff_ms.max(1).saturating_mul(20)),
            jitter_seed: seed,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("benchmarks:");
            for (name, _) in registry::benches() {
                println!("  {name}");
            }
            println!("methods:");
            for (name, _) in registry::methods() {
                println!("  {name}");
            }
        }
        Some("run") => run_command(&args[1..]),
        Some("cluster") => cluster_command(&args[1..]),
        Some("serve") => serve_command(&args[1..]),
        _ => usage(),
    }
}

fn lookup_bench(name: &str, seed: u64) -> Box<dyn Benchmark> {
    registry::make_bench(name, seed).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}` (see `hypertune list`)");
        std::process::exit(2);
    })
}

fn lookup_method(name: &str) -> MethodKind {
    registry::find_method(name).unwrap_or_else(|| {
        eprintln!("unknown method `{name}` (see `hypertune list`)");
        std::process::exit(2);
    })
}

fn run_command(args: &[String]) {
    let mut bench_name = "counting-ones".to_string();
    let mut method_name = "hyper-tune".to_string();
    let mut workers = 8usize;
    let mut budget_hours = 1.0f64;
    let mut seed = 0u64;
    let mut eta = 3usize;
    let mut trace = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--bench" => bench_name = value("--bench"),
            "--method" => method_name = value("--method"),
            "--workers" => workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--budget-hours" => {
                budget_hours = value("--budget-hours").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--eta" => eta = value("--eta").parse().unwrap_or_else(|_| usage()),
            "--trace" => trace = true,
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let bench = lookup_bench(&bench_name, seed);
    let kind = lookup_method(&method_name);

    let budget = budget_hours * 3600.0;
    let mut config = RunConfig::new(workers, budget, seed);
    config.eta = eta;
    let levels = ResourceLevels::new(bench.max_resource(), eta);
    let mut method = kind.build(&levels, seed);

    eprintln!(
        "running {} on {} | {workers} workers | {budget_hours} virtual hours | seed {seed} | eta {eta}",
        kind.name(),
        bench.name()
    );
    let start = std::time::Instant::now();
    let result = run(method.as_mut(), bench.as_ref(), &config);
    eprintln!("finished in {:.2?} of real time", start.elapsed());

    println!("method:       {}", result.method);
    println!("best value:   {:.6}", result.best_value);
    println!("best test:    {:.6}", result.best_test);
    if let Some(cfg) = &result.best_config {
        println!("best config:  {}", bench.space().describe(cfg));
    }
    println!(
        "evaluations:  {} {:?}",
        result.total_evals, result.evals_per_level
    );
    println!("utilization:  {:.1}%", 100.0 * result.utilization);
    if let Some(opt) = bench.optimum() {
        println!("regret:       {:.6}", (result.best_value - opt).max(0.0));
    }
    if trace {
        println!("\nworker trace:");
        print!("{}", result.trace.render_ascii(budget, 100));
    }
}

fn cluster_command(args: &[String]) {
    let mut bench_name = "counting-ones-small".to_string();
    let mut method_name = "hyper-tune".to_string();
    let mut worker_addrs: Vec<String> = Vec::new();
    let mut max_evals = 60usize;
    let mut seed = 0u64;
    let mut eta = 3usize;
    let mut lease_secs = 10.0f64;
    let mut eval_sleep_ms = 0u64;
    let mut prefetch = true;
    let mut codec = Codec::Binary;
    let mut trace_path: Option<String> = None;
    let mut connect_timeout_ms: Option<u64> = None;
    let mut connect_retries = 0u32;
    let mut redial_attempts = 0u32;
    let mut redial_backoff_ms = 100u64;
    let mut chaos_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--bench" => bench_name = value("--bench"),
            "--method" => method_name = value("--method"),
            "--workers" => {
                worker_addrs = value("--workers")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--max-evals" => max_evals = value("--max-evals").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--eta" => eta = value("--eta").parse().unwrap_or_else(|_| usage()),
            "--lease-secs" => {
                lease_secs = value("--lease-secs").parse().unwrap_or_else(|_| usage())
            }
            "--eval-sleep-ms" => {
                eval_sleep_ms = value("--eval-sleep-ms").parse().unwrap_or_else(|_| usage())
            }
            "--no-prefetch" => prefetch = false,
            "--codec" => codec = parse_codec(&value("--codec")),
            "--connect-timeout-ms" => {
                connect_timeout_ms = Some(
                    value("--connect-timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--connect-retries" => {
                connect_retries = value("--connect-retries")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--redial-attempts" => {
                redial_attempts = value("--redial-attempts")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--redial-backoff-ms" => {
                redial_backoff_ms = value("--redial-backoff-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--chaos" => chaos_path = Some(value("--chaos")),
            "--trace" => trace_path = Some(value("--trace")),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if worker_addrs.is_empty() {
        eprintln!("--workers ADDR[,ADDR...] is required (start hypertune-worker first)");
        usage()
    }

    // The benchmark is driver-side only here: it supplies the search
    // space and resource ladder. Evaluation happens on the workers,
    // which build the same benchmark from this name and seed.
    let bench = lookup_bench(&bench_name, seed);
    let kind = lookup_method(&method_name);
    let levels = ResourceLevels::new(bench.max_resource(), eta);
    let mut method = kind.build(&levels, seed);

    let telemetry = match &trace_path {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            });
            Telemetry::new().with_sink(sink).build()
        }
        None => TelemetryHandle::disabled(),
    };

    // With --chaos, every worker connection is routed through an
    // in-process fault proxy replaying the plan; the proxies must stay
    // alive for the whole run, so they're held here, not in the branch.
    let mut proxies: Vec<ChaosProxy> = Vec::new();
    let dial_addrs: Vec<String> = match &chaos_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read chaos plan {path}: {e}");
                std::process::exit(1);
            });
            let plan: ChaosPlan = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("bad chaos plan {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "chaos plan {path}: {} scheduled fault window(s)",
                plan.faults.len()
            );
            worker_addrs
                .iter()
                .map(|addr| {
                    let proxy = ChaosProxy::launch(addr.as_str(), plan.clone(), telemetry.clone())
                        .unwrap_or_else(|e| {
                            eprintln!("chaos proxy for {addr} failed to start: {e}");
                            std::process::exit(1);
                        });
                    let proxied = proxy.addr().to_string();
                    proxies.push(proxy);
                    proxied
                })
                .collect()
        }
        None => worker_addrs.clone(),
    };

    let hello = json!({
        "bench": bench_name.as_str(),
        "seed": seed,
        "sleep_ms": eval_sleep_ms,
    });
    let opts = TcpClusterOptions {
        lease_timeout: std::time::Duration::from_secs_f64(lease_secs),
        codec,
        reconnect: reconnect_policy(redial_attempts, redial_backoff_ms, seed),
        connect_timeout: connect_timeout_ms.map(std::time::Duration::from_millis),
        connect_retries,
    };
    eprintln!(
        "connecting to {} worker(s): {}",
        worker_addrs.len(),
        worker_addrs.join(", ")
    );
    let cluster: TcpCluster<ThreadedJob, Eval> = TcpCluster::connect(&dial_addrs, hello, opts)
        .unwrap_or_else(|e| {
            eprintln!("cluster connect failed: {e}");
            std::process::exit(1);
        });

    let mut config = ThreadedRunConfig::new(cluster.n_workers(), max_evals, seed);
    config.eta = eta;
    config.prefetch = prefetch;
    config.telemetry = telemetry.clone();

    eprintln!(
        "running {} on {} | {} TCP workers | {max_evals} evals | seed {seed} | eta {eta}",
        kind.name(),
        bench.name(),
        worker_addrs.len(),
    );
    let start = std::time::Instant::now();
    let result = run_distributed(method.as_mut(), bench.space(), &levels, cluster, &config);
    telemetry.flush();
    eprintln!("finished in {:.2?} of wall time", start.elapsed());

    println!("method:       {}", result.method);
    println!("best value:   {:.6}", result.best_value);
    println!("best test:    {:.6}", result.best_test);
    if let Some(cfg) = &result.best_config {
        println!("best config:  {}", bench.space().describe(cfg));
    }
    println!(
        "evaluations:  {} {:?}",
        result.total_evals, result.evals_per_level
    );
    println!("orphaned:     {}", result.n_orphaned);
    println!("retries:      {}", result.n_retries);
    if let Some(opt) = bench.optimum() {
        println!("regret:       {:.6}", (result.best_value - opt).max(0.0));
    }
    if let Some(path) = &trace_path {
        println!("trace:        {path} (fold with `trace-report {path}`)");
    }
}

/// `hypertune serve`: the multi-tenant service driver (DESIGN.md §17).
fn serve_command(args: &[String]) {
    let mut pool = 4usize;
    let mut worker_addrs: Vec<String> = Vec::new();
    let mut state_dir: Option<String> = None;
    let mut script: Option<String> = None;
    let mut resume = false;
    let mut lease_secs = 10.0f64;
    let mut codec = Codec::Binary;
    let mut trace_path: Option<String> = None;
    let mut connect_timeout_ms: Option<u64> = None;
    let mut connect_retries = 0u32;
    let mut redial_attempts = 0u32;
    let mut redial_backoff_ms = 100u64;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--pool" => pool = value("--pool").parse().unwrap_or_else(|_| usage()),
            "--workers" => {
                worker_addrs = value("--workers")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--state-dir" => state_dir = Some(value("--state-dir")),
            "--script" => script = Some(value("--script")),
            "--resume" => resume = true,
            "--lease-secs" => {
                lease_secs = value("--lease-secs").parse().unwrap_or_else(|_| usage())
            }
            "--codec" => codec = parse_codec(&value("--codec")),
            "--connect-timeout-ms" => {
                connect_timeout_ms = Some(
                    value("--connect-timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--connect-retries" => {
                connect_retries = value("--connect-retries")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--redial-attempts" => {
                redial_attempts = value("--redial-attempts")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--redial-backoff-ms" => {
                redial_backoff_ms = value("--redial-backoff-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--trace" => trace_path = Some(value("--trace")),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let telemetry = match &trace_path {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            });
            Telemetry::new().with_sink(sink).build()
        }
        None => TelemetryHandle::disabled(),
    };
    let mut config = ServiceConfig::new().with_telemetry(telemetry.clone());
    if let Some(dir) = &state_dir {
        config = config.with_state_dir(dir);
    }
    let resolver: hypertune::service::BenchResolver = std::sync::Arc::new(registry::make_bench);

    if worker_addrs.is_empty() {
        eprintln!("serving on an in-process pool of {pool} workers");
        let executor: ThreadPool<ServiceJob, Eval> =
            ThreadPool::new(pool, pool_eval(resolver.clone()));
        serve_with(executor, resolver, config, script, resume, telemetry);
    } else {
        eprintln!(
            "serving on {} TCP worker(s): {}",
            worker_addrs.len(),
            worker_addrs.join(", ")
        );
        let hello = json!({ "multi_study": true });
        let opts = TcpClusterOptions {
            lease_timeout: std::time::Duration::from_secs_f64(lease_secs),
            codec,
            reconnect: reconnect_policy(redial_attempts, redial_backoff_ms, 0),
            connect_timeout: connect_timeout_ms.map(std::time::Duration::from_millis),
            connect_retries,
        };
        let cluster: TcpCluster<ServiceJob, Eval> = TcpCluster::connect(&worker_addrs, hello, opts)
            .unwrap_or_else(|e| {
                eprintln!("cluster connect failed: {e}");
                std::process::exit(1);
            });
        serve_with(cluster, resolver, config, script, resume, telemetry);
    }
}

/// Drives one service instance over any executor substrate: recover,
/// run the JSONL script (or drain, when no script is given), print the
/// per-study summary.
fn serve_with<E: Executor<ServiceJob, Eval>>(
    executor: E,
    resolver: hypertune::service::BenchResolver,
    config: ServiceConfig,
    script: Option<String>,
    resume: bool,
    telemetry: TelemetryHandle,
) {
    let mut svc = TuningService::new(executor, resolver, config).unwrap_or_else(|e| {
        eprintln!("service start failed: {e}");
        std::process::exit(1);
    });
    if resume {
        let recovered = svc.recover().unwrap_or_else(|e| {
            eprintln!("recovery failed: {e}");
            std::process::exit(1);
        });
        for h in &recovered {
            println!(
                "recovered study {} status={:?}",
                h.id(),
                svc.status(*h).expect("just recovered")
            );
        }
    }
    match script {
        Some(path) => run_script(&mut svc, &path),
        // No script: finish whatever is live (typically recovered
        // studies after a restart).
        None => svc.drain().unwrap_or_else(|e| {
            eprintln!("drain failed: {e}");
            std::process::exit(1);
        }),
    }
    print_service_summary(&svc);
    telemetry.flush();
}

/// Executes a JSONL command script against a live service; see the
/// module docs for the command set.
fn run_script<E: Executor<ServiceJob, Eval>>(svc: &mut TuningService<E>, path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read script {path}: {e}");
        std::process::exit(1);
    });
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fail = |msg: String| -> ! {
            eprintln!("script {path}:{}: {msg}", i + 1);
            std::process::exit(1);
        };
        let v: serde::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => fail(format!("bad JSON: {e}")),
        };
        match v["cmd"].as_str() {
            Some("create") => {
                let name = v["name"].as_str().unwrap_or("study").to_string();
                let bench = v["bench"].as_str().unwrap_or("counting-ones-small");
                let method = lookup_method(v["method"].as_str().unwrap_or("hyper-tune"));
                let mut spec = StudySpec::new(name.clone(), bench, method);
                if let Some(s) = v["seed"].as_u64() {
                    spec.seed = s;
                }
                if let Some(n) = v["max_evals"].as_u64() {
                    spec.max_evals = n as usize;
                }
                if let Some(n) = v["eta"].as_u64() {
                    spec.eta = n as usize;
                }
                if let Some(w) = v["weight"].as_u64() {
                    spec.weight = w;
                }
                if let Some(n) = v["max_in_flight"].as_u64() {
                    spec.max_in_flight = n as usize;
                }
                match svc.create_study(spec) {
                    Ok(h) => println!("created study {} ({name})", h.id()),
                    Err(e) => fail(format!("create failed: {e}")),
                }
            }
            Some("stop") => {
                let id = v["study"]
                    .as_u64()
                    .unwrap_or_else(|| fail("stop needs a `study` id".to_string()));
                match svc.stop_study(StudyHandle::from_id(id)) {
                    Ok(true) => println!("stopped study {id}"),
                    Ok(false) => println!("study {id} was not running"),
                    Err(e) => fail(format!("stop failed: {e}")),
                }
            }
            Some("run") => {
                let n = v["completions"].as_u64().unwrap_or(1) as usize;
                match svc.run_completions(n) {
                    Ok(done) => println!("processed {done} completions"),
                    Err(e) => fail(format!("run failed: {e}")),
                }
            }
            Some("drain") => match svc.drain() {
                Ok(()) => println!("drained"),
                Err(e) => fail(format!("drain failed: {e}")),
            },
            Some("status") => print_service_summary(svc),
            Some(other) => fail(format!("unknown command {other:?}")),
            None => fail("missing `cmd` field".to_string()),
        }
    }
}

/// Per-study summary lines, stable enough for scripts to grep.
fn print_service_summary<E: Executor<ServiceJob, Eval>>(svc: &TuningService<E>) {
    let stats = svc.stats();
    for s in &stats.studies {
        let best = s
            .best
            .map(|b| format!("{b:.6}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "study {} ({}): status={:?} method={} completed={} quarantined={} best={} generation={}",
            s.id, s.name, s.status, s.method, s.completed, s.quarantined, best, s.generation
        );
    }
    let p99 = stats
        .suggest_p99_secs
        .map(|s| format!("{:.3}ms", s * 1e3))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "service: {} studies, {} completed trials, p99 suggest {p99}",
        stats.studies.len(),
        stats.total_completed
    );
}
