//! Name → constructor registries for benchmarks and methods.
//!
//! Both binaries resolve names through this module: the `hypertune`
//! driver picks the benchmark for its search space and (on the sim and
//! thread-pool substrates) for evaluation, and the `hypertune-worker`
//! binary builds its evaluator from the benchmark named in the `Hello`
//! handshake. One registry on both ends is what makes the distributed
//! substrate's histories comparable with the in-process ones: the same
//! name and seed produce the same deterministic objective everywhere.

use hypertune_benchmarks::{tasks, Benchmark, BraninMf, CountingOnes, Hartmann6Mf};
use hypertune_core::MethodKind;

/// A seeded benchmark constructor.
pub type BenchFactory = Box<dyn Fn(u64) -> Box<dyn Benchmark>>;

/// Every benchmark the binaries know, as `(name, factory)` pairs.
pub fn benches() -> Vec<(&'static str, BenchFactory)> {
    vec![
        (
            "counting-ones",
            Box::new(|s| Box::new(CountingOnes::new(8, 8, s))),
        ),
        (
            // A 4+4-dimensional variant small enough that short studies
            // reach the optimum — used by the loopback equivalence tests
            // and CI smoke, where "same best config as the sim" must be
            // attainable in tens of evaluations.
            "counting-ones-small",
            Box::new(|s| Box::new(CountingOnes::new(4, 4, s))),
        ),
        (
            "nas-cifar10",
            Box::new(|s| Box::new(tasks::nas_cifar10_valid(s))),
        ),
        (
            "nas-cifar100",
            Box::new(|s| Box::new(tasks::nas_cifar100(s))),
        ),
        (
            "nas-imagenet16",
            Box::new(|s| Box::new(tasks::nas_imagenet16(s))),
        ),
        (
            "xgboost-covertype",
            Box::new(|s| Box::new(tasks::xgboost_covertype(s))),
        ),
        (
            "xgboost-pokerhand",
            Box::new(|s| Box::new(tasks::xgboost_pokerhand(s))),
        ),
        (
            "xgboost-hepmass",
            Box::new(|s| Box::new(tasks::xgboost_hepmass(s))),
        ),
        (
            "xgboost-higgs",
            Box::new(|s| Box::new(tasks::xgboost_higgs(s))),
        ),
        (
            "resnet-cifar10",
            Box::new(|s| Box::new(tasks::resnet_cifar10(s))),
        ),
        ("lstm-ptb", Box::new(|s| Box::new(tasks::lstm_ptb(s)))),
        (
            "industrial",
            Box::new(|s| Box::new(tasks::industrial_recsys(s))),
        ),
        ("branin", Box::new(|s| Box::new(BraninMf::new(10.0, s)))),
        ("hartmann6", Box::new(|s| Box::new(Hartmann6Mf::new(s)))),
    ]
}

/// Builds the benchmark registered under `name`, or `None`.
pub fn make_bench(name: &str, seed: u64) -> Option<Box<dyn Benchmark>> {
    benches()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f(seed))
}

/// Every tuning method the binaries know, as `(name, kind)` pairs.
pub fn methods() -> Vec<(&'static str, MethodKind)> {
    vec![
        ("random", MethodKind::ARandom),
        ("bo", MethodKind::BatchBo),
        ("a-bo", MethodKind::ABo),
        ("sha", MethodKind::Sha),
        ("asha", MethodKind::Asha),
        ("hyperband", MethodKind::Hyperband),
        ("a-hyperband", MethodKind::AHyperband),
        ("bohb", MethodKind::Bohb),
        ("bohb-tpe", MethodKind::BohbTpe),
        ("a-bohb", MethodKind::ABohb),
        ("mfes-hb", MethodKind::MfesHb),
        ("a-rea", MethodKind::ARea),
        ("hyper-tune", MethodKind::HyperTune),
        ("hyper-tune-tpe", MethodKind::HyperTuneTpe),
    ]
}

/// Looks up the method registered under `name`, or `None`.
pub fn find_method(name: &str) -> Option<MethodKind> {
    methods()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, k)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bench_constructs_and_names_resolve() {
        for (name, factory) in benches() {
            let b = factory(3);
            assert!(b.max_resource() >= 1.0, "{name}");
            assert!(make_bench(name, 3).is_some());
        }
        assert!(make_bench("no-such-bench", 0).is_none());
    }

    #[test]
    fn every_method_resolves() {
        for (name, kind) in methods() {
            assert_eq!(find_method(name).map(|k| k.name()), Some(kind.name()));
        }
        assert!(find_method("no-such-method").is_none());
    }
}
