//! The TCP substrate: a driver that dispatches to worker *processes*
//! over sockets, speaking the [`crate::proto`] wire protocol.
//!
//! This is the third execution substrate (after [`crate::SimCluster`]
//! and [`crate::ThreadPool`]) and the first where a worker crash is a
//! real process death rather than a simulated one. It presents the same
//! [`Executor`] surface as the thread pool, so the threaded runner's
//! driver loops run on it unchanged.
//!
//! # Driver side: [`TcpCluster`]
//!
//! [`TcpCluster::connect`] dials a static list of worker addresses,
//! performs the Hello/HelloAck handshake on each, and spawns one reader
//! thread per connection feeding a single event channel. The driver
//! thread owns every write half; readers never write. Each worker
//! advertises a slot count in its `HelloAck` (`--slots N` on the worker
//! binary), and the driver keeps up to that many `Dispatch` frames in
//! flight per connection — capacity is the sum of slots across live
//! workers, and `submit` picks the least-loaded live worker. At one slot
//! per worker this degenerates to the old strictly synchronous
//! one-round-trip-per-eval scheme.
//!
//! ## Codec negotiation
//!
//! The `Hello` frame is always written as JSON (every peer speaks
//! version 1). When the driver wants the binary codec
//! ([`TcpClusterOptions::codec`], the default) and the hello payload is
//! an object, it adds a `"_codec": 2` key. A binary-capable worker that
//! sees the offer switches its write half to binary *before* answering,
//! so the `HelloAck`'s own encoding is the acknowledgement: the driver
//! inspects [`proto::FrameDecoder::last_codec`] on the ack and mirrors
//! it for everything it sends that worker from then on. Old JSON workers
//! ignore the unknown key and answer in JSON; old drivers never offer;
//! either way the pair settles on JSON with no extra round trip. Readers
//! on both sides accept both codecs on every frame regardless of what
//! was negotiated for writes.
//!
//! Failure semantics, mirroring the in-process substrates:
//!
//! - **Disconnect** (EOF, reset, or any framing error on the read path):
//!   the worker is dead immediately. Every job pending on it surfaces as
//!   [`JobStatus::Orphaned`] from `next_completion`, capacity shrinks by
//!   its slot count, and a `WorkerLeft` event is emitted. There is no
//!   redial: with a static address list, connect = Join at startup and
//!   disconnect = permanent Leave.
//! - **Missed heartbeats**: every worker beacons on a timer even while
//!   evaluating. If nothing (result or heartbeat) arrives from a worker
//!   with pending jobs for longer than the lease timeout, the driver
//!   sends a best-effort [`Frame::Cancel`] per pending job, tears the
//!   connection down, and orphans them all the same way.
//! - **Stale results**: once a job is orphaned its id is retired; a
//!   `Result` frame for a retired id (e.g. the cancel lost the race) is
//!   counted under `net.stale_results` and dropped, never surfaced —
//!   this is the driver-side half of the exactly-once argument
//!   (DESIGN.md §16).
//! - **Worker-initiated `Cancel`**: a worker draining on `Shutdown`
//!   acknowledges each queued-but-unrun dispatch with a `Cancel` frame.
//!   The driver reclaims the job immediately as an orphan
//!   (`net.cancel_acks`) instead of waiting for the disconnect or lease.
//!
//! Orphaned jobs hold no capacity slot, exactly like the other
//! substrates, so the retry policy can re-dispatch them to surviving
//! workers at once.
//!
//! # Worker side: [`serve_worker`]
//!
//! [`serve_worker`] is the accept loop behind the `hypertune-worker`
//! binary. Per session it reads `Hello`, asks the caller's factory for
//! an evaluator (rejecting the session via `HelloAck` on factory error),
//! then serves `Dispatch` frames pipelined: the session thread reads
//! frames and feeds a FIFO queue; a single evaluation thread pops jobs
//! in dispatch order and streams `Result` frames back as they finish; a
//! heartbeat thread beacons on a timer. All three share the write half
//! behind a mutex — each frame is encoded into a per-connection scratch
//! buffer and written with one `write_all` under the lock, so frames
//! never interleave and steady-state framing is allocation-free.
//!
//! On `Shutdown` the session drains its queue, acknowledging every
//! unstarted job with a `Cancel` frame, lets the evaluation in progress
//! finish and flush its `Result`, and only then closes the socket.
//!
//! The single evaluation thread means completion order equals dispatch
//! order no matter the slot count — which is what keeps multi-slot runs
//! reproducible (see `crates/hypertune/tests/distributed.rs`).
//!
//! The worker is intentionally typeless: jobs and outputs cross it as
//! [`serde::Value`] trees, so one worker binary can serve any benchmark
//! the handshake names.
//!
//! # Telemetry
//!
//! With a handle attached ([`TcpCluster::set_telemetry`]) the driver
//! emits `net.*` counters (`dispatches`, `results`, `stale_results`,
//! `heartbeats`, `cancels`, `cancel_acks`, `disconnects`,
//! `codec.binary`/`codec.json` per negotiated connection), latency
//! histograms (`net.job_rtt_ms` dispatch→result, `net.heartbeat_gap_ms`
//! between liveness signals, `net.batch_size` dispatches per scheduler
//! round), per-worker completion gauges, and the same
//! `WorkerJoined`/`WorkerLeft` membership events the elastic substrates
//! produce.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown as SockShutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hypertune_telemetry::{Event, TelemetryHandle};
use serde::{Deserialize, Number, Serialize, Value};

use crate::executor::{Executor, PoolResult};
use crate::proto::{self, Codec, Frame, FrameDecoder, FrameEncoder, ProtoError};
use crate::sim::{ClusterError, JobStatus};

/// Knobs for the driver side of the TCP substrate.
#[derive(Debug, Clone)]
pub struct TcpClusterOptions {
    /// How long a worker with pending jobs may stay silent (no result,
    /// no heartbeat) before the driver cancels and orphans them.
    /// Must comfortably exceed the worker heartbeat interval.
    pub lease_timeout: Duration,
    /// Preferred wire codec. [`Codec::Binary`] (the default) offers the
    /// binary codec in the handshake and uses it per-connection when the
    /// worker accepts; [`Codec::Json`] never offers, pinning every
    /// connection to the version-1 JSON framing.
    pub codec: Codec,
}

impl Default for TcpClusterOptions {
    fn default() -> Self {
        Self {
            lease_timeout: Duration::from_secs(10),
            codec: Codec::Binary,
        }
    }
}

/// What a reader thread reports back to the driver.
enum NetEvent {
    /// A decoded frame from worker `worker`.
    Frame { worker: usize, frame: Frame },
    /// The connection to worker `worker` is gone (EOF or framing error).
    Disconnected { worker: usize, reason: ProtoError },
}

/// A job awaiting its `Result` frame.
struct Pending<J> {
    job_id: u64,
    job: J,
    sent: Instant,
}

/// Driver-side state for one worker connection.
struct WorkerConn<J> {
    addr: String,
    /// Write half; the matching read half lives on the reader thread.
    stream: TcpStream,
    alive: bool,
    /// In-flight jobs, in dispatch order; at most `slots` of them.
    pending: Vec<Pending<J>>,
    /// Concurrent dispatch capacity advertised in the `HelloAck`.
    slots: usize,
    /// Negotiated write codec for this connection.
    codec: Codec,
    /// Last time anything (handshake, heartbeat, result) arrived.
    last_seen: Instant,
    completed: u64,
    reader: Option<JoinHandle<()>>,
}

/// A cluster of worker processes reached over TCP, presenting the same
/// submit/complete contract as [`crate::ThreadPool`]. See the module
/// docs for lifecycle and failure semantics.
pub struct TcpCluster<J, O> {
    workers: Vec<WorkerConn<J>>,
    events_rx: Receiver<NetEvent>,
    /// Kept so the channel never disconnects while the driver lives,
    /// even after every reader thread has exited.
    _events_tx: Sender<NetEvent>,
    lease: Duration,
    next_job_id: u64,
    in_flight: usize,
    /// Total slots across live workers.
    capacity: usize,
    /// Ready-to-surface orphan results, drained before anything else.
    orphans: VecDeque<PoolResult<J, O>>,
    /// Shared encode scratch buffer for every outgoing frame.
    enc: FrameEncoder,
    /// Dispatches since the last `next_completion` call, recorded into
    /// the `net.batch_size` histogram.
    batch: u64,
    telemetry: TelemetryHandle,
    joins_emitted: bool,
}

impl<J, O> TcpCluster<J, O>
where
    J: Serialize,
    O: Deserialize,
{
    /// Dials every address, handshakes with `hello`, and spawns one
    /// reader thread per connection. Fails fast on the first address
    /// that cannot be reached or rejects the handshake — a partial
    /// cluster at startup is an operator error, unlike churn later.
    ///
    /// When `opts.codec` is [`Codec::Binary`] and `hello` is an object,
    /// a `"_codec": 2` offer is added to the handshake payload; the
    /// codec each connection settles on is whatever the worker answered
    /// in (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn connect<A>(
        addrs: &[A],
        hello: Value,
        opts: TcpClusterOptions,
    ) -> Result<Self, ProtoError>
    where
        A: ToSocketAddrs + std::fmt::Display,
    {
        assert!(!addrs.is_empty(), "cluster needs at least one worker");
        let hello = match (opts.codec, &hello) {
            (Codec::Binary, Value::Object(map)) => {
                let mut map = map.clone();
                map.insert(
                    "_codec".to_string(),
                    Value::Number(Number::PosInt(u64::from(proto::WIRE_VERSION_BINARY))),
                );
                Value::Object(map)
            }
            // A non-object hello has nowhere to carry the offer; the
            // connection stays on JSON.
            _ => hello,
        };
        let (tx, rx) = unbounded();
        let mut workers = Vec::with_capacity(addrs.len());
        let mut capacity = 0;
        for (idx, addr) in addrs.iter().enumerate() {
            let mut stream = TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            proto::write_frame(
                &mut stream,
                &Frame::Hello {
                    payload: hello.clone(),
                },
            )?;
            let mut dec = FrameDecoder::new();
            let slots = match dec.read_from(&mut stream)? {
                Frame::HelloAck { slots, error: None } => slots.max(1),
                Frame::HelloAck {
                    error: Some(reason),
                    ..
                } => {
                    return Err(ProtoError::Garbage(format!(
                        "worker {addr} rejected handshake: {reason}"
                    )))
                }
                other => {
                    return Err(ProtoError::Garbage(format!(
                        "worker {addr}: expected HelloAck, got {other:?}"
                    )))
                }
            };
            // The ack's own encoding is the worker's answer to the
            // codec offer.
            let codec = match opts.codec {
                Codec::Binary => dec.last_codec(),
                Codec::Json => Codec::Json,
            };
            capacity += slots;
            let reader_stream = stream.try_clone()?;
            let reader_tx = tx.clone();
            let reader = std::thread::spawn(move || reader_loop(idx, reader_stream, reader_tx));
            workers.push(WorkerConn {
                addr: addr.to_string(),
                stream,
                alive: true,
                pending: Vec::with_capacity(slots),
                slots,
                codec,
                last_seen: Instant::now(),
                completed: 0,
                reader: Some(reader),
            });
        }
        Ok(Self {
            workers,
            events_rx: rx,
            _events_tx: tx,
            lease: opts.lease_timeout,
            next_job_id: 0,
            in_flight: 0,
            capacity,
            orphans: VecDeque::new(),
            enc: FrameEncoder::new(opts.codec),
            batch: 0,
            telemetry: TelemetryHandle::disabled(),
            joins_emitted: false,
        })
    }

    /// Attaches a telemetry handle. The first attachment replays one
    /// `WorkerJoined` per live connection (connect = Join happened
    /// before any handle existed) and counts each connection's
    /// negotiated codec under `net.codec.binary` / `net.codec.json`.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
        if !self.joins_emitted {
            self.joins_emitted = true;
            let mut n_alive = 0;
            for (idx, w) in self.workers.iter().enumerate() {
                if w.alive {
                    n_alive += 1;
                    self.telemetry.emit_now_with(|| Event::WorkerJoined {
                        worker: idx,
                        n_alive,
                    });
                    let key = match w.codec {
                        Codec::Binary => "net.codec.binary",
                        Codec::Json => "net.codec.json",
                    };
                    self.telemetry.counter_add(key, 1);
                }
            }
            self.telemetry
                .gauge_set("net.workers_alive", self.capacity as f64);
        }
    }

    /// Total dispatch capacity: the sum of slots across live workers.
    pub fn n_workers(&self) -> usize {
        self.capacity
    }

    /// Jobs dispatched and not yet completed or orphaned.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Free slots on live workers.
    pub fn idle_workers(&self) -> usize {
        self.capacity.saturating_sub(self.in_flight)
    }

    /// Address of worker `idx` as given at connect time (for logs).
    pub fn worker_addr(&self, idx: usize) -> &str {
        &self.workers[idx].addr
    }

    /// The write codec connection `idx` settled on in the handshake.
    pub fn worker_codec(&self, idx: usize) -> Codec {
        self.workers[idx].codec
    }

    /// Submits a job to the least-loaded live worker with a free slot;
    /// errors when every slot is busy. If the write itself fails the
    /// connection is dead: the submit still succeeds and the job (plus
    /// anything else pending there) surfaces as [`JobStatus::Orphaned`]
    /// (mirroring a dispatch onto a crashing worker in the other
    /// substrates).
    pub fn submit(&mut self, job: J) -> Result<(), ClusterError> {
        let idx = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive && w.pending.len() < w.slots)
            .min_by_key(|&(i, w)| (w.pending.len(), i))
            .map(|(i, _)| i)
            .ok_or(ClusterError::NoIdleWorker)?;
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let payload = serde_json::to_value(&job);
        let frame = Frame::Dispatch { job_id, payload };
        self.enc.set_codec(self.workers[idx].codec);
        let buf = self.enc.encode(&frame);
        match self.workers[idx].stream.write_all(buf) {
            Ok(()) => {
                self.workers[idx].pending.push(Pending {
                    job_id,
                    job,
                    sent: Instant::now(),
                });
                self.in_flight += 1;
                self.batch += 1;
                self.telemetry.counter_add("net.dispatches", 1);
                Ok(())
            }
            Err(_) => {
                self.kill_and_orphan(idx);
                self.orphans.push_back(PoolResult {
                    job,
                    output: None,
                    status: JobStatus::Orphaned,
                    worker: idx,
                });
                Ok(())
            }
        }
    }

    /// Marks a worker dead: shuts its socket both ways (unblocking the
    /// reader thread), shrinks capacity by its slots, and emits
    /// membership telemetry. Pending-job handling is the caller's job.
    fn kill_worker(&mut self, idx: usize) {
        let w = &mut self.workers[idx];
        if !w.alive {
            return;
        }
        w.alive = false;
        let _ = w.stream.shutdown(SockShutdown::Both);
        self.capacity -= w.slots;
        let n_alive = self.capacity;
        self.telemetry.counter_add("net.disconnects", 1);
        self.telemetry
            .gauge_set("net.workers_alive", n_alive as f64);
        self.telemetry.emit_now_with(|| Event::WorkerLeft {
            worker: idx,
            n_alive,
        });
    }

    /// Kills worker `idx` and queues every job pending on it as an
    /// orphan result. The job ids are retired: a late `Result` for any
    /// of them is stale by construction.
    fn kill_and_orphan(&mut self, idx: usize) {
        let drained: Vec<Pending<J>> = self.workers[idx].pending.drain(..).collect();
        for p in drained {
            self.in_flight -= 1;
            self.orphans.push_back(PoolResult {
                job: p.job,
                output: None,
                status: JobStatus::Orphaned,
                worker: idx,
            });
        }
        self.kill_worker(idx);
    }

    /// Blocks until the next job completes or orphans; returns
    /// [`ClusterError::Quiescent`] when nothing is pending anywhere.
    pub fn next_completion(&mut self) -> Result<PoolResult<J, O>, ClusterError> {
        // One scheduler round's worth of submits has landed; record how
        // wide the dispatch batch was.
        if self.batch > 0 {
            self.telemetry
                .histogram_record("net.batch_size", self.batch as f64);
            self.batch = 0;
        }
        loop {
            if let Some(r) = self.orphans.pop_front() {
                return Ok(r);
            }
            // Lease sweep: a silent worker with pending jobs is dead to
            // us once the lease runs out.
            let now = Instant::now();
            let expired = self.workers.iter().position(|w| {
                w.alive && !w.pending.is_empty() && now.duration_since(w.last_seen) >= self.lease
            });
            if let Some(idx) = expired {
                // Best-effort: the worker may be hung, not gone. Either
                // way the ids are retired and any late result is stale.
                self.enc.set_codec(self.workers[idx].codec);
                let ids: Vec<u64> = self.workers[idx].pending.iter().map(|p| p.job_id).collect();
                for job_id in ids {
                    let buf = self.enc.encode(&Frame::Cancel { job_id });
                    let _ = self.workers[idx].stream.write_all(buf);
                    self.telemetry.counter_add("net.cancels", 1);
                }
                self.kill_and_orphan(idx);
                continue;
            }
            if self.in_flight == 0 {
                return Err(ClusterError::Quiescent);
            }
            // Block for the next event, but wake at the earliest lease
            // deadline so silence is noticed.
            let deadline = self
                .workers
                .iter()
                .filter(|w| w.alive && !w.pending.is_empty())
                .map(|w| w.last_seen + self.lease)
                .min();
            let event = match deadline {
                None => match self.events_rx.recv() {
                    Ok(e) => e,
                    Err(_) => return Err(ClusterError::Quiescent),
                },
                Some(d) => match self
                    .events_rx
                    .recv_timeout(d.saturating_duration_since(now))
                {
                    Ok(e) => e,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::Quiescent),
                },
            };
            match event {
                NetEvent::Disconnected { worker, reason } => {
                    if self.workers[worker].alive {
                        // A clean EOF and a framing error both kill the
                        // worker, but only the latter is a read fault.
                        if !matches!(reason, ProtoError::Closed) {
                            self.telemetry.counter_add("net.read_errors", 1);
                        }
                        self.kill_and_orphan(worker);
                    }
                }
                NetEvent::Frame { worker, frame } => {
                    if !self.workers[worker].alive {
                        // Residue from a connection we already tore down.
                        continue;
                    }
                    let gap = self.workers[worker].last_seen.elapsed();
                    self.workers[worker].last_seen = Instant::now();
                    match frame {
                        Frame::Heartbeat { .. } => {
                            self.telemetry.counter_add("net.heartbeats", 1);
                            self.telemetry
                                .histogram_record("net.heartbeat_gap_ms", gap.as_secs_f64() * 1e3);
                        }
                        Frame::Result {
                            job_id,
                            status,
                            output,
                        } => {
                            let pos = self.workers[worker]
                                .pending
                                .iter()
                                .position(|p| p.job_id == job_id);
                            let Some(pos) = pos else {
                                // Retired id (orphaned then re-dispatched
                                // elsewhere): drop, never double-count.
                                self.telemetry.counter_add("net.stale_results", 1);
                                continue;
                            };
                            let p = self.workers[worker].pending.remove(pos);
                            self.in_flight -= 1;
                            self.workers[worker].completed += 1;
                            self.telemetry.counter_add("net.results", 1);
                            self.telemetry.histogram_record(
                                "net.job_rtt_ms",
                                p.sent.elapsed().as_secs_f64() * 1e3,
                            );
                            self.telemetry.gauge_set(
                                &format!("net.worker{worker}.completed"),
                                self.workers[worker].completed as f64,
                            );
                            let (status, output) = if output.is_null() {
                                (status, None)
                            } else {
                                match O::from_value(&output) {
                                    Ok(o) => (status, Some(o)),
                                    Err(_) => {
                                        // Undecodable payload: demote to a
                                        // plain failure so no caller trusts it.
                                        self.telemetry.counter_add("net.bad_outputs", 1);
                                        (JobStatus::Errored, None)
                                    }
                                }
                            };
                            return Ok(PoolResult {
                                job: p.job,
                                output,
                                status,
                                worker,
                            });
                        }
                        Frame::Cancel { job_id } => {
                            // The worker is draining: it dropped this
                            // queued job without running it. Reclaim it
                            // now instead of waiting for the disconnect.
                            let pos = self.workers[worker]
                                .pending
                                .iter()
                                .position(|p| p.job_id == job_id);
                            let Some(pos) = pos else {
                                self.telemetry.counter_add("net.stale_results", 1);
                                continue;
                            };
                            let p = self.workers[worker].pending.remove(pos);
                            self.in_flight -= 1;
                            self.telemetry.counter_add("net.cancel_acks", 1);
                            return Ok(PoolResult {
                                job: p.job,
                                output: None,
                                status: JobStatus::Orphaned,
                                worker,
                            });
                        }
                        other => {
                            // A frame only drivers may send: the peer is
                            // not speaking our protocol. Tear it down.
                            let _ = other;
                            self.telemetry.counter_add("net.protocol_violations", 1);
                            self.kill_and_orphan(worker);
                        }
                    }
                }
            }
        }
    }
}

impl<J, O> Executor<J, O> for TcpCluster<J, O>
where
    J: Serialize,
    O: Deserialize,
{
    fn submit(&mut self, job: J) -> Result<(), ClusterError> {
        TcpCluster::submit(self, job)
    }

    fn next_completion(&mut self) -> Result<PoolResult<J, O>, ClusterError> {
        TcpCluster::next_completion(self)
    }

    fn n_workers(&self) -> usize {
        TcpCluster::n_workers(self)
    }

    fn in_flight(&self) -> usize {
        TcpCluster::in_flight(self)
    }

    fn idle_workers(&self) -> usize {
        TcpCluster::idle_workers(self)
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        TcpCluster::set_telemetry(self, telemetry)
    }
}

impl<J, O> Drop for TcpCluster<J, O> {
    fn drop(&mut self) {
        for i in 0..self.workers.len() {
            if self.workers[i].alive {
                // Polite goodbye, then force the socket down either way
                // so the reader thread unblocks.
                self.enc.set_codec(self.workers[i].codec);
                let buf = self.enc.encode(&Frame::Shutdown);
                let _ = self.workers[i].stream.write_all(buf);
                let _ = self.workers[i].stream.shutdown(SockShutdown::Both);
            }
        }
        for w in &mut self.workers {
            if let Some(h) = w.reader.take() {
                let _ = h.join();
            }
        }
    }
}

/// Reads frames until the connection dies, forwarding everything to the
/// driver's event channel. Never writes. The decoder's body buffer is
/// reused across frames, so a steady result stream allocates only for
/// the decoded `Value` trees themselves.
fn reader_loop(worker: usize, mut stream: TcpStream, tx: Sender<NetEvent>) {
    let mut dec = FrameDecoder::new();
    loop {
        match dec.read_from(&mut stream) {
            Ok(frame) => {
                if tx.send(NetEvent::Frame { worker, frame }).is_err() {
                    return;
                }
            }
            Err(reason) => {
                let _ = tx.send(NetEvent::Disconnected { worker, reason });
                return;
            }
        }
    }
}

/// Knobs for the worker side of the TCP substrate.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// How often the heartbeat thread beacons. Keep this several times
    /// smaller than the driver's lease timeout.
    pub heartbeat_interval: Duration,
    /// Serve exactly one session, then return (used by tests and by
    /// `hypertune-worker --once`).
    pub once: bool,
    /// How many `Dispatch` frames the session accepts in flight,
    /// advertised to the driver via `HelloAck::slots`. Evaluation stays
    /// on a single thread serving the queue in FIFO order; extra slots
    /// hide dispatch round-trips, they do not add parallelism.
    pub slots: usize,
    /// Preferred wire codec. [`Codec::Binary`] (the default) upgrades
    /// the session when the driver's hello carries a `"_codec"` offer;
    /// [`Codec::Json`] never upgrades, behaving exactly like a
    /// version-1 peer.
    pub codec: Codec,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(250),
            once: false,
            slots: 1,
            codec: Codec::Binary,
        }
    }
}

/// A worker-side evaluator: turns a `Dispatch` payload into a status and
/// an output payload (`Value::Null` when there is none).
pub type EvalFn = Box<dyn Fn(&Value) -> (JobStatus, Value) + Send>;

/// The session's shared write half: socket plus a reused encode scratch
/// buffer, always taken together under one lock so concurrent writers
/// (session, evaluator, heartbeat) never interleave frame bytes.
struct FrameWriter {
    stream: TcpStream,
    enc: FrameEncoder,
}

impl FrameWriter {
    fn write(&mut self, frame: &Frame) -> Result<(), ProtoError> {
        let buf = self.enc.encode(frame);
        self.stream.write_all(buf).map_err(ProtoError::from)
    }
}

/// The session's dispatch queue: the session thread pushes, the single
/// evaluation thread pops in FIFO order, and `close` drains whatever
/// never started so it can be Cancel-acknowledged.
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    cv: Condvar,
}

struct JobQueueInner {
    jobs: VecDeque<(u64, Value)>,
    closed: bool,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            inner: Mutex::new(JobQueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job_id: u64, payload: Value) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.closed {
            return;
        }
        g.jobs.push_back((job_id, payload));
        self.cv.notify_one();
    }

    /// Removes a not-yet-started job; `false` if it already ran (or is
    /// running), in which case its `Result` gets fenced driver-side.
    fn cancel(&self, job_id: u64) -> bool {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match g.jobs.iter().position(|(id, _)| *id == job_id) {
            Some(pos) => {
                g.jobs.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Closes the queue (unblocking the evaluator once it drains) and
    /// returns every job that never started.
    fn close(&self) -> Vec<(u64, Value)> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        let drained = g.jobs.drain(..).collect();
        self.cv.notify_all();
        drained
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// empty.
    fn pop(&self) -> Option<(u64, Value)> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = g.jobs.pop_front() {
                return Some(job);
            }
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Serves driver sessions on `listener` forever (or once, under
/// [`WorkerOptions::once`]). Per session, `make_eval` interprets the
/// `Hello` payload and builds the evaluator — returning `Err(reason)`
/// rejects the session via `HelloAck` without dropping the accept loop.
/// (The hello passed through may carry the protocol's `"_codec"`
/// negotiation key; factories should ignore unknown keys.)
///
/// Session errors (protocol violations, mid-stream disconnects) are
/// logged to stderr and do not kill the worker; the next driver can
/// connect fresh.
pub fn serve_worker<F>(
    listener: TcpListener,
    opts: WorkerOptions,
    make_eval: F,
) -> std::io::Result<()>
where
    F: Fn(&Value) -> Result<EvalFn, String>,
{
    loop {
        let (stream, peer) = listener.accept()?;
        let _ = stream.set_nodelay(true);
        if let Err(e) = serve_session(stream, &opts, &make_eval) {
            eprintln!("hypertune-worker: session with {peer} failed: {e}");
        }
        if opts.once {
            return Ok(());
        }
    }
}

/// Handshakes and serves one driver connection to completion.
fn serve_session<F>(
    stream: TcpStream,
    opts: &WorkerOptions,
    make_eval: &F,
) -> Result<(), ProtoError>
where
    F: Fn(&Value) -> Result<EvalFn, String>,
{
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let writer = Arc::new(Mutex::new(FrameWriter {
        stream,
        enc: FrameEncoder::new(Codec::Json),
    }));
    let hello = match dec.read_from(&mut reader)? {
        Frame::Hello { payload } => payload,
        other => {
            return Err(ProtoError::Garbage(format!(
                "expected Hello, got {other:?}"
            )))
        }
    };
    // Codec negotiation: switch the write half to binary *before* the
    // HelloAck goes out, so the ack's own encoding is the answer the
    // driver is waiting for.
    let offered = hello
        .as_object()
        .and_then(|m| m.get("_codec"))
        .and_then(|v| v.as_u64())
        .unwrap_or(u64::from(proto::WIRE_VERSION));
    if opts.codec == Codec::Binary && offered >= u64::from(proto::WIRE_VERSION_BINARY) {
        writer
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .enc
            .set_codec(Codec::Binary);
    }
    let slots = opts.slots.max(1);
    let eval = match make_eval(&hello) {
        Ok(eval) => {
            write_locked(&writer, &Frame::HelloAck { slots, error: None })?;
            eval
        }
        Err(reason) => {
            write_locked(
                &writer,
                &Frame::HelloAck {
                    slots: 0,
                    error: Some(reason),
                },
            )?;
            return Ok(());
        }
    };
    // Heartbeats come from their own thread so a long evaluation never
    // looks like a death. All writers share the write half; each frame
    // is one write_all under the lock, so frames never interleave.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::clone(&stop);
    let hb_writer = Arc::clone(&writer);
    let interval = opts.heartbeat_interval;
    let heartbeat = std::thread::spawn(move || {
        let mut seq = 0u64;
        loop {
            std::thread::sleep(interval);
            if hb_stop.load(Ordering::Relaxed) {
                return;
            }
            seq += 1;
            if write_locked(&hb_writer, &Frame::Heartbeat { seq }).is_err() {
                return;
            }
        }
    });
    // One evaluation thread pops the queue in FIFO order and streams
    // results back as they finish — pipelining without reordering.
    let queue = Arc::new(JobQueue::new());
    let eval_queue = Arc::clone(&queue);
    let eval_writer = Arc::clone(&writer);
    let evaluator = std::thread::spawn(move || {
        while let Some((job_id, payload)) = eval_queue.pop() {
            let (status, output) = eval(&payload);
            let frame = Frame::Result {
                job_id,
                status,
                output,
            };
            if write_locked(&eval_writer, &frame).is_err() {
                return;
            }
        }
    });
    let outcome = session_loop(&mut reader, &mut dec, &writer, &queue);
    // Whatever ended the session, release the evaluator and let the
    // in-progress job's Result flush before the socket goes down (the
    // heartbeat keeps the driver's lease alive meanwhile).
    let _ = queue.close();
    let _ = evaluator.join();
    stop.store(true, Ordering::Relaxed);
    {
        let guard = writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = guard.stream.shutdown(SockShutdown::Both);
    }
    let _ = heartbeat.join();
    outcome
}

/// The worker's frame-pump loop: dispatches go onto the queue, cancels
/// come off it, and `Shutdown` drains it with Cancel acknowledgements.
fn session_loop(
    reader: &mut TcpStream,
    dec: &mut FrameDecoder,
    writer: &Arc<Mutex<FrameWriter>>,
    queue: &Arc<JobQueue>,
) -> Result<(), ProtoError> {
    loop {
        match dec.read_from(reader) {
            Ok(Frame::Dispatch { job_id, payload }) => queue.push(job_id, payload),
            // If the job already started (or finished), its Result is
            // fenced driver-side as stale; nothing to do here.
            Ok(Frame::Cancel { job_id }) => {
                let _ = queue.cancel(job_id);
            }
            Ok(Frame::Shutdown) => {
                // Drain: every queued-but-unstarted job is handed back
                // via Cancel so the driver reclaims it immediately
                // instead of inferring orphans from the disconnect.
                for (job_id, _) in queue.close() {
                    if write_locked(writer, &Frame::Cancel { job_id }).is_err() {
                        break;
                    }
                }
                return Ok(());
            }
            Ok(other) => {
                return Err(ProtoError::Garbage(format!(
                    "unexpected frame from driver: {other:?}"
                )))
            }
            // Driver vanished between frames; not this worker's fault.
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Encodes and writes one frame atomically under the shared-writer lock.
fn write_locked(writer: &Arc<Mutex<FrameWriter>>, frame: &Frame) -> Result<(), ProtoError> {
    let mut guard = writer.lock().unwrap_or_else(|p| p.into_inner());
    guard.write(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// Spawns an in-process worker doubling u64 jobs; returns its addr.
    fn spawn_doubler(once: bool) -> (String, JoinHandle<std::io::Result<()>>) {
        spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once,
            ..WorkerOptions::default()
        })
    }

    fn spawn_doubler_with(opts: WorkerOptions) -> (String, JoinHandle<std::io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            serve_worker(listener, opts, |hello| {
                if hello.as_object().and_then(|m| m.get("reject")).is_some() {
                    return Err("rejected by test factory".to_string());
                }
                Ok(Box::new(|payload: &Value| {
                    let x = payload.as_u64().unwrap_or(0);
                    (JobStatus::Succeeded, json!(x * 2))
                }) as EvalFn)
            })
        });
        (addr, handle)
    }

    fn opts_with_lease(ms: u64) -> TcpClusterOptions {
        TcpClusterOptions {
            lease_timeout: Duration::from_millis(ms),
            ..TcpClusterOptions::default()
        }
    }

    #[test]
    fn jobs_round_trip_over_loopback() {
        let (a, ha) = spawn_doubler(true);
        let (b, hb) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a, b], json!({"test": true}), TcpClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.n_workers(), 2);
        // Both sides default to binary and the hello is an object, so
        // the offer goes out and both workers take it.
        assert_eq!(cluster.worker_codec(0), Codec::Binary);
        assert_eq!(cluster.worker_codec(1), Codec::Binary);
        let mut outs = Vec::new();
        let mut next = 0u64;
        while outs.len() < 10 {
            while next < 10 && cluster.submit(next).is_ok() {
                next += 1;
            }
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Succeeded);
            assert_eq!(r.output, Some(r.job * 2));
            outs.push(r.output.unwrap());
        }
        assert_eq!(
            cluster.next_completion().unwrap_err(),
            ClusterError::Quiescent
        );
        drop(cluster); // sends Shutdown; --once workers then return
        ha.join().unwrap().unwrap();
        hb.join().unwrap().unwrap();
    }

    #[test]
    fn non_object_hello_pins_the_session_to_json() {
        // A hello with nowhere to carry the `_codec` offer must leave
        // the connection on the version-1 JSON framing.
        let (a, h) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a], json!(null), TcpClusterOptions::default()).unwrap();
        assert_eq!(cluster.worker_codec(0), Codec::Json);
        cluster.submit(3).unwrap();
        assert_eq!(cluster.next_completion().unwrap().output, Some(6));
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn mixed_codec_fleet_interops() {
        // One binary-capable worker, one deliberately stuck on JSON
        // (a "v1 peer"): the driver must speak to each in its own
        // codec within a single fleet.
        let (a, ha) = spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            ..WorkerOptions::default()
        });
        let (b, hb) = spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            codec: Codec::Json,
            ..WorkerOptions::default()
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a, b], json!({"test": true}), TcpClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.worker_codec(0), Codec::Binary);
        assert_eq!(cluster.worker_codec(1), Codec::Json);
        let mut outs = Vec::new();
        let mut next = 0u64;
        while outs.len() < 10 {
            while next < 10 && cluster.submit(next).is_ok() {
                next += 1;
            }
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Succeeded);
            assert_eq!(r.output, Some(r.job * 2));
            outs.push(r.job);
        }
        outs.sort_unstable();
        assert_eq!(outs, (0..10).collect::<Vec<_>>());
        drop(cluster);
        ha.join().unwrap().unwrap();
        hb.join().unwrap().unwrap();
    }

    #[test]
    fn multi_slot_worker_pipelines_in_fifo_order() {
        let (addr, h) = spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            slots: 4,
            ..WorkerOptions::default()
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!({"test": true}), TcpClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.n_workers(), 4, "capacity counts slots");
        for j in 0..4 {
            cluster.submit(j).unwrap();
        }
        assert_eq!(cluster.in_flight(), 4);
        assert_eq!(cluster.submit(99), Err(ClusterError::NoIdleWorker));
        let mut jobs = Vec::new();
        for _ in 0..4 {
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Succeeded);
            assert_eq!(r.output, Some(r.job * 2));
            jobs.push(r.job);
        }
        assert_eq!(
            jobs,
            vec![0, 1, 2, 3],
            "single evaluation thread serves the queue in dispatch order"
        );
        assert_eq!(
            cluster.next_completion().unwrap_err(),
            ClusterError::Quiescent
        );
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_dispatches_with_cancel_acks() {
        // A hand-rolled driver: dispatch three jobs at a slow slots-4
        // worker, then send Shutdown. The job already evaluating must
        // answer with a Result; the two still queued must come back as
        // Cancel acknowledgements, not silence.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            slots: 4,
            ..WorkerOptions::default()
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|payload: &Value| {
                    std::thread::sleep(Duration::from_millis(80));
                    (JobStatus::Succeeded, payload.clone())
                }) as EvalFn)
            })
        });
        let mut s = TcpStream::connect(&addr).unwrap();
        proto::write_frame(
            &mut s,
            &Frame::Hello {
                payload: json!(null),
            },
        )
        .unwrap();
        match proto::read_frame(&mut s).unwrap() {
            Frame::HelloAck {
                slots: 4,
                error: None,
            } => {}
            other => panic!("expected 4-slot HelloAck, got {other:?}"),
        }
        proto::write_frame(
            &mut s,
            &Frame::Dispatch {
                job_id: 0,
                payload: json!(1),
            },
        )
        .unwrap();
        // Give the evaluator time to start job 0 before queueing more.
        std::thread::sleep(Duration::from_millis(30));
        proto::write_frame(
            &mut s,
            &Frame::Dispatch {
                job_id: 1,
                payload: json!(2),
            },
        )
        .unwrap();
        proto::write_frame(
            &mut s,
            &Frame::Dispatch {
                job_id: 2,
                payload: json!(3),
            },
        )
        .unwrap();
        proto::write_frame(&mut s, &Frame::Shutdown).unwrap();
        let mut results = Vec::new();
        let mut cancels = Vec::new();
        loop {
            match proto::read_frame(&mut s) {
                Ok(Frame::Heartbeat { .. }) => {}
                Ok(Frame::Result { job_id, .. }) => results.push(job_id),
                Ok(Frame::Cancel { job_id }) => cancels.push(job_id),
                Ok(other) => panic!("unexpected frame: {other:?}"),
                Err(_) => break, // session over
            }
        }
        cancels.sort_unstable();
        assert_eq!(results, vec![0], "the in-progress job still answers");
        assert_eq!(cancels, vec![1, 2], "queued jobs are handed back");
        h.join().unwrap().unwrap();
    }

    #[test]
    fn worker_cancel_ack_surfaces_an_orphan() {
        // A hand-rolled worker that refuses the job via a Cancel ack:
        // the driver must reclaim it as an orphan without tearing the
        // connection down.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Hello
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )
            .unwrap();
            let job_id = match proto::read_frame(&mut s).unwrap() {
                Frame::Dispatch { job_id, .. } => job_id,
                other => panic!("expected Dispatch, got {other:?}"),
            };
            proto::write_frame(&mut s, &Frame::Cancel { job_id }).unwrap();
            // Linger for the shutdown so the driver's reader sees a
            // clean session end.
            let _ = proto::read_frame(&mut s);
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(7).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert_eq!(r.job, 7);
        assert_eq!(r.output, None);
        assert_eq!(cluster.in_flight(), 0, "the slot is reclaimed");
        assert_eq!(cluster.n_workers(), 1, "a drain ack is not a death");
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn oversubscription_is_rejected() {
        let (a, h) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(1).unwrap();
        assert_eq!(cluster.submit(2), Err(ClusterError::NoIdleWorker));
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.output, Some(2));
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn handshake_rejection_is_a_typed_error() {
        let (a, h) = spawn_doubler(true);
        let err = match TcpCluster::<u64, u64>::connect(
            &[a],
            json!({"reject": true}),
            TcpClusterOptions::default(),
        ) {
            Ok(_) => panic!("handshake should have been rejected"),
            Err(e) => e,
        };
        match err {
            ProtoError::Garbage(msg) => assert!(msg.contains("rejected")),
            other => panic!("expected Garbage, got {other:?}"),
        }
        h.join().unwrap().unwrap();
    }

    #[test]
    fn disconnect_orphans_the_pending_job() {
        // A hand-rolled "worker" that takes the job and dies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Hello
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )
            .unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Dispatch
            drop(s); // process death
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(7).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert_eq!(r.job, 7);
        assert_eq!(r.output, None);
        assert_eq!(cluster.n_workers(), 0, "disconnect is a permanent leave");
        assert_eq!(cluster.in_flight(), 0, "orphan holds no slot");
        h.join().unwrap();
    }

    #[test]
    fn missed_heartbeats_expire_the_lease() {
        // Accepts and handshakes, then goes silent forever: no result,
        // no heartbeat. The driver must orphan the job after the lease.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap();
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )
            .unwrap();
            // Hold the connection open, silently, until the driver
            // tears it down.
            loop {
                match proto::read_frame(&mut s) {
                    Ok(_) => continue,
                    Err(_) => return,
                }
            }
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts_with_lease(80)).unwrap();
        cluster.submit(5).unwrap();
        let t0 = Instant::now();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "orphan must wait out the lease"
        );
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn stale_results_are_dropped() {
        // A worker that answers a retired job id first, then the real
        // one: the driver must drop the former and surface the latter.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap();
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )
            .unwrap();
            let (job_id, payload) = match proto::read_frame(&mut s).unwrap() {
                Frame::Dispatch { job_id, payload } => (job_id, payload),
                other => panic!("expected Dispatch, got {other:?}"),
            };
            proto::write_frame(
                &mut s,
                &Frame::Result {
                    job_id: job_id + 999, // nobody asked for this id
                    status: JobStatus::Succeeded,
                    output: json!(u64::MAX),
                },
            )
            .unwrap();
            let x = payload.as_u64().unwrap();
            proto::write_frame(
                &mut s,
                &Frame::Result {
                    job_id,
                    status: JobStatus::Succeeded,
                    output: json!(x * 2),
                },
            )
            .unwrap();
            // Linger for the shutdown so the driver's reader sees a
            // clean session end.
            let _ = proto::read_frame(&mut s);
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(21).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded);
        assert_eq!(r.output, Some(42), "the stale result must not surface");
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn failure_statuses_cross_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            ..WorkerOptions::default()
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|_: &Value| (JobStatus::Errored, Value::Null)) as EvalFn)
            })
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(1).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Errored);
        assert_eq!(r.output, None);
        assert!(!r.is_ok());
        assert_eq!(cluster.idle_workers(), 1, "slot is free for a retry");
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn heartbeats_cover_long_evaluations() {
        // Evaluation takes 3x the lease; heartbeats must keep the lease
        // alive so the job completes instead of orphaning.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(15),
            once: true,
            ..WorkerOptions::default()
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|payload: &Value| {
                    std::thread::sleep(Duration::from_millis(240));
                    (JobStatus::Succeeded, payload.clone())
                }) as EvalFn)
            })
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts_with_lease(80)).unwrap();
        cluster.submit(11).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded, "heartbeats held the lease");
        assert_eq!(r.output, Some(11));
        drop(cluster);
        h.join().unwrap().unwrap();
    }
}
