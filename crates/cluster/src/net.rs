//! The TCP substrate: a driver that dispatches to worker *processes*
//! over sockets, speaking the [`crate::proto`] wire protocol.
//!
//! This is the third execution substrate (after [`crate::SimCluster`]
//! and [`crate::ThreadPool`]) and the first where a worker crash is a
//! real process death rather than a simulated one. It presents the same
//! [`Executor`] surface as the thread pool, so the threaded runner's
//! driver loops run on it unchanged.
//!
//! # Driver side: [`TcpCluster`]
//!
//! [`TcpCluster::connect`] dials a static list of worker addresses,
//! performs the Hello/HelloAck handshake on each, and spawns one reader
//! thread per connection feeding a single event channel. The driver
//! thread owns every write half; readers never write. Each worker offers
//! one slot (`HelloAck::slots`, currently always 1), so capacity equals
//! the number of live connections.
//!
//! Failure semantics, mirroring the in-process substrates:
//!
//! - **Disconnect** (EOF, reset, or any framing error on the read path):
//!   the worker is dead immediately. Its pending job surfaces as
//!   [`JobStatus::Orphaned`] from `next_completion`, capacity shrinks,
//!   and a `WorkerLeft` event is emitted. There is no redial: with a
//!   static address list, connect = Join at startup and disconnect =
//!   permanent Leave.
//! - **Missed heartbeats**: every worker beacons on a timer even while
//!   evaluating. If nothing (result or heartbeat) arrives from a worker
//!   with a pending job for longer than the lease timeout, the driver
//!   sends a best-effort [`Frame::Cancel`], tears the connection down,
//!   and orphans the job the same way.
//! - **Stale results**: once a job is orphaned its id is retired; a
//!   `Result` frame for a retired id (e.g. the cancel lost the race) is
//!   counted under `net.stale_results` and dropped, never surfaced —
//!   this is the driver-side half of the exactly-once argument
//!   (DESIGN.md §16).
//!
//! Orphaned jobs hold no capacity slot, exactly like the other
//! substrates, so the retry policy can re-dispatch them to surviving
//! workers at once.
//!
//! # Worker side: [`serve_worker`]
//!
//! [`serve_worker`] is the accept loop behind the `hypertune-worker`
//! binary. Per session it reads `Hello`, asks the caller's factory for
//! an evaluator (rejecting the session via `HelloAck` on factory error),
//! then serves `Dispatch` frames synchronously — one job at a time — on
//! the session thread while a separate heartbeat thread shares the write
//! half behind a mutex. Frames are encoded to a single buffer and written
//! with one `write_all` under the lock, so concurrent heartbeats and
//! results never interleave bytes.
//!
//! The worker is intentionally typeless: jobs and outputs cross it as
//! [`serde::Value`] trees, so one worker binary can serve any benchmark
//! the handshake names.
//!
//! # Telemetry
//!
//! With a handle attached ([`TcpCluster::set_telemetry`]) the driver
//! emits `net.*` counters (`dispatches`, `results`, `stale_results`,
//! `heartbeats`, `cancels`, `disconnects`), latency histograms
//! (`net.job_rtt_ms` dispatch→result, `net.heartbeat_gap_ms` between
//! liveness signals), per-worker completion gauges, and the same
//! `WorkerJoined`/`WorkerLeft` membership events the elastic substrates
//! produce.

use std::collections::VecDeque;
use std::net::{Shutdown as SockShutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hypertune_telemetry::{Event, TelemetryHandle};
use serde::{Deserialize, Serialize, Value};

use crate::executor::{Executor, PoolResult};
use crate::proto::{self, Frame, ProtoError};
use crate::sim::{ClusterError, JobStatus};

/// Knobs for the driver side of the TCP substrate.
#[derive(Debug, Clone)]
pub struct TcpClusterOptions {
    /// How long a worker with a pending job may stay silent (no result,
    /// no heartbeat) before the driver cancels and orphans the job.
    /// Must comfortably exceed the worker heartbeat interval.
    pub lease_timeout: Duration,
}

impl Default for TcpClusterOptions {
    fn default() -> Self {
        Self {
            lease_timeout: Duration::from_secs(10),
        }
    }
}

/// What a reader thread reports back to the driver.
enum NetEvent {
    /// A decoded frame from worker `worker`.
    Frame { worker: usize, frame: Frame },
    /// The connection to worker `worker` is gone (EOF or framing error).
    Disconnected { worker: usize, reason: ProtoError },
}

/// A job awaiting its `Result` frame.
struct Pending<J> {
    job_id: u64,
    job: J,
    sent: Instant,
}

/// Driver-side state for one worker connection.
struct WorkerConn<J> {
    addr: String,
    /// Write half; the matching read half lives on the reader thread.
    stream: TcpStream,
    alive: bool,
    pending: Option<Pending<J>>,
    /// Last time anything (handshake, heartbeat, result) arrived.
    last_seen: Instant,
    completed: u64,
    reader: Option<JoinHandle<()>>,
}

/// A cluster of worker processes reached over TCP, presenting the same
/// submit/complete contract as [`crate::ThreadPool`]. See the module
/// docs for lifecycle and failure semantics.
pub struct TcpCluster<J, O> {
    workers: Vec<WorkerConn<J>>,
    events_rx: Receiver<NetEvent>,
    /// Kept so the channel never disconnects while the driver lives,
    /// even after every reader thread has exited.
    _events_tx: Sender<NetEvent>,
    lease: Duration,
    next_job_id: u64,
    in_flight: usize,
    capacity: usize,
    /// Ready-to-surface orphan results, drained before anything else.
    orphans: VecDeque<PoolResult<J, O>>,
    telemetry: TelemetryHandle,
    joins_emitted: bool,
}

impl<J, O> TcpCluster<J, O>
where
    J: Serialize,
    O: Deserialize,
{
    /// Dials every address, handshakes with `hello`, and spawns one
    /// reader thread per connection. Fails fast on the first address
    /// that cannot be reached or rejects the handshake — a partial
    /// cluster at startup is an operator error, unlike churn later.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn connect<A>(
        addrs: &[A],
        hello: Value,
        opts: TcpClusterOptions,
    ) -> Result<Self, ProtoError>
    where
        A: ToSocketAddrs + std::fmt::Display,
    {
        assert!(!addrs.is_empty(), "cluster needs at least one worker");
        let (tx, rx) = unbounded();
        let mut workers = Vec::with_capacity(addrs.len());
        for (idx, addr) in addrs.iter().enumerate() {
            let mut stream = TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            proto::write_frame(
                &mut stream,
                &Frame::Hello {
                    payload: hello.clone(),
                },
            )?;
            match proto::read_frame(&mut stream)? {
                Frame::HelloAck { error: None, .. } => {}
                Frame::HelloAck {
                    error: Some(reason),
                    ..
                } => {
                    return Err(ProtoError::Garbage(format!(
                        "worker {addr} rejected handshake: {reason}"
                    )))
                }
                other => {
                    return Err(ProtoError::Garbage(format!(
                        "worker {addr}: expected HelloAck, got {other:?}"
                    )))
                }
            }
            let reader_stream = stream.try_clone()?;
            let reader_tx = tx.clone();
            let reader = std::thread::spawn(move || reader_loop(idx, reader_stream, reader_tx));
            workers.push(WorkerConn {
                addr: addr.to_string(),
                stream,
                alive: true,
                pending: None,
                last_seen: Instant::now(),
                completed: 0,
                reader: Some(reader),
            });
        }
        let capacity = workers.len();
        Ok(Self {
            workers,
            events_rx: rx,
            _events_tx: tx,
            lease: opts.lease_timeout,
            next_job_id: 0,
            in_flight: 0,
            capacity,
            orphans: VecDeque::new(),
            telemetry: TelemetryHandle::disabled(),
            joins_emitted: false,
        })
    }

    /// Attaches a telemetry handle. The first attachment replays one
    /// `WorkerJoined` per live connection (connect = Join happened
    /// before any handle existed).
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
        if !self.joins_emitted {
            self.joins_emitted = true;
            let mut n_alive = 0;
            for (idx, w) in self.workers.iter().enumerate() {
                if w.alive {
                    n_alive += 1;
                    self.telemetry.emit_now_with(|| Event::WorkerJoined {
                        worker: idx,
                        n_alive,
                    });
                }
            }
            self.telemetry
                .gauge_set("net.workers_alive", self.capacity as f64);
        }
    }

    /// Number of live worker connections.
    pub fn n_workers(&self) -> usize {
        self.capacity
    }

    /// Jobs dispatched and not yet completed or orphaned.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Free slots on live workers.
    pub fn idle_workers(&self) -> usize {
        self.capacity.saturating_sub(self.in_flight)
    }

    /// Address of worker `idx` as given at connect time (for logs).
    pub fn worker_addr(&self, idx: usize) -> &str {
        &self.workers[idx].addr
    }

    /// Submits a job to the first idle live worker; errors when every
    /// slot is busy. If the write itself fails the connection is dead:
    /// the submit still succeeds and the job surfaces as
    /// [`JobStatus::Orphaned`] (mirroring a dispatch onto a crashing
    /// worker in the other substrates).
    pub fn submit(&mut self, job: J) -> Result<(), ClusterError> {
        let idx = self
            .workers
            .iter()
            .position(|w| w.alive && w.pending.is_none())
            .ok_or(ClusterError::NoIdleWorker)?;
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let payload = serde_json::to_value(&job);
        let frame = Frame::Dispatch { job_id, payload };
        match proto::write_frame(&mut self.workers[idx].stream, &frame) {
            Ok(()) => {
                self.workers[idx].pending = Some(Pending {
                    job_id,
                    job,
                    sent: Instant::now(),
                });
                self.in_flight += 1;
                self.telemetry.counter_add("net.dispatches", 1);
                Ok(())
            }
            Err(_) => {
                self.kill_worker(idx);
                self.orphans.push_back(PoolResult {
                    job,
                    output: None,
                    status: JobStatus::Orphaned,
                    worker: idx,
                });
                Ok(())
            }
        }
    }

    /// Marks a worker dead: shuts its socket both ways (unblocking the
    /// reader thread), shrinks capacity, and emits membership telemetry.
    /// Pending-job handling is the caller's job.
    fn kill_worker(&mut self, idx: usize) {
        let w = &mut self.workers[idx];
        if !w.alive {
            return;
        }
        w.alive = false;
        let _ = w.stream.shutdown(SockShutdown::Both);
        self.capacity -= 1;
        let n_alive = self.capacity;
        self.telemetry.counter_add("net.disconnects", 1);
        self.telemetry
            .gauge_set("net.workers_alive", n_alive as f64);
        self.telemetry.emit_now_with(|| Event::WorkerLeft {
            worker: idx,
            n_alive,
        });
    }

    /// Kills worker `idx` and queues its pending job (if any) as an
    /// orphan result. The job id is retired: a late `Result` for it is
    /// stale by construction.
    fn kill_and_orphan(&mut self, idx: usize) {
        if let Some(p) = self.workers[idx].pending.take() {
            self.in_flight -= 1;
            self.orphans.push_back(PoolResult {
                job: p.job,
                output: None,
                status: JobStatus::Orphaned,
                worker: idx,
            });
        }
        self.kill_worker(idx);
    }

    /// Blocks until the next job completes or orphans; returns
    /// [`ClusterError::Quiescent`] when nothing is pending anywhere.
    pub fn next_completion(&mut self) -> Result<PoolResult<J, O>, ClusterError> {
        loop {
            if let Some(r) = self.orphans.pop_front() {
                return Ok(r);
            }
            // Lease sweep: a silent worker with a pending job is dead to
            // us once the lease runs out.
            let now = Instant::now();
            let expired = self.workers.iter().position(|w| {
                w.alive && w.pending.is_some() && now.duration_since(w.last_seen) >= self.lease
            });
            if let Some(idx) = expired {
                let job_id = self.workers[idx]
                    .pending
                    .as_ref()
                    .expect("expired implies pending")
                    .job_id;
                // Best-effort: the worker may be hung, not gone. Either
                // way its id is retired and any late result is stale.
                let _ =
                    proto::write_frame(&mut self.workers[idx].stream, &Frame::Cancel { job_id });
                self.telemetry.counter_add("net.cancels", 1);
                self.kill_and_orphan(idx);
                continue;
            }
            if self.in_flight == 0 {
                return Err(ClusterError::Quiescent);
            }
            // Block for the next event, but wake at the earliest lease
            // deadline so silence is noticed.
            let deadline = self
                .workers
                .iter()
                .filter(|w| w.alive && w.pending.is_some())
                .map(|w| w.last_seen + self.lease)
                .min();
            let event = match deadline {
                None => match self.events_rx.recv() {
                    Ok(e) => e,
                    Err(_) => return Err(ClusterError::Quiescent),
                },
                Some(d) => match self
                    .events_rx
                    .recv_timeout(d.saturating_duration_since(now))
                {
                    Ok(e) => e,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::Quiescent),
                },
            };
            match event {
                NetEvent::Disconnected { worker, reason } => {
                    if self.workers[worker].alive {
                        // A clean EOF and a framing error both kill the
                        // worker, but only the latter is a read fault.
                        if !matches!(reason, ProtoError::Closed) {
                            self.telemetry.counter_add("net.read_errors", 1);
                        }
                        self.kill_and_orphan(worker);
                    }
                }
                NetEvent::Frame { worker, frame } => {
                    if !self.workers[worker].alive {
                        // Residue from a connection we already tore down.
                        continue;
                    }
                    let gap = self.workers[worker].last_seen.elapsed();
                    self.workers[worker].last_seen = Instant::now();
                    match frame {
                        Frame::Heartbeat { .. } => {
                            self.telemetry.counter_add("net.heartbeats", 1);
                            self.telemetry
                                .histogram_record("net.heartbeat_gap_ms", gap.as_secs_f64() * 1e3);
                        }
                        Frame::Result {
                            job_id,
                            status,
                            output,
                        } => {
                            let matches = self.workers[worker]
                                .pending
                                .as_ref()
                                .is_some_and(|p| p.job_id == job_id);
                            if !matches {
                                // Retired id (orphaned then re-dispatched
                                // elsewhere): drop, never double-count.
                                self.telemetry.counter_add("net.stale_results", 1);
                                continue;
                            }
                            let p = self.workers[worker]
                                .pending
                                .take()
                                .expect("matches implies pending");
                            self.in_flight -= 1;
                            self.workers[worker].completed += 1;
                            self.telemetry.counter_add("net.results", 1);
                            self.telemetry.histogram_record(
                                "net.job_rtt_ms",
                                p.sent.elapsed().as_secs_f64() * 1e3,
                            );
                            self.telemetry.gauge_set(
                                &format!("net.worker{worker}.completed"),
                                self.workers[worker].completed as f64,
                            );
                            let (status, output) = if output.is_null() {
                                (status, None)
                            } else {
                                match O::from_value(&output) {
                                    Ok(o) => (status, Some(o)),
                                    Err(_) => {
                                        // Undecodable payload: demote to a
                                        // plain failure so no caller trusts it.
                                        self.telemetry.counter_add("net.bad_outputs", 1);
                                        (JobStatus::Errored, None)
                                    }
                                }
                            };
                            return Ok(PoolResult {
                                job: p.job,
                                output,
                                status,
                                worker,
                            });
                        }
                        other => {
                            // A frame only drivers may send: the peer is
                            // not speaking our protocol. Tear it down.
                            let _ = other;
                            self.telemetry.counter_add("net.protocol_violations", 1);
                            self.kill_and_orphan(worker);
                        }
                    }
                }
            }
        }
    }
}

impl<J, O> Executor<J, O> for TcpCluster<J, O>
where
    J: Serialize,
    O: Deserialize,
{
    fn submit(&mut self, job: J) -> Result<(), ClusterError> {
        TcpCluster::submit(self, job)
    }

    fn next_completion(&mut self) -> Result<PoolResult<J, O>, ClusterError> {
        TcpCluster::next_completion(self)
    }

    fn n_workers(&self) -> usize {
        TcpCluster::n_workers(self)
    }

    fn in_flight(&self) -> usize {
        TcpCluster::in_flight(self)
    }

    fn idle_workers(&self) -> usize {
        TcpCluster::idle_workers(self)
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        TcpCluster::set_telemetry(self, telemetry)
    }
}

impl<J, O> Drop for TcpCluster<J, O> {
    fn drop(&mut self) {
        for w in &mut self.workers {
            if w.alive {
                // Polite goodbye, then force the socket down either way
                // so the reader thread unblocks.
                let _ = proto::write_frame(&mut w.stream, &Frame::Shutdown);
                let _ = w.stream.shutdown(SockShutdown::Both);
            }
        }
        for w in &mut self.workers {
            if let Some(h) = w.reader.take() {
                let _ = h.join();
            }
        }
    }
}

/// Reads frames until the connection dies, forwarding everything to the
/// driver's event channel. Never writes.
fn reader_loop(worker: usize, mut stream: TcpStream, tx: Sender<NetEvent>) {
    loop {
        match proto::read_frame(&mut stream) {
            Ok(frame) => {
                if tx.send(NetEvent::Frame { worker, frame }).is_err() {
                    return;
                }
            }
            Err(reason) => {
                let _ = tx.send(NetEvent::Disconnected { worker, reason });
                return;
            }
        }
    }
}

/// Knobs for the worker side of the TCP substrate.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// How often the heartbeat thread beacons. Keep this several times
    /// smaller than the driver's lease timeout.
    pub heartbeat_interval: Duration,
    /// Serve exactly one session, then return (used by tests and by
    /// `hypertune-worker --once`).
    pub once: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(250),
            once: false,
        }
    }
}

/// A worker-side evaluator: turns a `Dispatch` payload into a status and
/// an output payload (`Value::Null` when there is none).
pub type EvalFn = Box<dyn Fn(&Value) -> (JobStatus, Value) + Send>;

/// Serves driver sessions on `listener` forever (or once, under
/// [`WorkerOptions::once`]). Per session, `make_eval` interprets the
/// `Hello` payload and builds the evaluator — returning `Err(reason)`
/// rejects the session via `HelloAck` without dropping the accept loop.
///
/// Session errors (protocol violations, mid-stream disconnects) are
/// logged to stderr and do not kill the worker; the next driver can
/// connect fresh.
pub fn serve_worker<F>(
    listener: TcpListener,
    opts: WorkerOptions,
    make_eval: F,
) -> std::io::Result<()>
where
    F: Fn(&Value) -> Result<EvalFn, String>,
{
    loop {
        let (stream, peer) = listener.accept()?;
        let _ = stream.set_nodelay(true);
        if let Err(e) = serve_session(stream, &opts, &make_eval) {
            eprintln!("hypertune-worker: session with {peer} failed: {e}");
        }
        if opts.once {
            return Ok(());
        }
    }
}

/// Handshakes and serves one driver connection to completion.
fn serve_session<F>(
    stream: TcpStream,
    opts: &WorkerOptions,
    make_eval: &F,
) -> Result<(), ProtoError>
where
    F: Fn(&Value) -> Result<EvalFn, String>,
{
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    let hello = match proto::read_frame(&mut reader)? {
        Frame::Hello { payload } => payload,
        other => {
            return Err(ProtoError::Garbage(format!(
                "expected Hello, got {other:?}"
            )))
        }
    };
    let eval = match make_eval(&hello) {
        Ok(eval) => {
            write_locked(
                &writer,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )?;
            eval
        }
        Err(reason) => {
            write_locked(
                &writer,
                &Frame::HelloAck {
                    slots: 0,
                    error: Some(reason),
                },
            )?;
            return Ok(());
        }
    };
    // Heartbeats come from their own thread so a long evaluation never
    // looks like a death. Both threads share the write half; each frame
    // is one write_all under the lock, so frames never interleave.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::clone(&stop);
    let hb_writer = Arc::clone(&writer);
    let interval = opts.heartbeat_interval;
    let heartbeat = std::thread::spawn(move || {
        let mut seq = 0u64;
        loop {
            std::thread::sleep(interval);
            if hb_stop.load(Ordering::Relaxed) {
                return;
            }
            seq += 1;
            if write_locked(&hb_writer, &Frame::Heartbeat { seq }).is_err() {
                return;
            }
        }
    });
    let outcome = session_loop(&mut reader, &writer, &eval);
    stop.store(true, Ordering::Relaxed);
    {
        let guard = writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = guard.shutdown(SockShutdown::Both);
    }
    let _ = heartbeat.join();
    outcome
}

/// The worker's synchronous serve loop: one dispatch at a time.
fn session_loop(
    reader: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    eval: &EvalFn,
) -> Result<(), ProtoError> {
    loop {
        match proto::read_frame(reader) {
            Ok(Frame::Dispatch { job_id, payload }) => {
                let (status, output) = eval(&payload);
                write_locked(
                    writer,
                    &Frame::Result {
                        job_id,
                        status,
                        output,
                    },
                )?;
            }
            // Single-slot synchronous worker: by the time a Cancel is
            // read here the cancelled job has either already answered
            // (the driver drops that Result as stale) or never arrived.
            Ok(Frame::Cancel { .. }) => {}
            Ok(Frame::Shutdown) => return Ok(()),
            Ok(other) => {
                return Err(ProtoError::Garbage(format!(
                    "unexpected frame from driver: {other:?}"
                )))
            }
            // Driver vanished between frames; not this worker's fault.
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Encodes and writes one frame atomically under the shared-writer lock.
fn write_locked(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> Result<(), ProtoError> {
    let mut guard = writer.lock().unwrap_or_else(|p| p.into_inner());
    proto::write_frame(&mut *guard, frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// Spawns an in-process worker doubling u64 jobs; returns its addr.
    fn spawn_doubler(once: bool) -> (String, JoinHandle<std::io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once,
        };
        let handle = std::thread::spawn(move || {
            serve_worker(listener, opts, |hello| {
                if hello.as_object().and_then(|m| m.get("reject")).is_some() {
                    return Err("rejected by test factory".to_string());
                }
                Ok(Box::new(|payload: &Value| {
                    let x = payload.as_u64().unwrap_or(0);
                    (JobStatus::Succeeded, json!(x * 2))
                }) as EvalFn)
            })
        });
        (addr, handle)
    }

    fn opts_with_lease(ms: u64) -> TcpClusterOptions {
        TcpClusterOptions {
            lease_timeout: Duration::from_millis(ms),
        }
    }

    #[test]
    fn jobs_round_trip_over_loopback() {
        let (a, ha) = spawn_doubler(true);
        let (b, hb) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a, b], json!({"test": true}), TcpClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.n_workers(), 2);
        let mut outs = Vec::new();
        let mut next = 0u64;
        while outs.len() < 10 {
            while next < 10 && cluster.submit(next).is_ok() {
                next += 1;
            }
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Succeeded);
            assert_eq!(r.output, Some(r.job * 2));
            outs.push(r.output.unwrap());
        }
        assert_eq!(
            cluster.next_completion().unwrap_err(),
            ClusterError::Quiescent
        );
        drop(cluster); // sends Shutdown; --once workers then return
        ha.join().unwrap().unwrap();
        hb.join().unwrap().unwrap();
    }

    #[test]
    fn oversubscription_is_rejected() {
        let (a, h) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(1).unwrap();
        assert_eq!(cluster.submit(2), Err(ClusterError::NoIdleWorker));
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.output, Some(2));
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn handshake_rejection_is_a_typed_error() {
        let (a, h) = spawn_doubler(true);
        let err = match TcpCluster::<u64, u64>::connect(
            &[a],
            json!({"reject": true}),
            TcpClusterOptions::default(),
        ) {
            Ok(_) => panic!("handshake should have been rejected"),
            Err(e) => e,
        };
        match err {
            ProtoError::Garbage(msg) => assert!(msg.contains("rejected")),
            other => panic!("expected Garbage, got {other:?}"),
        }
        h.join().unwrap().unwrap();
    }

    #[test]
    fn disconnect_orphans_the_pending_job() {
        // A hand-rolled "worker" that takes the job and dies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Hello
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )
            .unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Dispatch
            drop(s); // process death
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(7).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert_eq!(r.job, 7);
        assert_eq!(r.output, None);
        assert_eq!(cluster.n_workers(), 0, "disconnect is a permanent leave");
        assert_eq!(cluster.in_flight(), 0, "orphan holds no slot");
        h.join().unwrap();
    }

    #[test]
    fn missed_heartbeats_expire_the_lease() {
        // Accepts and handshakes, then goes silent forever: no result,
        // no heartbeat. The driver must orphan the job after the lease.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap();
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )
            .unwrap();
            // Hold the connection open, silently, until the driver
            // tears it down.
            loop {
                match proto::read_frame(&mut s) {
                    Ok(_) => continue,
                    Err(_) => return,
                }
            }
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts_with_lease(80)).unwrap();
        cluster.submit(5).unwrap();
        let t0 = Instant::now();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "orphan must wait out the lease"
        );
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn stale_results_are_dropped() {
        // A worker that answers a retired job id first, then the real
        // one: the driver must drop the former and surface the latter.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap();
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                },
            )
            .unwrap();
            let (job_id, payload) = match proto::read_frame(&mut s).unwrap() {
                Frame::Dispatch { job_id, payload } => (job_id, payload),
                other => panic!("expected Dispatch, got {other:?}"),
            };
            proto::write_frame(
                &mut s,
                &Frame::Result {
                    job_id: job_id + 999, // nobody asked for this id
                    status: JobStatus::Succeeded,
                    output: json!(u64::MAX),
                },
            )
            .unwrap();
            let x = payload.as_u64().unwrap();
            proto::write_frame(
                &mut s,
                &Frame::Result {
                    job_id,
                    status: JobStatus::Succeeded,
                    output: json!(x * 2),
                },
            )
            .unwrap();
            // Linger for the shutdown so the driver's reader sees a
            // clean session end.
            let _ = proto::read_frame(&mut s);
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(21).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded);
        assert_eq!(r.output, Some(42), "the stale result must not surface");
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn failure_statuses_cross_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|_: &Value| (JobStatus::Errored, Value::Null)) as EvalFn)
            })
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(1).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Errored);
        assert_eq!(r.output, None);
        assert!(!r.is_ok());
        assert_eq!(cluster.idle_workers(), 1, "slot is free for a retry");
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn heartbeats_cover_long_evaluations() {
        // Evaluation takes 3x the lease; heartbeats must keep the lease
        // alive so the job completes instead of orphaning.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(15),
            once: true,
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|payload: &Value| {
                    std::thread::sleep(Duration::from_millis(240));
                    (JobStatus::Succeeded, payload.clone())
                }) as EvalFn)
            })
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts_with_lease(80)).unwrap();
        cluster.submit(11).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded, "heartbeats held the lease");
        assert_eq!(r.output, Some(11));
        drop(cluster);
        h.join().unwrap().unwrap();
    }
}
