//! The TCP substrate: a driver that dispatches to worker *processes*
//! over sockets, speaking the [`crate::proto`] wire protocol.
//!
//! This is the third execution substrate (after [`crate::SimCluster`]
//! and [`crate::ThreadPool`]) and the first where a worker crash is a
//! real process death rather than a simulated one. It presents the same
//! [`Executor`] surface as the thread pool, so the threaded runner's
//! driver loops run on it unchanged.
//!
//! # Driver side: [`TcpCluster`]
//!
//! [`TcpCluster::connect`] dials a static list of worker addresses,
//! performs the Hello/HelloAck handshake on each, and spawns one reader
//! thread per connection feeding a single event channel. The driver
//! thread owns every write half; readers never write. Each worker
//! advertises a slot count in its `HelloAck` (`--slots N` on the worker
//! binary), and the driver keeps up to that many `Dispatch` frames in
//! flight per connection — capacity is the sum of slots across live
//! workers, and `submit` picks the least-loaded live worker. At one slot
//! per worker this degenerates to the old strictly synchronous
//! one-round-trip-per-eval scheme.
//!
//! ## Codec negotiation
//!
//! The `Hello` frame is always written as JSON (every peer speaks
//! version 1). When the driver wants the binary codec
//! ([`TcpClusterOptions::codec`], the default) and the hello payload is
//! an object, it adds a `"_codec": 2` key. A binary-capable worker that
//! sees the offer switches its write half to binary *before* answering,
//! so the `HelloAck`'s own encoding is the acknowledgement: the driver
//! inspects [`proto::FrameDecoder::last_codec`] on the ack and mirrors
//! it for everything it sends that worker from then on. Old JSON workers
//! ignore the unknown key and answer in JSON; old drivers never offer;
//! either way the pair settles on JSON with no extra round trip. Readers
//! on both sides accept both codecs on every frame regardless of what
//! was negotiated for writes.
//!
//! Failure semantics, mirroring the in-process substrates:
//!
//! - **Disconnect** (EOF, reset, or any framing error on the read path):
//!   the worker is dead immediately. Every job pending on it surfaces as
//!   [`JobStatus::Orphaned`] from `next_completion`, capacity shrinks by
//!   its slot count, and a `WorkerLeft` event is emitted. By default
//!   ([`ReconnectPolicy::disabled`]) that Leave is permanent. With a
//!   [`ReconnectPolicy`] configured, the driver also starts a background
//!   *redial loop* for the address: exponential backoff with seeded
//!   jitter, capped attempts, give-up → permanent Leave. A successful
//!   redial re-handshakes with a bumped **session epoch** (the `"_epoch"`
//!   key in the `Hello` payload, echoed in the `HelloAck`), restores the
//!   worker's capacity, and emits `WorkerReconnected` + `WorkerJoined`.
//!   Orphaning is unchanged either way — a redial never resurrects jobs,
//!   it only restores capacity for their retries.
//! - **Missed heartbeats**: every worker beacons on a timer even while
//!   evaluating. If nothing (result or heartbeat) arrives from a worker
//!   with pending jobs for longer than the lease timeout, the driver
//!   sends a best-effort [`Frame::Cancel`] per pending job, tears the
//!   connection down, and orphans them all the same way.
//! - **Stale results**: once a job is orphaned its id is retired; a
//!   `Result` frame for a retired id (e.g. the cancel lost the race) is
//!   counted under `net.stale_results` and dropped, never surfaced —
//!   this is the driver-side half of the exactly-once argument
//!   (DESIGN.md §16).
//! - **Session epochs**: every reader thread stamps its events with the
//!   epoch of the session it was spawned for, and the driver drops any
//!   frame whose epoch differs from the worker's current one
//!   (`net.stale_epoch_frames`). Job-id retirement already fences
//!   `Result`s; the epoch fence extends that to *every* frame kind, so
//!   nothing a pre-partition session buffered — heartbeats, cancel acks,
//!   results — can touch the post-redial session's state. Together they
//!   are why a result from before a partition can never double-book a
//!   trial (DESIGN.md §16.4).
//! - **Worker-initiated `Cancel`**: a worker draining on `Shutdown`
//!   acknowledges each queued-but-unrun dispatch with a `Cancel` frame.
//!   The driver reclaims the job immediately as an orphan
//!   (`net.cancel_acks`) instead of waiting for the disconnect or lease.
//!
//! Orphaned jobs hold no capacity slot, exactly like the other
//! substrates, so the retry policy can re-dispatch them to surviving
//! workers at once.
//!
//! # Worker side: [`serve_worker`]
//!
//! [`serve_worker`] is the accept loop behind the `hypertune-worker`
//! binary. Per session it reads `Hello`, asks the caller's factory for
//! an evaluator (rejecting the session via `HelloAck` on factory error),
//! then serves `Dispatch` frames pipelined: the session thread reads
//! frames and feeds a FIFO queue; a single evaluation thread pops jobs
//! in dispatch order and streams `Result` frames back as they finish; a
//! heartbeat thread beacons on a timer. All three share the write half
//! behind a mutex — each frame is encoded into a per-connection scratch
//! buffer and written with one `write_all` under the lock, so frames
//! never interleave and steady-state framing is allocation-free.
//!
//! On `Shutdown` the session drains its queue, acknowledging every
//! unstarted job with a `Cancel` frame, lets the evaluation in progress
//! finish and flush its `Result`, and only then closes the socket.
//!
//! The single evaluation thread means completion order equals dispatch
//! order no matter the slot count — which is what keeps multi-slot runs
//! reproducible (see `crates/hypertune/tests/distributed.rs`).
//!
//! The worker is intentionally typeless: jobs and outputs cross it as
//! [`serde::Value`] trees, so one worker binary can serve any benchmark
//! the handshake names.
//!
//! # Telemetry
//!
//! With a handle attached ([`TcpCluster::set_telemetry`]) the driver
//! emits `net.*` counters (`dispatches`, `results`, `stale_results`,
//! `stale_epoch_frames`, `heartbeats`, `cancels`, `cancel_acks`,
//! `disconnects`, `reconnects`, `redial_gaveup`,
//! `codec.binary`/`codec.json` per negotiated connection), latency
//! histograms (`net.job_rtt_ms` dispatch→result, `net.heartbeat_gap_ms`
//! between liveness signals, `net.batch_size` dispatches per scheduler
//! round), per-worker completion gauges, and the same
//! `WorkerJoined`/`WorkerLeft` membership events the elastic substrates
//! produce.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown as SockShutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hypertune_telemetry::{Event, TelemetryHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Number, Serialize, Value};

use crate::executor::{Executor, PoolResult};
use crate::proto::{self, Codec, Frame, FrameDecoder, FrameEncoder, ProtoError};
use crate::sim::{ClusterError, JobStatus};

/// Knobs for the driver side of the TCP substrate.
#[derive(Debug, Clone)]
pub struct TcpClusterOptions {
    /// How long a worker with pending jobs may stay silent (no result,
    /// no heartbeat) before the driver cancels and orphans them.
    /// Must comfortably exceed the worker heartbeat interval.
    pub lease_timeout: Duration,
    /// Preferred wire codec. [`Codec::Binary`] (the default) offers the
    /// binary codec in the handshake and uses it per-connection when the
    /// worker accepts; [`Codec::Json`] never offers, pinning every
    /// connection to the version-1 JSON framing.
    pub codec: Codec,
    /// Redial behaviour after a worker connection drops. The default
    /// ([`ReconnectPolicy::disabled`]) keeps the historical semantics:
    /// disconnect = permanent Leave.
    pub reconnect: ReconnectPolicy,
    /// Per-attempt bound on dialing *and* on the handshake reads that
    /// follow (so a black-holed address cannot hang `connect` or a
    /// redial). `None` uses the OS defaults and blocks indefinitely.
    pub connect_timeout: Option<Duration>,
    /// Extra initial-dial attempts per address in [`TcpCluster::connect`]
    /// beyond the first, paced [`CONNECT_RETRY_PAUSE`] apart. Only
    /// connection-level failures retry; a handshake *rejection* is a
    /// definitive answer and still fails fast. 0 (the default) keeps the
    /// historical fail-fast startup.
    pub connect_retries: u32,
}

impl Default for TcpClusterOptions {
    fn default() -> Self {
        Self {
            lease_timeout: Duration::from_secs(10),
            codec: Codec::Binary,
            reconnect: ReconnectPolicy::disabled(),
            connect_timeout: None,
            connect_retries: 0,
        }
    }
}

/// Pause between bounded initial-dial retries in [`TcpCluster::connect`].
pub const CONNECT_RETRY_PAUSE: Duration = Duration::from_millis(50);

/// Driver-side redial behaviour after a worker connection drops.
///
/// Attempt `n` (1-based) sleeps `base_backoff * 2^(n-1)` capped at
/// `max_backoff`, plus a jitter drawn uniformly from `[0, backoff/2]` by
/// an RNG seeded from `jitter_seed`, the worker index, and the session
/// epoch — so a drill replays the same dial schedule exactly. Exhausting
/// `max_attempts` makes the Leave permanent (`net.redial_gaveup`).
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Redial attempts before giving up; 0 disables redialing entirely.
    pub max_attempts: u32,
    /// Backoff before the first attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on the per-attempt backoff.
    pub max_backoff: Duration,
    /// Seed for the backoff jitter (mixed with worker index and epoch).
    pub jitter_seed: u64,
}

impl ReconnectPolicy {
    /// No redialing: disconnect = permanent Leave (the default, and the
    /// pre-epoch behaviour).
    pub fn disabled() -> Self {
        Self {
            max_attempts: 0,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }

    /// A sensible production-ish policy: `attempts` dials starting at
    /// 100ms backoff, capped at 2s, jittered from `seed`.
    pub fn with_attempts(attempts: u32, seed: u64) -> Self {
        Self {
            max_attempts: attempts,
            jitter_seed: seed,
            ..Self::disabled()
        }
    }
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What a reader thread (or a redialer thread) reports back to the
/// driver. Frame and disconnect events carry the session epoch the
/// reporting reader was spawned for, so the driver can fence residue
/// from dead sessions even after the worker slot has been revived.
enum NetEvent {
    /// A decoded frame from worker `worker`, session `epoch`.
    Frame {
        worker: usize,
        epoch: u64,
        frame: Frame,
    },
    /// The connection to worker `worker` (session `epoch`) is gone (EOF
    /// or framing error).
    Disconnected {
        worker: usize,
        epoch: u64,
        reason: ProtoError,
    },
    /// A redialer re-established worker `worker` at session `epoch`:
    /// the new connection's write half, handshake results, and how many
    /// dials it took.
    Redialed {
        worker: usize,
        epoch: u64,
        stream: TcpStream,
        slots: usize,
        codec: Codec,
        attempts: u32,
    },
    /// A redialer exhausted its attempts; the Leave is now permanent.
    RedialFailed { worker: usize, attempts: u32 },
}

/// A job awaiting its `Result` frame.
struct Pending<J> {
    job_id: u64,
    job: J,
    sent: Instant,
}

/// Driver-side state for one worker connection.
struct WorkerConn<J> {
    addr: String,
    /// Write half; the matching read half lives on the reader thread.
    stream: TcpStream,
    alive: bool,
    /// In-flight jobs, in dispatch order; at most `slots` of them.
    pending: Vec<Pending<J>>,
    /// Concurrent dispatch capacity advertised in the `HelloAck`.
    slots: usize,
    /// Negotiated write codec for this connection.
    codec: Codec,
    /// Last time anything (handshake, heartbeat, result) arrived.
    last_seen: Instant,
    completed: u64,
    reader: Option<JoinHandle<()>>,
    /// Session epoch: 0 for the startup connection, bumped per redial.
    /// Events stamped with any other epoch are residue and are dropped.
    epoch: u64,
    /// A redialer thread is currently working this address.
    redialing: bool,
}

/// A cluster of worker processes reached over TCP, presenting the same
/// submit/complete contract as [`crate::ThreadPool`]. See the module
/// docs for lifecycle and failure semantics.
pub struct TcpCluster<J, O> {
    workers: Vec<WorkerConn<J>>,
    events_rx: Receiver<NetEvent>,
    /// Kept so the channel never disconnects while the driver lives,
    /// even after every reader thread has exited.
    _events_tx: Sender<NetEvent>,
    lease: Duration,
    next_job_id: u64,
    in_flight: usize,
    /// Total slots across live workers.
    capacity: usize,
    /// Ready-to-surface orphan results, drained before anything else.
    orphans: VecDeque<PoolResult<J, O>>,
    /// Shared encode scratch buffer for every outgoing frame.
    enc: FrameEncoder,
    /// Dispatches since the last `next_completion` call, recorded into
    /// the `net.batch_size` histogram.
    batch: u64,
    telemetry: TelemetryHandle,
    joins_emitted: bool,
    /// The caller's hello payload, undecorated — redials re-decorate it
    /// with fresh `_codec`/`_epoch` keys per dial.
    hello: Value,
    /// The codec preference offered in every handshake.
    offer_codec: Codec,
    reconnect: ReconnectPolicy,
    connect_timeout: Option<Duration>,
    /// Redialer threads still working an address. Quiescence waits for
    /// them: capacity may come back.
    redialing: usize,
    redial_handles: Vec<JoinHandle<()>>,
    /// Tells redialer threads to stop sleeping/dialing (set on drop).
    stop_redial: Arc<AtomicBool>,
}

impl<J, O> TcpCluster<J, O>
where
    J: Serialize,
    O: Deserialize,
{
    /// Dials every address, handshakes with `hello`, and spawns one
    /// reader thread per connection. By default it fails fast on the
    /// first address that cannot be reached or rejects the handshake —
    /// a partial cluster at startup is an operator error, unlike churn
    /// later. [`TcpClusterOptions::connect_timeout`] bounds each dial
    /// (and its handshake reads), and
    /// [`TcpClusterOptions::connect_retries`] retries connection-level
    /// failures a bounded number of times; rejections never retry.
    ///
    /// When `opts.codec` is [`Codec::Binary`] and `hello` is an object,
    /// a `"_codec": 2` offer is added to the handshake payload; the
    /// codec each connection settles on is whatever the worker answered
    /// in (see the module docs). Object hellos also carry the session
    /// epoch as `"_epoch"` (0 at startup, bumped per redial).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn connect<A>(
        addrs: &[A],
        hello: Value,
        opts: TcpClusterOptions,
    ) -> Result<Self, ProtoError>
    where
        A: ToSocketAddrs + std::fmt::Display,
    {
        assert!(!addrs.is_empty(), "cluster needs at least one worker");
        let (tx, rx) = unbounded();
        let mut workers = Vec::with_capacity(addrs.len());
        let mut capacity = 0;
        for (idx, addr) in addrs.iter().enumerate() {
            let addr = addr.to_string();
            let mut attempt = 0u32;
            let (stream, slots, codec) = loop {
                match dial_worker(&addr, &hello, opts.codec, 0, opts.connect_timeout) {
                    Ok(ok) => break ok,
                    // A handshake rejection (or a peer speaking
                    // something else) is a definitive answer.
                    Err(e @ ProtoError::Garbage(_)) => return Err(e),
                    Err(e) => {
                        attempt += 1;
                        if attempt > opts.connect_retries {
                            return Err(e);
                        }
                        std::thread::sleep(CONNECT_RETRY_PAUSE);
                    }
                }
            };
            capacity += slots;
            let reader_stream = stream.try_clone()?;
            let reader_tx = tx.clone();
            let reader = std::thread::spawn(move || reader_loop(idx, 0, reader_stream, reader_tx));
            workers.push(WorkerConn {
                addr,
                stream,
                alive: true,
                pending: Vec::with_capacity(slots),
                slots,
                codec,
                last_seen: Instant::now(),
                completed: 0,
                reader: Some(reader),
                epoch: 0,
                redialing: false,
            });
        }
        Ok(Self {
            workers,
            events_rx: rx,
            _events_tx: tx,
            lease: opts.lease_timeout,
            next_job_id: 0,
            in_flight: 0,
            capacity,
            orphans: VecDeque::new(),
            enc: FrameEncoder::new(opts.codec),
            batch: 0,
            telemetry: TelemetryHandle::disabled(),
            joins_emitted: false,
            hello,
            offer_codec: opts.codec,
            reconnect: opts.reconnect,
            connect_timeout: opts.connect_timeout,
            redialing: 0,
            redial_handles: Vec::new(),
            stop_redial: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Attaches a telemetry handle. The first attachment replays one
    /// `WorkerJoined` per live connection (connect = Join happened
    /// before any handle existed) and counts each connection's
    /// negotiated codec under `net.codec.binary` / `net.codec.json`.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
        if !self.joins_emitted {
            self.joins_emitted = true;
            let mut n_alive = 0;
            for (idx, w) in self.workers.iter().enumerate() {
                if w.alive {
                    n_alive += 1;
                    self.telemetry.emit_now_with(|| Event::WorkerJoined {
                        worker: idx,
                        n_alive,
                    });
                    let key = match w.codec {
                        Codec::Binary => "net.codec.binary",
                        Codec::Json => "net.codec.json",
                    };
                    self.telemetry.counter_add(key, 1);
                }
            }
            self.telemetry
                .gauge_set("net.workers_alive", self.capacity as f64);
        }
    }

    /// Total dispatch capacity: the sum of slots across live workers.
    pub fn n_workers(&self) -> usize {
        self.capacity
    }

    /// Jobs dispatched and not yet completed or orphaned.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Free slots on live workers.
    pub fn idle_workers(&self) -> usize {
        self.capacity.saturating_sub(self.in_flight)
    }

    /// Address of worker `idx` as given at connect time (for logs).
    pub fn worker_addr(&self, idx: usize) -> &str {
        &self.workers[idx].addr
    }

    /// The write codec connection `idx` settled on in the handshake.
    pub fn worker_codec(&self, idx: usize) -> Codec {
        self.workers[idx].codec
    }

    /// Submits a job to the least-loaded live worker with a free slot;
    /// errors when every slot is busy. If the write itself fails the
    /// connection is dead: the submit still succeeds and the job (plus
    /// anything else pending there) surfaces as [`JobStatus::Orphaned`]
    /// (mirroring a dispatch onto a crashing worker in the other
    /// substrates).
    pub fn submit(&mut self, job: J) -> Result<(), ClusterError> {
        let idx = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive && w.pending.len() < w.slots)
            .min_by_key(|&(i, w)| (w.pending.len(), i))
            .map(|(i, _)| i)
            .ok_or(ClusterError::NoIdleWorker)?;
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let payload = serde_json::to_value(&job);
        let frame = Frame::Dispatch { job_id, payload };
        self.enc.set_codec(self.workers[idx].codec);
        let buf = self.enc.encode(&frame);
        match self.workers[idx].stream.write_all(buf) {
            Ok(()) => {
                self.workers[idx].pending.push(Pending {
                    job_id,
                    job,
                    sent: Instant::now(),
                });
                self.in_flight += 1;
                self.batch += 1;
                self.telemetry.counter_add("net.dispatches", 1);
                Ok(())
            }
            Err(_) => {
                self.kill_and_orphan(idx);
                self.maybe_spawn_redialer(idx);
                self.orphans.push_back(PoolResult {
                    job,
                    output: None,
                    status: JobStatus::Orphaned,
                    worker: idx,
                });
                Ok(())
            }
        }
    }

    /// Starts a background redial loop for dead worker `idx`, if the
    /// policy allows and one is not already running. The redialer
    /// handshakes with the *next* session epoch; the driver applies the
    /// result when the `Redialed`/`RedialFailed` event arrives in
    /// `next_completion`.
    fn maybe_spawn_redialer(&mut self, idx: usize) {
        if self.reconnect.max_attempts == 0 {
            return;
        }
        let w = &mut self.workers[idx];
        if w.alive || w.redialing {
            return;
        }
        w.redialing = true;
        self.redialing += 1;
        let addr = w.addr.clone();
        let epoch = w.epoch + 1;
        let hello = self.hello.clone();
        let offer = self.offer_codec;
        let policy = self.reconnect.clone();
        let connect_timeout = self.connect_timeout;
        let tx = self._events_tx.clone();
        let stop = Arc::clone(&self.stop_redial);
        self.redial_handles.push(std::thread::spawn(move || {
            redial_loop(
                idx,
                addr,
                hello,
                offer,
                epoch,
                policy,
                connect_timeout,
                tx,
                stop,
            )
        }));
    }

    /// Marks a worker dead: shuts its socket both ways (unblocking the
    /// reader thread), shrinks capacity by its slots, and emits
    /// membership telemetry. Pending-job handling is the caller's job.
    fn kill_worker(&mut self, idx: usize) {
        let w = &mut self.workers[idx];
        if !w.alive {
            return;
        }
        w.alive = false;
        let _ = w.stream.shutdown(SockShutdown::Both);
        self.capacity -= w.slots;
        let n_alive = self.capacity;
        self.telemetry.counter_add("net.disconnects", 1);
        self.telemetry
            .gauge_set("net.workers_alive", n_alive as f64);
        self.telemetry.emit_now_with(|| Event::WorkerLeft {
            worker: idx,
            n_alive,
        });
    }

    /// Kills worker `idx` and queues every job pending on it as an
    /// orphan result. The job ids are retired: a late `Result` for any
    /// of them is stale by construction.
    fn kill_and_orphan(&mut self, idx: usize) {
        let drained: Vec<Pending<J>> = self.workers[idx].pending.drain(..).collect();
        for p in drained {
            self.in_flight -= 1;
            self.orphans.push_back(PoolResult {
                job: p.job,
                output: None,
                status: JobStatus::Orphaned,
                worker: idx,
            });
        }
        self.kill_worker(idx);
    }

    /// Blocks until the next job completes or orphans; returns
    /// [`ClusterError::Quiescent`] when nothing is pending anywhere.
    pub fn next_completion(&mut self) -> Result<PoolResult<J, O>, ClusterError> {
        // One scheduler round's worth of submits has landed; record how
        // wide the dispatch batch was.
        if self.batch > 0 {
            self.telemetry
                .histogram_record("net.batch_size", self.batch as f64);
            self.batch = 0;
        }
        loop {
            if let Some(r) = self.orphans.pop_front() {
                return Ok(r);
            }
            // Lease sweep: a silent worker with pending jobs is dead to
            // us once the lease runs out.
            let now = Instant::now();
            let expired = self.workers.iter().position(|w| {
                w.alive && !w.pending.is_empty() && now.duration_since(w.last_seen) >= self.lease
            });
            if let Some(idx) = expired {
                // Best-effort: the worker may be hung, not gone. Either
                // way the ids are retired and any late result is stale.
                self.enc.set_codec(self.workers[idx].codec);
                let ids: Vec<u64> = self.workers[idx].pending.iter().map(|p| p.job_id).collect();
                for job_id in ids {
                    let buf = self.enc.encode(&Frame::Cancel { job_id });
                    let _ = self.workers[idx].stream.write_all(buf);
                    self.telemetry.counter_add("net.cancels", 1);
                }
                self.kill_and_orphan(idx);
                self.maybe_spawn_redialer(idx);
                continue;
            }
            // Quiescence must wait out live redialers: capacity may come
            // back, and the caller re-checks for parked work when it
            // does (the runners resume dispatching on a restored fleet).
            if self.in_flight == 0 && self.redialing == 0 {
                return Err(ClusterError::Quiescent);
            }
            // Block for the next event, but wake at the earliest lease
            // deadline so silence is noticed.
            let deadline = self
                .workers
                .iter()
                .filter(|w| w.alive && !w.pending.is_empty())
                .map(|w| w.last_seen + self.lease)
                .min();
            let event = match deadline {
                None => match self.events_rx.recv() {
                    Ok(e) => e,
                    Err(_) => return Err(ClusterError::Quiescent),
                },
                Some(d) => match self
                    .events_rx
                    .recv_timeout(d.saturating_duration_since(now))
                {
                    Ok(e) => e,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::Quiescent),
                },
            };
            match event {
                NetEvent::Redialed {
                    worker,
                    epoch,
                    stream,
                    slots,
                    codec,
                    attempts,
                } => {
                    self.redialing -= 1;
                    self.workers[worker].redialing = false;
                    if self.workers[worker].alive {
                        // Unreachable (only dead workers redial), but a
                        // stray success must not corrupt a live session.
                        continue;
                    }
                    let Ok(reader_stream) = stream.try_clone() else {
                        self.telemetry.counter_add("net.redial_gaveup", 1);
                        self.telemetry.emit_now_with(|| Event::RedialGaveUp {
                            worker,
                            attempts: attempts as usize,
                        });
                        continue;
                    };
                    let w = &mut self.workers[worker];
                    // The old reader exited when its socket died; reap it
                    // before installing the new session.
                    if let Some(h) = w.reader.take() {
                        let _ = h.join();
                    }
                    w.stream = stream;
                    w.alive = true;
                    w.slots = slots;
                    w.codec = codec;
                    w.epoch = epoch;
                    w.last_seen = Instant::now();
                    let tx = self._events_tx.clone();
                    w.reader = Some(std::thread::spawn(move || {
                        reader_loop(worker, epoch, reader_stream, tx)
                    }));
                    self.capacity += slots;
                    let n_alive = self.capacity;
                    self.telemetry.counter_add("net.reconnects", 1);
                    let key = match codec {
                        Codec::Binary => "net.codec.binary",
                        Codec::Json => "net.codec.json",
                    };
                    self.telemetry.counter_add(key, 1);
                    self.telemetry
                        .gauge_set("net.workers_alive", n_alive as f64);
                    self.telemetry.emit_now_with(|| Event::WorkerReconnected {
                        worker,
                        epoch,
                        attempts: attempts as usize,
                    });
                    self.telemetry
                        .emit_now_with(|| Event::WorkerJoined { worker, n_alive });
                }
                NetEvent::RedialFailed { worker, attempts } => {
                    self.redialing -= 1;
                    self.workers[worker].redialing = false;
                    self.telemetry.counter_add("net.redial_gaveup", 1);
                    self.telemetry.emit_now_with(|| Event::RedialGaveUp {
                        worker,
                        attempts: attempts as usize,
                    });
                }
                NetEvent::Disconnected {
                    worker,
                    epoch,
                    reason,
                } => {
                    if self.workers[worker].alive && epoch == self.workers[worker].epoch {
                        // A clean EOF and a framing error both kill the
                        // worker, but only the latter is a read fault.
                        if !matches!(reason, ProtoError::Closed) {
                            self.telemetry.counter_add("net.read_errors", 1);
                        }
                        self.kill_and_orphan(worker);
                        self.maybe_spawn_redialer(worker);
                    }
                }
                NetEvent::Frame {
                    worker,
                    epoch,
                    frame,
                } => {
                    if epoch != self.workers[worker].epoch {
                        // Residue from a previous session epoch,
                        // surfacing after a redial made the worker live
                        // again — the fence job-id retirement cannot
                        // provide (DESIGN.md §16.4).
                        self.telemetry.counter_add("net.stale_epoch_frames", 1);
                        continue;
                    }
                    if !self.workers[worker].alive {
                        // Residue from a connection we already tore down.
                        continue;
                    }
                    let gap = self.workers[worker].last_seen.elapsed();
                    self.workers[worker].last_seen = Instant::now();
                    match frame {
                        Frame::Heartbeat { .. } => {
                            self.telemetry.counter_add("net.heartbeats", 1);
                            self.telemetry
                                .histogram_record("net.heartbeat_gap_ms", gap.as_secs_f64() * 1e3);
                        }
                        Frame::Result {
                            job_id,
                            status,
                            output,
                        } => {
                            let pos = self.workers[worker]
                                .pending
                                .iter()
                                .position(|p| p.job_id == job_id);
                            let Some(pos) = pos else {
                                // Retired id (orphaned then re-dispatched
                                // elsewhere): drop, never double-count.
                                self.telemetry.counter_add("net.stale_results", 1);
                                continue;
                            };
                            let p = self.workers[worker].pending.remove(pos);
                            self.in_flight -= 1;
                            self.workers[worker].completed += 1;
                            self.telemetry.counter_add("net.results", 1);
                            self.telemetry.histogram_record(
                                "net.job_rtt_ms",
                                p.sent.elapsed().as_secs_f64() * 1e3,
                            );
                            self.telemetry.gauge_set(
                                &format!("net.worker{worker}.completed"),
                                self.workers[worker].completed as f64,
                            );
                            let (status, output) = if output.is_null() {
                                (status, None)
                            } else {
                                match O::from_value(&output) {
                                    Ok(o) => (status, Some(o)),
                                    Err(_) => {
                                        // Undecodable payload: demote to a
                                        // plain failure so no caller trusts it.
                                        self.telemetry.counter_add("net.bad_outputs", 1);
                                        (JobStatus::Errored, None)
                                    }
                                }
                            };
                            return Ok(PoolResult {
                                job: p.job,
                                output,
                                status,
                                worker,
                            });
                        }
                        Frame::Cancel { job_id } => {
                            // The worker is draining: it dropped this
                            // queued job without running it. Reclaim it
                            // now instead of waiting for the disconnect.
                            let pos = self.workers[worker]
                                .pending
                                .iter()
                                .position(|p| p.job_id == job_id);
                            let Some(pos) = pos else {
                                self.telemetry.counter_add("net.stale_results", 1);
                                continue;
                            };
                            let p = self.workers[worker].pending.remove(pos);
                            self.in_flight -= 1;
                            self.telemetry.counter_add("net.cancel_acks", 1);
                            return Ok(PoolResult {
                                job: p.job,
                                output: None,
                                status: JobStatus::Orphaned,
                                worker,
                            });
                        }
                        other => {
                            // A frame only drivers may send: the peer is
                            // not speaking our protocol. Tear it down.
                            let _ = other;
                            self.telemetry.counter_add("net.protocol_violations", 1);
                            self.kill_and_orphan(worker);
                        }
                    }
                }
            }
        }
    }
}

impl<J, O> Executor<J, O> for TcpCluster<J, O>
where
    J: Serialize,
    O: Deserialize,
{
    fn submit(&mut self, job: J) -> Result<(), ClusterError> {
        TcpCluster::submit(self, job)
    }

    fn next_completion(&mut self) -> Result<PoolResult<J, O>, ClusterError> {
        TcpCluster::next_completion(self)
    }

    fn n_workers(&self) -> usize {
        TcpCluster::n_workers(self)
    }

    fn in_flight(&self) -> usize {
        TcpCluster::in_flight(self)
    }

    fn idle_workers(&self) -> usize {
        TcpCluster::idle_workers(self)
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        TcpCluster::set_telemetry(self, telemetry)
    }
}

impl<J, O> Drop for TcpCluster<J, O> {
    fn drop(&mut self) {
        // Stop background redialers first: a redial landing mid-teardown
        // would hand us a stream nobody will ever read.
        self.stop_redial.store(true, Ordering::Relaxed);
        for h in self.redial_handles.drain(..) {
            let _ = h.join();
        }
        for i in 0..self.workers.len() {
            if self.workers[i].alive {
                // Polite goodbye, then force the socket down either way
                // so the reader thread unblocks.
                self.enc.set_codec(self.workers[i].codec);
                let buf = self.enc.encode(&Frame::Shutdown);
                let _ = self.workers[i].stream.write_all(buf);
                let _ = self.workers[i].stream.shutdown(SockShutdown::Both);
            }
        }
        for w in &mut self.workers {
            if let Some(h) = w.reader.take() {
                let _ = h.join();
            }
        }
    }
}

/// Reads frames until the connection dies, forwarding everything to the
/// driver's event channel. Never writes. The decoder's body buffer is
/// reused across frames, so a steady result stream allocates only for
/// the decoded `Value` trees themselves. Every event is stamped with the
/// session `epoch` the reader was spawned for, so the driver can fence
/// out anything a dead session's reader was still flushing when a redial
/// revived the slot.
fn reader_loop(worker: usize, epoch: u64, mut stream: TcpStream, tx: Sender<NetEvent>) {
    let mut dec = FrameDecoder::new();
    loop {
        match dec.read_from(&mut stream) {
            Ok(frame) => {
                if tx
                    .send(NetEvent::Frame {
                        worker,
                        epoch,
                        frame,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Err(reason) => {
                let _ = tx.send(NetEvent::Disconnected {
                    worker,
                    epoch,
                    reason,
                });
                return;
            }
        }
    }
}

/// Builds the on-the-wire hello for a session: the caller's payload plus
/// the `"_codec"` offer (when the driver prefers binary) and the
/// `"_epoch"` session tag. Non-object hellos are sent as-is — they can
/// carry neither key, which a worker treats as JSON + epoch 0.
fn decorate_hello(hello: &Value, offer: Codec, epoch: u64) -> Value {
    let mut decorated = hello.clone();
    if let Value::Object(map) = &mut decorated {
        if offer == Codec::Binary {
            map.insert(
                "_codec".to_string(),
                Value::Number(Number::PosInt(u64::from(proto::WIRE_VERSION_BINARY))),
            );
        }
        map.insert("_epoch".to_string(), Value::Number(Number::PosInt(epoch)));
    }
    decorated
}

/// Dials one worker and runs the Hello/HelloAck handshake for session
/// `epoch`. Returns the connected stream, the worker's advertised slot
/// count, and the codec the pair settled on. `timeout` bounds both the
/// TCP connect and the handshake reads (cleared before returning, so the
/// reader thread blocks normally afterwards); `None` blocks on OS
/// defaults. A handshake rejection, a mismatched epoch echo, or an
/// unexpected first frame all come back as [`ProtoError::Garbage`] —
/// definitive answers the caller must not retry.
fn dial_worker(
    addr: &str,
    hello: &Value,
    offer: Codec,
    epoch: u64,
    timeout: Option<Duration>,
) -> Result<(TcpStream, usize, Codec), ProtoError> {
    let mut stream = match timeout {
        None => TcpStream::connect(addr)?,
        Some(t) => {
            // `connect_timeout` wants a resolved SocketAddr; try each
            // resolution like `TcpStream::connect` would.
            let mut last_err: Option<std::io::Error> = None;
            let mut connected = None;
            for sock in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&sock, t) {
                    Ok(s) => {
                        connected = Some(s);
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            match connected {
                Some(s) => s,
                None => {
                    return Err(ProtoError::from(last_err.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("{addr}: no addresses resolved"),
                        )
                    })))
                }
            }
        }
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(timeout).ok();
    let mut enc = FrameEncoder::new(Codec::Json);
    let frame = Frame::Hello {
        payload: decorate_hello(hello, offer, epoch),
    };
    stream.write_all(enc.encode(&frame))?;
    let mut dec = FrameDecoder::new();
    let ack = dec.read_from(&mut stream)?;
    let out = match ack {
        Frame::HelloAck {
            slots,
            error: None,
            epoch: acked,
        } => {
            if let Some(acked) = acked {
                if acked != epoch {
                    return Err(ProtoError::Garbage(format!(
                        "{addr}: handshake echoed epoch {acked}, offered {epoch}"
                    )));
                }
            }
            (stream, slots.max(1), dec.last_codec())
        }
        Frame::HelloAck {
            error: Some(msg), ..
        } => {
            return Err(ProtoError::Garbage(format!(
                "{addr}: handshake rejected: {msg}"
            )))
        }
        other => {
            return Err(ProtoError::Garbage(format!(
                "{addr}: expected HelloAck, got {other:?}"
            )))
        }
    };
    out.0.set_read_timeout(None).ok();
    Ok(out)
}

/// Sleeps up to `dur` in small slices, returning `false` early if `stop`
/// flips (driver shutting down).
fn sleep_unless_stopped(stop: &AtomicBool, dur: Duration) -> bool {
    let deadline = Instant::now() + dur;
    loop {
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

/// Background redial loop for one dead worker: bounded attempts with
/// exponential backoff and seeded jitter, each attempt re-handshaking at
/// the bumped session `epoch`. Sends exactly one terminal event —
/// `Redialed` on success, `RedialFailed` on exhaustion — unless the
/// driver is shutting down, in which case it exits silently (the event
/// channel may already be gone).
#[allow(clippy::too_many_arguments)]
fn redial_loop(
    worker: usize,
    addr: String,
    hello: Value,
    offer: Codec,
    epoch: u64,
    policy: ReconnectPolicy,
    connect_timeout: Option<Duration>,
    tx: Sender<NetEvent>,
    stop: Arc<AtomicBool>,
) {
    // Deterministic per-(worker, epoch) jitter stream: drills with a
    // pinned seed replay the same backoff schedule.
    let mut rng = StdRng::seed_from_u64(
        policy.jitter_seed ^ (worker as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ epoch,
    );
    for attempt in 1..=policy.max_attempts {
        let shift = (attempt - 1).min(16);
        let backoff = policy
            .base_backoff
            .saturating_mul(1u32 << shift)
            .min(policy.max_backoff);
        let jitter_cap = (backoff.as_millis() as u64 / 2).max(1);
        let pause = backoff + Duration::from_millis(rng.gen_range(0..=jitter_cap));
        if !sleep_unless_stopped(&stop, pause) {
            return;
        }
        match dial_worker(&addr, &hello, offer, epoch, connect_timeout) {
            Ok((stream, slots, codec)) => {
                let _ = tx.send(NetEvent::Redialed {
                    worker,
                    epoch,
                    stream,
                    slots,
                    codec,
                    attempts: attempt,
                });
                return;
            }
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
        }
    }
    let _ = tx.send(NetEvent::RedialFailed {
        worker,
        attempts: policy.max_attempts,
    });
}

/// Knobs for the worker side of the TCP substrate.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// How often the heartbeat thread beacons. Keep this several times
    /// smaller than the driver's lease timeout.
    pub heartbeat_interval: Duration,
    /// Serve exactly one session, then return (used by tests and by
    /// `hypertune-worker --once`).
    pub once: bool,
    /// How many `Dispatch` frames the session accepts in flight,
    /// advertised to the driver via `HelloAck::slots`. Evaluation stays
    /// on a single thread serving the queue in FIFO order; extra slots
    /// hide dispatch round-trips, they do not add parallelism.
    pub slots: usize,
    /// Preferred wire codec. [`Codec::Binary`] (the default) upgrades
    /// the session when the driver's hello carries a `"_codec"` offer;
    /// [`Codec::Json`] never upgrades, behaving exactly like a
    /// version-1 peer.
    pub codec: Codec,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(250),
            once: false,
            slots: 1,
            codec: Codec::Binary,
        }
    }
}

/// A worker-side evaluator: turns a `Dispatch` payload into a status and
/// an output payload (`Value::Null` when there is none).
pub type EvalFn = Box<dyn Fn(&Value) -> (JobStatus, Value) + Send>;

/// The session's shared write half: socket plus a reused encode scratch
/// buffer, always taken together under one lock so concurrent writers
/// (session, evaluator, heartbeat) never interleave frame bytes.
struct FrameWriter {
    stream: TcpStream,
    enc: FrameEncoder,
}

impl FrameWriter {
    fn write(&mut self, frame: &Frame) -> Result<(), ProtoError> {
        let buf = self.enc.encode(frame);
        self.stream.write_all(buf).map_err(ProtoError::from)
    }
}

/// The session's dispatch queue: the session thread pushes, the single
/// evaluation thread pops in FIFO order, and `close` drains whatever
/// never started so it can be Cancel-acknowledged.
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    cv: Condvar,
}

struct JobQueueInner {
    jobs: VecDeque<(u64, Value)>,
    closed: bool,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            inner: Mutex::new(JobQueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job_id: u64, payload: Value) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.closed {
            return;
        }
        g.jobs.push_back((job_id, payload));
        self.cv.notify_one();
    }

    /// Removes a not-yet-started job; `false` if it already ran (or is
    /// running), in which case its `Result` gets fenced driver-side.
    fn cancel(&self, job_id: u64) -> bool {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match g.jobs.iter().position(|(id, _)| *id == job_id) {
            Some(pos) => {
                g.jobs.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Closes the queue (unblocking the evaluator once it drains) and
    /// returns every job that never started.
    fn close(&self) -> Vec<(u64, Value)> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        let drained = g.jobs.drain(..).collect();
        self.cv.notify_all();
        drained
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// empty.
    fn pop(&self) -> Option<(u64, Value)> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = g.jobs.pop_front() {
                return Some(job);
            }
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Serves driver sessions on `listener` forever (or once, under
/// [`WorkerOptions::once`]). Per session, `make_eval` interprets the
/// `Hello` payload and builds the evaluator — returning `Err(reason)`
/// rejects the session via `HelloAck` without dropping the accept loop.
/// (The hello passed through may carry the protocol's `"_codec"`
/// negotiation key; factories should ignore unknown keys.)
///
/// Session errors (protocol violations, mid-stream disconnects) are
/// logged to stderr and do not kill the worker; the next driver can
/// connect fresh.
pub fn serve_worker<F>(
    listener: TcpListener,
    opts: WorkerOptions,
    make_eval: F,
) -> std::io::Result<()>
where
    F: Fn(&Value) -> Result<EvalFn, String>,
{
    loop {
        let (stream, peer) = listener.accept()?;
        let _ = stream.set_nodelay(true);
        if let Err(e) = serve_session(stream, &opts, &make_eval) {
            eprintln!("hypertune-worker: session with {peer} failed: {e}");
        }
        if opts.once {
            return Ok(());
        }
    }
}

/// Handshakes and serves one driver connection to completion.
fn serve_session<F>(
    stream: TcpStream,
    opts: &WorkerOptions,
    make_eval: &F,
) -> Result<(), ProtoError>
where
    F: Fn(&Value) -> Result<EvalFn, String>,
{
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let writer = Arc::new(Mutex::new(FrameWriter {
        stream,
        enc: FrameEncoder::new(Codec::Json),
    }));
    let hello = match dec.read_from(&mut reader)? {
        Frame::Hello { payload } => payload,
        other => {
            return Err(ProtoError::Garbage(format!(
                "expected Hello, got {other:?}"
            )))
        }
    };
    // Codec negotiation: switch the write half to binary *before* the
    // HelloAck goes out, so the ack's own encoding is the answer the
    // driver is waiting for.
    let offered = hello
        .as_object()
        .and_then(|m| m.get("_codec"))
        .and_then(|v| v.as_u64())
        .unwrap_or(u64::from(proto::WIRE_VERSION));
    if opts.codec == Codec::Binary && offered >= u64::from(proto::WIRE_VERSION_BINARY) {
        writer
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .enc
            .set_codec(Codec::Binary);
    }
    // Session epoch: echo whatever the driver offered (`"_epoch"` in the
    // hello) so its redial handshake can verify it reached a fresh
    // session. Absent on old drivers and non-object hellos → None, which
    // the driver treats as epoch 0.
    let epoch = hello
        .as_object()
        .and_then(|m| m.get("_epoch"))
        .and_then(|v| v.as_u64());
    let slots = opts.slots.max(1);
    let eval = match make_eval(&hello) {
        Ok(eval) => {
            write_locked(
                &writer,
                &Frame::HelloAck {
                    slots,
                    error: None,
                    epoch,
                },
            )?;
            eval
        }
        Err(reason) => {
            write_locked(
                &writer,
                &Frame::HelloAck {
                    slots: 0,
                    error: Some(reason),
                    epoch,
                },
            )?;
            return Ok(());
        }
    };
    // Heartbeats come from their own thread so a long evaluation never
    // looks like a death. All writers share the write half; each frame
    // is one write_all under the lock, so frames never interleave.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::clone(&stop);
    let hb_writer = Arc::clone(&writer);
    let interval = opts.heartbeat_interval;
    let heartbeat = std::thread::spawn(move || {
        let mut seq = 0u64;
        loop {
            std::thread::sleep(interval);
            if hb_stop.load(Ordering::Relaxed) {
                return;
            }
            seq += 1;
            if write_locked(&hb_writer, &Frame::Heartbeat { seq }).is_err() {
                return;
            }
        }
    });
    // One evaluation thread pops the queue in FIFO order and streams
    // results back as they finish — pipelining without reordering.
    let queue = Arc::new(JobQueue::new());
    let eval_queue = Arc::clone(&queue);
    let eval_writer = Arc::clone(&writer);
    let evaluator = std::thread::spawn(move || {
        while let Some((job_id, payload)) = eval_queue.pop() {
            // A panicking benchmark must not take the worker process (and
            // its whole slot queue) down with it: surface it as a Crashed
            // result so the driver's quarantine path owns the decision.
            let (status, output) =
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval(&payload))) {
                    Ok(out) => out,
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".to_string());
                        eprintln!("hypertune-worker: evaluation of job {job_id} panicked: {msg}");
                        (JobStatus::Crashed, Value::Null)
                    }
                };
            let frame = Frame::Result {
                job_id,
                status,
                output,
            };
            if write_locked(&eval_writer, &frame).is_err() {
                return;
            }
        }
    });
    let outcome = session_loop(&mut reader, &mut dec, &writer, &queue);
    // Whatever ended the session, release the evaluator and let the
    // in-progress job's Result flush before the socket goes down (the
    // heartbeat keeps the driver's lease alive meanwhile).
    let _ = queue.close();
    let _ = evaluator.join();
    stop.store(true, Ordering::Relaxed);
    {
        let guard = writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = guard.stream.shutdown(SockShutdown::Both);
    }
    let _ = heartbeat.join();
    outcome
}

/// The worker's frame-pump loop: dispatches go onto the queue, cancels
/// come off it, and `Shutdown` drains it with Cancel acknowledgements.
fn session_loop(
    reader: &mut TcpStream,
    dec: &mut FrameDecoder,
    writer: &Arc<Mutex<FrameWriter>>,
    queue: &Arc<JobQueue>,
) -> Result<(), ProtoError> {
    loop {
        match dec.read_from(reader) {
            Ok(Frame::Dispatch { job_id, payload }) => queue.push(job_id, payload),
            // If the job already started (or finished), its Result is
            // fenced driver-side as stale; nothing to do here.
            Ok(Frame::Cancel { job_id }) => {
                let _ = queue.cancel(job_id);
            }
            Ok(Frame::Shutdown) => {
                // Drain: every queued-but-unstarted job is handed back
                // via Cancel so the driver reclaims it immediately
                // instead of inferring orphans from the disconnect.
                for (job_id, _) in queue.close() {
                    if write_locked(writer, &Frame::Cancel { job_id }).is_err() {
                        break;
                    }
                }
                return Ok(());
            }
            Ok(other) => {
                return Err(ProtoError::Garbage(format!(
                    "unexpected frame from driver: {other:?}"
                )))
            }
            // Driver vanished between frames; not this worker's fault.
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Encodes and writes one frame atomically under the shared-writer lock.
fn write_locked(writer: &Arc<Mutex<FrameWriter>>, frame: &Frame) -> Result<(), ProtoError> {
    let mut guard = writer.lock().unwrap_or_else(|p| p.into_inner());
    guard.write(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// Spawns an in-process worker doubling u64 jobs; returns its addr.
    fn spawn_doubler(once: bool) -> (String, JoinHandle<std::io::Result<()>>) {
        spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once,
            ..WorkerOptions::default()
        })
    }

    fn spawn_doubler_with(opts: WorkerOptions) -> (String, JoinHandle<std::io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            serve_worker(listener, opts, |hello| {
                if hello.as_object().and_then(|m| m.get("reject")).is_some() {
                    return Err("rejected by test factory".to_string());
                }
                Ok(Box::new(|payload: &Value| {
                    let x = payload.as_u64().unwrap_or(0);
                    (JobStatus::Succeeded, json!(x * 2))
                }) as EvalFn)
            })
        });
        (addr, handle)
    }

    fn opts_with_lease(ms: u64) -> TcpClusterOptions {
        TcpClusterOptions {
            lease_timeout: Duration::from_millis(ms),
            ..TcpClusterOptions::default()
        }
    }

    #[test]
    fn jobs_round_trip_over_loopback() {
        let (a, ha) = spawn_doubler(true);
        let (b, hb) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a, b], json!({"test": true}), TcpClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.n_workers(), 2);
        // Both sides default to binary and the hello is an object, so
        // the offer goes out and both workers take it.
        assert_eq!(cluster.worker_codec(0), Codec::Binary);
        assert_eq!(cluster.worker_codec(1), Codec::Binary);
        let mut outs = Vec::new();
        let mut next = 0u64;
        while outs.len() < 10 {
            while next < 10 && cluster.submit(next).is_ok() {
                next += 1;
            }
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Succeeded);
            assert_eq!(r.output, Some(r.job * 2));
            outs.push(r.output.unwrap());
        }
        assert_eq!(
            cluster.next_completion().unwrap_err(),
            ClusterError::Quiescent
        );
        drop(cluster); // sends Shutdown; --once workers then return
        ha.join().unwrap().unwrap();
        hb.join().unwrap().unwrap();
    }

    #[test]
    fn non_object_hello_pins_the_session_to_json() {
        // A hello with nowhere to carry the `_codec` offer must leave
        // the connection on the version-1 JSON framing.
        let (a, h) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a], json!(null), TcpClusterOptions::default()).unwrap();
        assert_eq!(cluster.worker_codec(0), Codec::Json);
        cluster.submit(3).unwrap();
        assert_eq!(cluster.next_completion().unwrap().output, Some(6));
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn mixed_codec_fleet_interops() {
        // One binary-capable worker, one deliberately stuck on JSON
        // (a "v1 peer"): the driver must speak to each in its own
        // codec within a single fleet.
        let (a, ha) = spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            ..WorkerOptions::default()
        });
        let (b, hb) = spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            codec: Codec::Json,
            ..WorkerOptions::default()
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a, b], json!({"test": true}), TcpClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.worker_codec(0), Codec::Binary);
        assert_eq!(cluster.worker_codec(1), Codec::Json);
        let mut outs = Vec::new();
        let mut next = 0u64;
        while outs.len() < 10 {
            while next < 10 && cluster.submit(next).is_ok() {
                next += 1;
            }
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Succeeded);
            assert_eq!(r.output, Some(r.job * 2));
            outs.push(r.job);
        }
        outs.sort_unstable();
        assert_eq!(outs, (0..10).collect::<Vec<_>>());
        drop(cluster);
        ha.join().unwrap().unwrap();
        hb.join().unwrap().unwrap();
    }

    #[test]
    fn multi_slot_worker_pipelines_in_fifo_order() {
        let (addr, h) = spawn_doubler_with(WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            slots: 4,
            ..WorkerOptions::default()
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!({"test": true}), TcpClusterOptions::default())
                .unwrap();
        assert_eq!(cluster.n_workers(), 4, "capacity counts slots");
        for j in 0..4 {
            cluster.submit(j).unwrap();
        }
        assert_eq!(cluster.in_flight(), 4);
        assert_eq!(cluster.submit(99), Err(ClusterError::NoIdleWorker));
        let mut jobs = Vec::new();
        for _ in 0..4 {
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Succeeded);
            assert_eq!(r.output, Some(r.job * 2));
            jobs.push(r.job);
        }
        assert_eq!(
            jobs,
            vec![0, 1, 2, 3],
            "single evaluation thread serves the queue in dispatch order"
        );
        assert_eq!(
            cluster.next_completion().unwrap_err(),
            ClusterError::Quiescent
        );
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_dispatches_with_cancel_acks() {
        // A hand-rolled driver: dispatch three jobs at a slow slots-4
        // worker, then send Shutdown. The job already evaluating must
        // answer with a Result; the two still queued must come back as
        // Cancel acknowledgements, not silence.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            slots: 4,
            ..WorkerOptions::default()
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|payload: &Value| {
                    std::thread::sleep(Duration::from_millis(80));
                    (JobStatus::Succeeded, payload.clone())
                }) as EvalFn)
            })
        });
        let mut s = TcpStream::connect(&addr).unwrap();
        proto::write_frame(
            &mut s,
            &Frame::Hello {
                payload: json!(null),
            },
        )
        .unwrap();
        match proto::read_frame(&mut s).unwrap() {
            Frame::HelloAck {
                slots: 4,
                error: None,
                ..
            } => {}
            other => panic!("expected 4-slot HelloAck, got {other:?}"),
        }
        proto::write_frame(
            &mut s,
            &Frame::Dispatch {
                job_id: 0,
                payload: json!(1),
            },
        )
        .unwrap();
        // Give the evaluator time to start job 0 before queueing more.
        std::thread::sleep(Duration::from_millis(30));
        proto::write_frame(
            &mut s,
            &Frame::Dispatch {
                job_id: 1,
                payload: json!(2),
            },
        )
        .unwrap();
        proto::write_frame(
            &mut s,
            &Frame::Dispatch {
                job_id: 2,
                payload: json!(3),
            },
        )
        .unwrap();
        proto::write_frame(&mut s, &Frame::Shutdown).unwrap();
        let mut results = Vec::new();
        let mut cancels = Vec::new();
        loop {
            match proto::read_frame(&mut s) {
                Ok(Frame::Heartbeat { .. }) => {}
                Ok(Frame::Result { job_id, .. }) => results.push(job_id),
                Ok(Frame::Cancel { job_id }) => cancels.push(job_id),
                Ok(other) => panic!("unexpected frame: {other:?}"),
                Err(_) => break, // session over
            }
        }
        cancels.sort_unstable();
        assert_eq!(results, vec![0], "the in-progress job still answers");
        assert_eq!(cancels, vec![1, 2], "queued jobs are handed back");
        h.join().unwrap().unwrap();
    }

    #[test]
    fn worker_cancel_ack_surfaces_an_orphan() {
        // A hand-rolled worker that refuses the job via a Cancel ack:
        // the driver must reclaim it as an orphan without tearing the
        // connection down.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Hello
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                    epoch: None,
                },
            )
            .unwrap();
            let job_id = match proto::read_frame(&mut s).unwrap() {
                Frame::Dispatch { job_id, .. } => job_id,
                other => panic!("expected Dispatch, got {other:?}"),
            };
            proto::write_frame(&mut s, &Frame::Cancel { job_id }).unwrap();
            // Linger for the shutdown so the driver's reader sees a
            // clean session end.
            let _ = proto::read_frame(&mut s);
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(7).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert_eq!(r.job, 7);
        assert_eq!(r.output, None);
        assert_eq!(cluster.in_flight(), 0, "the slot is reclaimed");
        assert_eq!(cluster.n_workers(), 1, "a drain ack is not a death");
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn oversubscription_is_rejected() {
        let (a, h) = spawn_doubler(true);
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[a], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(1).unwrap();
        assert_eq!(cluster.submit(2), Err(ClusterError::NoIdleWorker));
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.output, Some(2));
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn handshake_rejection_is_a_typed_error() {
        let (a, h) = spawn_doubler(true);
        let err = match TcpCluster::<u64, u64>::connect(
            &[a],
            json!({"reject": true}),
            TcpClusterOptions::default(),
        ) {
            Ok(_) => panic!("handshake should have been rejected"),
            Err(e) => e,
        };
        match err {
            ProtoError::Garbage(msg) => assert!(msg.contains("rejected")),
            other => panic!("expected Garbage, got {other:?}"),
        }
        h.join().unwrap().unwrap();
    }

    #[test]
    fn disconnect_orphans_the_pending_job() {
        // A hand-rolled "worker" that takes the job and dies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Hello
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                    epoch: None,
                },
            )
            .unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Dispatch
            drop(s); // process death
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(7).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert_eq!(r.job, 7);
        assert_eq!(r.output, None);
        assert_eq!(cluster.n_workers(), 0, "disconnect is a permanent leave");
        assert_eq!(cluster.in_flight(), 0, "orphan holds no slot");
        h.join().unwrap();
    }

    #[test]
    fn missed_heartbeats_expire_the_lease() {
        // Accepts and handshakes, then goes silent forever: no result,
        // no heartbeat. The driver must orphan the job after the lease.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap();
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                    epoch: None,
                },
            )
            .unwrap();
            // Hold the connection open, silently, until the driver
            // tears it down.
            loop {
                match proto::read_frame(&mut s) {
                    Ok(_) => continue,
                    Err(_) => return,
                }
            }
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts_with_lease(80)).unwrap();
        cluster.submit(5).unwrap();
        let t0 = Instant::now();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "orphan must wait out the lease"
        );
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn stale_results_are_dropped() {
        // A worker that answers a retired job id first, then the real
        // one: the driver must drop the former and surface the latter.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap();
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                    epoch: None,
                },
            )
            .unwrap();
            let (job_id, payload) = match proto::read_frame(&mut s).unwrap() {
                Frame::Dispatch { job_id, payload } => (job_id, payload),
                other => panic!("expected Dispatch, got {other:?}"),
            };
            proto::write_frame(
                &mut s,
                &Frame::Result {
                    job_id: job_id + 999, // nobody asked for this id
                    status: JobStatus::Succeeded,
                    output: json!(u64::MAX),
                },
            )
            .unwrap();
            let x = payload.as_u64().unwrap();
            proto::write_frame(
                &mut s,
                &Frame::Result {
                    job_id,
                    status: JobStatus::Succeeded,
                    output: json!(x * 2),
                },
            )
            .unwrap();
            // Linger for the shutdown so the driver's reader sees a
            // clean session end.
            let _ = proto::read_frame(&mut s);
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(21).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded);
        assert_eq!(r.output, Some(42), "the stale result must not surface");
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn failure_statuses_cross_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            ..WorkerOptions::default()
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|_: &Value| (JobStatus::Errored, Value::Null)) as EvalFn)
            })
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(1).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Errored);
        assert_eq!(r.output, None);
        assert!(!r.is_ok());
        assert_eq!(cluster.idle_workers(), 1, "slot is free for a retry");
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn heartbeats_cover_long_evaluations() {
        // Evaluation takes 3x the lease; heartbeats must keep the lease
        // alive so the job completes instead of orphaning.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(15),
            once: true,
            ..WorkerOptions::default()
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|payload: &Value| {
                    std::thread::sleep(Duration::from_millis(240));
                    (JobStatus::Succeeded, payload.clone())
                }) as EvalFn)
            })
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts_with_lease(80)).unwrap();
        cluster.submit(11).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded, "heartbeats held the lease");
        assert_eq!(r.output, Some(11));
        drop(cluster);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn redial_revives_a_dead_worker_under_a_new_epoch() {
        // A worker whose first session dies mid-job, but which keeps
        // accepting (no `once`): the orphan surfaces immediately, then
        // the redial loop lands a second session and the retry runs
        // there.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            // Session 1: take the job and die.
            {
                let (mut s, _) = listener.accept().unwrap();
                let hello = match proto::read_frame(&mut s).unwrap() {
                    Frame::Hello { payload } => payload,
                    other => panic!("expected Hello, got {other:?}"),
                };
                let epoch = hello
                    .as_object()
                    .and_then(|m| m.get("_epoch"))
                    .and_then(|v| v.as_u64());
                assert_eq!(epoch, Some(0), "first connect is epoch 0");
                proto::write_frame(
                    &mut s,
                    &Frame::HelloAck {
                        slots: 1,
                        error: None,
                        epoch,
                    },
                )
                .unwrap();
                let _ = proto::read_frame(&mut s).unwrap(); // Dispatch
            } // drop = process death
              // Session 2: the redial. Serve one job properly.
            let (mut s, _) = listener.accept().unwrap();
            let hello = match proto::read_frame(&mut s).unwrap() {
                Frame::Hello { payload } => payload,
                other => panic!("expected Hello, got {other:?}"),
            };
            let epoch = hello
                .as_object()
                .and_then(|m| m.get("_epoch"))
                .and_then(|v| v.as_u64());
            assert_eq!(epoch, Some(1), "redial bumps the session epoch");
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                    epoch,
                },
            )
            .unwrap();
            let (job_id, payload) = match proto::read_frame(&mut s).unwrap() {
                Frame::Dispatch { job_id, payload } => (job_id, payload),
                other => panic!("expected Dispatch, got {other:?}"),
            };
            proto::write_frame(
                &mut s,
                &Frame::Result {
                    job_id,
                    status: JobStatus::Succeeded,
                    output: json!(payload.as_u64().unwrap() * 2),
                },
            )
            .unwrap();
            let _ = proto::read_frame(&mut s); // linger for Shutdown
        });
        let opts = TcpClusterOptions {
            reconnect: ReconnectPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(40),
                jitter_seed: 7,
            },
            ..TcpClusterOptions::default()
        };
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!({"test": true}), opts).unwrap();
        cluster.submit(9).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned, "the dead session orphans");
        // The redialer is still live, so next_completion blocks rather
        // than declaring quiescence — and eventually capacity returns.
        while cluster.n_workers() == 0 {
            match cluster.next_completion() {
                Ok(r) => panic!("no job is in flight, got {:?}", r.status),
                Err(ClusterError::Quiescent) => {
                    // Allowed only once the redial landed (capacity back).
                    assert!(cluster.n_workers() > 0, "quiescent with a live redialer");
                }
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        assert_eq!(cluster.n_workers(), 1, "capacity is restored");
        cluster.submit(9).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded);
        assert_eq!(r.output, Some(18), "the retry runs on the new session");
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn redial_gives_up_when_the_worker_stays_gone() {
        // Worker dies and its listener goes away: the redial loop must
        // exhaust its attempts and declare a permanent Leave, after
        // which the cluster is quiescent at zero capacity.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Hello
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 1,
                    error: None,
                    epoch: None,
                },
            )
            .unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Dispatch
            drop(listener); // nobody will ever answer the redial
        });
        let opts = TcpClusterOptions {
            reconnect: ReconnectPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(10),
                jitter_seed: 1,
            },
            connect_timeout: Some(Duration::from_millis(200)),
            ..TcpClusterOptions::default()
        };
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts).unwrap();
        cluster.submit(3).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Orphaned);
        // Blocks through the failing redial attempts, then reports
        // quiescence once the loop gives up.
        assert_eq!(
            cluster.next_completion().unwrap_err(),
            ClusterError::Quiescent
        );
        assert_eq!(cluster.n_workers(), 0, "give-up is a permanent leave");
        h.join().unwrap();
    }

    #[test]
    fn half_open_peer_expires_the_lease() {
        // The nastiest disconnect: the peer handshakes, then stops
        // participating *without* closing — reads nothing, writes
        // nothing. Driver-side writes succeed into socket buffers, so
        // only the heartbeat lease can catch it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let (done_tx, done_rx) = unbounded::<()>();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = proto::read_frame(&mut s).unwrap(); // Hello
            proto::write_frame(
                &mut s,
                &Frame::HelloAck {
                    slots: 2,
                    error: None,
                    epoch: None,
                },
            )
            .unwrap();
            // Half-open stall: keep the socket alive but never read or
            // write again until the test is over.
            let _ = done_rx.recv();
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), opts_with_lease(80)).unwrap();
        cluster.submit(1).unwrap();
        cluster.submit(2).unwrap();
        let t0 = Instant::now();
        let mut orphans = Vec::new();
        for _ in 0..2 {
            let r = cluster.next_completion().unwrap();
            assert_eq!(r.status, JobStatus::Orphaned);
            orphans.push(r.job);
        }
        orphans.sort_unstable();
        assert_eq!(orphans, vec![1, 2], "every pending job orphans");
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "orphans must wait out the lease, not race it"
        );
        assert_eq!(cluster.n_workers(), 0);
        let _ = done_tx.send(());
        drop(cluster);
        h.join().unwrap();
    }

    #[test]
    fn panicking_evaluation_crashes_the_job_not_the_worker() {
        // A benchmark that panics on one payload must surface as a
        // Crashed result and leave the worker serving the next job.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = WorkerOptions {
            heartbeat_interval: Duration::from_millis(20),
            once: true,
            ..WorkerOptions::default()
        };
        let h = std::thread::spawn(move || {
            serve_worker(listener, opts, |_| {
                Ok(Box::new(|payload: &Value| {
                    let x = payload.as_u64().unwrap_or(0);
                    assert!(x != 13, "unlucky payload");
                    (JobStatus::Succeeded, json!(x * 2))
                }) as EvalFn)
            })
        });
        let mut cluster: TcpCluster<u64, u64> =
            TcpCluster::connect(&[addr], json!(null), TcpClusterOptions::default()).unwrap();
        cluster.submit(13).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Crashed, "panic = crashed result");
        assert_eq!(r.output, None);
        cluster.submit(4).unwrap();
        let r = cluster.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Succeeded, "the worker survived");
        assert_eq!(r.output, Some(8));
        drop(cluster);
        h.join().unwrap().unwrap();
    }
}
