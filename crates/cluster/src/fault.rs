//! Worker-fault injection: the failure modes a production tuner survives.
//!
//! [`StragglerModel`](crate::StragglerModel) only stretches durations; a
//! [`FaultModel`] makes jobs *fail*. At dispatch time each job draws at
//! most one [`Fault`]:
//!
//! - **Crash** — the worker dies partway through: a fraction of the
//!   (straggler-adjusted) duration is consumed and no result is produced;
//! - **Error** — the evaluation runs to completion and then raises
//!   (diverged loss, out-of-memory at the final step, bad hyper-params);
//! - **Hang** — the worker stalls and the job takes `factor` times its
//!   nominal duration; a per-job timeout (see
//!   [`SimCluster::set_job_timeout`](crate::SimCluster::set_job_timeout))
//!   converts the hang into a reported failure, otherwise it is an
//!   extreme straggler;
//! - **Corrupt** — the job finishes on time but its result is garbage
//!   (NaN metric, truncated payload) and must be discarded.
//!
//! Both execution substrates consume the model the same way: the fault is
//! drawn on the *driver* thread at submission, so a run is a deterministic
//! function of the seed regardless of worker scheduling. A disabled model
//! ([`FaultModel::none`]) draws no randomness at all, which keeps
//! fault-free runs bit-identical to builds that predate fault injection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The failure assigned to one job at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Worker dies after consuming `frac` (in `[0, 1)`) of the job's
    /// effective duration; no result is produced.
    Crash {
        /// Fraction of the effective duration wasted before the crash.
        frac: f64,
    },
    /// The evaluation completes its full duration, then reports an error.
    Error,
    /// The job takes `factor` times its effective duration.
    Hang {
        /// Slowdown factor (`> 1`).
        factor: f64,
    },
    /// The job completes on time but its result must be discarded.
    Corrupt,
}

/// Serializable fault-rate specification (the knobs of a [`FaultModel`]).
///
/// The four probabilities are per-dispatch and mutually exclusive: one
/// uniform draw is partitioned among them, so their sum must stay in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultSpec {
    /// Probability that the worker crashes mid-evaluation.
    pub crash_prob: f64,
    /// Probability that the evaluation errors after running fully.
    pub error_prob: f64,
    /// Probability that the worker hangs.
    pub hang_prob: f64,
    /// Probability that the result is corrupt.
    pub corrupt_prob: f64,
    /// Duration multiplier applied to hanging jobs.
    pub hang_factor: f64,
}

impl FaultSpec {
    /// No faults of any kind.
    pub fn none() -> Self {
        Self {
            crash_prob: 0.0,
            error_prob: 0.0,
            hang_prob: 0.0,
            corrupt_prob: 0.0,
            hang_factor: 10.0,
        }
    }

    /// Worker crashes only, with the given per-dispatch probability.
    pub fn crashes(prob: f64) -> Self {
        Self {
            crash_prob: prob,
            ..Self::none()
        }
    }

    /// Evaluation errors only.
    pub fn errors(prob: f64) -> Self {
        Self {
            error_prob: prob,
            ..Self::none()
        }
    }

    /// Hangs only, with the given duration multiplier.
    pub fn hangs(prob: f64, factor: f64) -> Self {
        Self {
            hang_prob: prob,
            hang_factor: factor,
            ..Self::none()
        }
    }

    /// Corrupt results only.
    pub fn corrupt(prob: f64) -> Self {
        Self {
            corrupt_prob: prob,
            ..Self::none()
        }
    }

    /// Sum of the four fault probabilities.
    pub fn total_prob(&self) -> f64 {
        self.crash_prob + self.error_prob + self.hang_prob + self.corrupt_prob
    }

    /// `true` when every probability is zero.
    pub fn is_none(&self) -> bool {
        self.total_prob() == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("error_prob", self.error_prob),
            ("hang_prob", self.hang_prob),
            ("corrupt_prob", self.corrupt_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        assert!(
            self.total_prob() <= 1.0 + 1e-12,
            "fault probabilities must sum to <= 1"
        );
        assert!(self.hang_factor >= 1.0, "hang_factor must be >= 1");
    }
}

/// A seeded source of [`Fault`]s, one draw per dispatched job.
#[derive(Debug, Clone)]
pub struct FaultModel {
    spec: FaultSpec,
    rng: StdRng,
}

impl FaultModel {
    /// A model that never injects a fault (and never consumes RNG).
    pub fn none() -> Self {
        Self {
            spec: FaultSpec::none(),
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// A model with the given rates, driven by a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`, the probabilities
    /// sum past 1, or `hang_factor < 1`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        spec.validate();
        Self {
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The rates this model draws from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// `true` when the model can never fire.
    pub fn is_disabled(&self) -> bool {
        self.spec.is_none()
    }

    /// Draws the fault (if any) for the next dispatched job. Disabled
    /// models return `None` without consuming randomness.
    pub fn draw(&mut self) -> Option<Fault> {
        if self.is_disabled() {
            return None;
        }
        let u = self.rng.gen::<f64>();
        let s = &self.spec;
        let mut edge = s.crash_prob;
        if u < edge {
            let frac = self.rng.gen::<f64>();
            return Some(Fault::Crash { frac });
        }
        edge += s.error_prob;
        if u < edge {
            return Some(Fault::Error);
        }
        edge += s.hang_prob;
        if u < edge {
            return Some(Fault::Hang {
                factor: s.hang_factor,
            });
        }
        edge += s.corrupt_prob;
        if u < edge {
            return Some(Fault::Corrupt);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_never_fires() {
        let mut m = FaultModel::none();
        for _ in 0..100 {
            assert_eq!(m.draw(), None);
        }
    }

    #[test]
    fn certain_crash_always_fires_with_bounded_fraction() {
        let mut m = FaultModel::new(FaultSpec::crashes(1.0), 3);
        for _ in 0..200 {
            match m.draw() {
                Some(Fault::Crash { frac }) => assert!((0.0..1.0).contains(&frac)),
                other => panic!("expected crash, got {other:?}"),
            }
        }
    }

    #[test]
    fn rates_respected_roughly() {
        let spec = FaultSpec {
            crash_prob: 0.2,
            error_prob: 0.1,
            hang_prob: 0.0,
            corrupt_prob: 0.0,
            hang_factor: 10.0,
        };
        let mut m = FaultModel::new(spec, 11);
        let mut crashes = 0;
        let mut errors = 0;
        for _ in 0..4000 {
            match m.draw() {
                Some(Fault::Crash { .. }) => crashes += 1,
                Some(Fault::Error) => errors += 1,
                Some(f) => panic!("unexpected {f:?}"),
                None => {}
            }
        }
        assert!((600..=1000).contains(&crashes), "crashes {crashes}");
        assert!((280..=520).contains(&errors), "errors {errors}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = FaultSpec {
            crash_prob: 0.3,
            error_prob: 0.2,
            hang_prob: 0.1,
            corrupt_prob: 0.1,
            hang_factor: 5.0,
        };
        let mut a = FaultModel::new(spec, 7);
        let mut b = FaultModel::new(spec, 7);
        for _ in 0..500 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn mixed_faults_all_kinds_appear() {
        let spec = FaultSpec {
            crash_prob: 0.25,
            error_prob: 0.25,
            hang_prob: 0.25,
            corrupt_prob: 0.25,
            hang_factor: 4.0,
        };
        let mut m = FaultModel::new(spec, 0);
        let (mut c, mut e, mut h, mut k) = (0, 0, 0, 0);
        for _ in 0..400 {
            match m.draw() {
                Some(Fault::Crash { .. }) => c += 1,
                Some(Fault::Error) => e += 1,
                Some(Fault::Hang { factor }) => {
                    assert_eq!(factor, 4.0);
                    h += 1;
                }
                Some(Fault::Corrupt) => k += 1,
                None => panic!("sum of probs is 1: a fault must fire"),
            }
        }
        assert!(c > 0 && e > 0 && h > 0 && k > 0, "{c} {e} {h} {k}");
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn oversubscribed_probabilities_panic() {
        FaultModel::new(
            FaultSpec {
                crash_prob: 0.6,
                error_prob: 0.6,
                hang_prob: 0.0,
                corrupt_prob: 0.0,
                hang_factor: 2.0,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "hang_factor")]
    fn invalid_hang_factor_panics() {
        FaultModel::new(FaultSpec::hangs(0.5, 0.5), 0);
    }
}
