//! The distributed substrate's wire protocol: length-prefixed frames
//! over TCP, in one of two codecs — self-describing JSON (version 1) or
//! a compact binary encoding (version 2).
//!
//! This module is the *normative implementation* of DESIGN.md §16 — the
//! frame grammar here and the prose spec there must stay in lockstep.
//!
//! # Frame grammar
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! frame   := length body
//! length  := u32, big-endian — byte length of `body` (≥ 1, ≤ MAX_FRAME)
//! body    := version payload
//! version := u8 — WIRE_VERSION (1, JSON) or WIRE_VERSION_BINARY (2)
//! payload := version 1: UTF-8 JSON encoding of one `Frame` value
//!            (externally tagged: {"Dispatch": {...}}, "Shutdown", …)
//!            version 2: binary encoding, see below
//! ```
//!
//! The length prefix covers the version byte, so `payload` is exactly
//! `length - 1` bytes. A reader that sees a bad length, a bad version, or
//! an unparseable payload reports a typed [`ProtoError`] and the
//! connection is torn down — frames are never resynchronized mid-stream,
//! mirroring how the WAL refuses interior-tampered records rather than
//! guessing. Readers accept *both* codecs on every frame (the version
//! byte is per-frame); writers send binary only after the Hello/HelloAck
//! handshake proves the peer can read it (see `net`).
//!
//! # Binary payload grammar (version 2)
//!
//! All multi-byte integers are LEB128 varints (`varint`); `f64` is 8
//! bytes little-endian (exact bit pattern, so float round-trips are
//! lossless). Strings are `varint` length + UTF-8 bytes.
//!
//! ```text
//! payload  := tag fields
//! tag      := u8 — 0 Hello · 1 HelloAck · 2 Dispatch · 3 Result
//!                  4 Cancel · 5 Heartbeat · 6 Shutdown
//! Hello    := value
//! HelloAck := varint(slots) opt_str(error) [opt_u64(epoch)]
//! Dispatch := varint(job_id) value
//! Result   := varint(job_id) status value
//! Cancel   := varint(job_id)
//! Heartbeat:= varint(seq)
//! Shutdown := ε
//! opt_str  := 0x00 | 0x01 string
//! opt_u64  := 0x00 | 0x01 varint
//! status   := u8 — 0 Succeeded · 1 Crashed · 2 Errored · 3 TimedOut
//!                  4 Orphaned · 5 Corrupt
//! value    := 0x00                          null
//!           | 0x01 | 0x02                   false | true
//!           | 0x03 varint                   non-negative integer
//!           | 0x04 varint(zigzag)           negative integer
//!           | 0x05 f64-le                   float
//!           | 0x06 string                   string
//!           | 0x07 varint(n) value×n        array (generic)
//!           | 0x08 varint(n) f64-le×n       array of floats (fast path)
//!           | 0x09 varint(n) (string value)×n  object, keys in map order
//! ```
//!
//! Tag `0x08` is the hot path for configs and results: a non-empty array
//! whose elements are all floats is shipped as raw little-endian `f64`
//! words, no per-element tags. Decoding reconstructs the identical
//! `Value` tree, so the two array encodings are interchangeable on the
//! wire and bit-identical after decode.
//!
//! The `HelloAck` epoch is the one *optional tail*: writers always emit
//! it, but a decoder that reaches the end of the payload before it
//! treats it as absent (`None`). That keeps frames from peers predating
//! session epochs decodable — the only place the "no trailing bytes"
//! rule is deliberately relaxed. On the JSON side the same compatibility
//! falls out of object semantics (a missing `"epoch"` key decodes as
//! `None`).
//!
//! # Message set
//!
//! | Frame | Direction | Purpose |
//! |---|---|---|
//! | [`Frame::Hello`] | driver → worker | opens a session; carries an application payload (benchmark name, seed, …) the worker uses to build its evaluator |
//! | [`Frame::HelloAck`] | worker → driver | accepts (slot count) or rejects (error string) the session; echoes the offered session epoch |
//! | [`Frame::Dispatch`] | driver → worker | one job: driver-assigned id plus an opaque serialized payload |
//! | [`Frame::Result`] | worker → driver | terminal outcome of a dispatched job |
//! | [`Frame::Cancel`] | driver → worker | the driver gave up on a job (lease expiry); the eventual `Result`, if any, will be dropped as stale. worker → driver: the worker dropped a queued job unrun (shutdown drain) and the driver should reclaim it |
//! | [`Frame::Heartbeat`] | worker → driver | liveness beacon, sent every heartbeat interval — including *while evaluating* |
//! | [`Frame::Shutdown`] | driver → worker | end of session; the worker drains its queue and closes the connection |
//!
//! Payloads ride as [`serde::Value`] trees so the protocol stays
//! non-generic: the driver serializes the job type it owns, the worker
//! deserializes into whatever its evaluator accepts, and a frame never
//! needs to know either concrete type.

use std::io::{Read, Write};

use serde::{Deserialize, Number, Serialize, Value};

use crate::sim::JobStatus;

/// Protocol version byte for JSON-encoded frames. Bump on any
/// incompatible change to the frame grammar or message set.
pub const WIRE_VERSION: u8 = 1;

/// Protocol version byte for binary-encoded frames (same message set as
/// version 1, different payload encoding).
pub const WIRE_VERSION_BINARY: u8 = 2;

/// Upper bound on a frame body (version byte + payload). Large enough
/// for any config/eval in this workspace with orders of magnitude to
/// spare; small enough that a corrupt length prefix cannot make the
/// reader allocate gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Nesting depth limit for binary `value` decoding, so a malicious peer
/// cannot overflow the stack with a deeply nested array/object tree.
const MAX_VALUE_DEPTH: usize = 128;

/// Which payload encoding a frame (or a connection's write half) uses.
/// Readers accept both unconditionally; writers negotiate via the
/// `Hello`/`HelloAck` handshake (DESIGN.md §16.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Version-1 frames: UTF-8 JSON payloads. Every peer speaks this.
    Json,
    /// Version-2 frames: compact binary payloads (varints, raw `f64`).
    Binary,
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Codec::Json => write!(f, "json"),
            Codec::Binary => write!(f, "binary"),
        }
    }
}

/// One protocol message. See the module docs for the frame grammar and
/// the direction/purpose of each variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Session open (driver → worker). `payload` is application data the
    /// worker's session factory interprets (e.g. benchmark name + seed).
    Hello {
        /// Application handshake data, opaque to the protocol layer.
        payload: Value,
    },
    /// Session accept/reject (worker → driver). `slots` is how many jobs
    /// the worker pipelines concurrently (`--slots N`, default 1); a
    /// `Some` in `error` rejects the session and the driver must not
    /// dispatch.
    HelloAck {
        /// Concurrent in-flight job capacity this worker offers.
        slots: usize,
        /// `Some(reason)` when the worker rejects the handshake.
        error: Option<String>,
        /// Echo of the session epoch the driver offered via the
        /// `"_epoch"` key in its `Hello` payload (see `net`): 0 for a
        /// first connection, incremented per redial. `None` when the
        /// hello carried no epoch or the worker predates epochs — the
        /// driver treats both as epoch 0.
        epoch: Option<u64>,
    },
    /// One unit of work (driver → worker).
    Dispatch {
        /// Driver-assigned id; echoed verbatim in the matching `Result`.
        job_id: u64,
        /// Serialized job, opaque to the protocol layer.
        payload: Value,
    },
    /// Terminal outcome of a dispatched job (worker → driver).
    Result {
        /// The id from the matching `Dispatch`.
        job_id: u64,
        /// How the evaluation ended.
        status: JobStatus,
        /// Serialized output; `Value::Null` when the job produced none.
        output: Value,
    },
    /// Driver → worker: the driver abandoned a job (lease expiry); any
    /// eventual `Result` for it is stale. Worker → driver: the worker is
    /// shutting down and dropped this queued job without running it —
    /// the driver reclaims it immediately instead of waiting for a
    /// disconnect.
    Cancel {
        /// The id of the abandoned job.
        job_id: u64,
    },
    /// Liveness beacon (worker → driver), sent on a timer independent of
    /// the evaluation loop so long-running jobs don't look like deaths.
    Heartbeat {
        /// Monotone per-connection sequence number.
        seq: u64,
    },
    /// End of session (driver → worker); the worker acknowledges any
    /// queued-but-unrun dispatches with `Cancel` frames, finishes the
    /// job already evaluating (if any), and closes the connection.
    Shutdown,
}

/// Typed framing/decoding failure. Every variant means the connection is
/// unusable from this point on — the caller tears it down.
#[derive(Debug, PartialEq)]
pub enum ProtoError {
    /// The peer closed the connection cleanly between frames (EOF at a
    /// frame boundary). The only non-fault way a stream ends.
    Closed,
    /// The stream ended mid-frame: a torn write or a mid-frame crash.
    Truncated {
        /// Bytes the frame header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`] (corrupt header or a
    /// non-protocol peer).
    Oversized {
        /// The declared body length.
        len: usize,
    },
    /// The version byte is neither [`WIRE_VERSION`] nor
    /// [`WIRE_VERSION_BINARY`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The payload does not decode as a [`Frame`] in the codec named by
    /// its version byte (includes the empty body: a frame has at least a
    /// version byte and one payload byte).
    Garbage(String),
    /// An underlying socket error.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed by peer"),
            ProtoError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            ProtoError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds {MAX_FRAME}")
            }
            ProtoError::BadVersion { got } => {
                write!(
                    f,
                    "bad protocol version {got} (want {WIRE_VERSION} or {WIRE_VERSION_BINARY})"
                )
            }
            ProtoError::Garbage(msg) => write!(f, "garbage frame: {msg}"),
            ProtoError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e.to_string())
    }
}

fn garbage(msg: impl Into<String>) -> ProtoError {
    ProtoError::Garbage(msg.into())
}

// ---------------------------------------------------------------------------
// Binary primitives
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Cursor over a fully-read binary frame body. All reads are
/// bounds-checked: running off the end is `Garbage`, never a panic —
/// the outer length prefix already guaranteed the body arrived intact,
/// so an interior overrun means a malformed payload, not a torn write.
struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| garbage("binary payload ends mid-field"))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| garbage("binary payload ends mid-field"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, ProtoError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                if shift == 63 && byte > 1 {
                    return Err(garbage("varint overflows u64"));
                }
                return Ok(v);
            }
        }
        Err(garbage("varint longer than 10 bytes"))
    }

    fn len(&mut self) -> Result<usize, ProtoError> {
        let v = self.varint()?;
        // A length can never exceed the bytes remaining in the body, and
        // bounding it here keeps a corrupt varint from pre-allocating.
        if v > (self.buf.len() - self.pos) as u64 {
            return Err(garbage("binary length field exceeds payload"));
        }
        Ok(v as usize)
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        let raw = self.bytes(8)?;
        Ok(f64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.len()?;
        let raw = self.bytes(n)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| garbage("binary string is not UTF-8"))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

const VAL_NULL: u8 = 0x00;
const VAL_FALSE: u8 = 0x01;
const VAL_TRUE: u8 = 0x02;
const VAL_POS_INT: u8 = 0x03;
const VAL_NEG_INT: u8 = 0x04;
const VAL_FLOAT: u8 = 0x05;
const VAL_STRING: u8 = 0x06;
const VAL_ARRAY: u8 = 0x07;
const VAL_F64_ARRAY: u8 = 0x08;
const VAL_OBJECT: u8 = 0x09;

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// `true` when every element is a float, so the array qualifies for the
/// raw-`f64` fast path (tag 0x08). Empty arrays take the generic tag.
fn all_floats(items: &[Value]) -> bool {
    !items.is_empty()
        && items
            .iter()
            .all(|v| matches!(v, Value::Number(Number::Float(_))))
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(VAL_NULL),
        Value::Bool(false) => buf.push(VAL_FALSE),
        Value::Bool(true) => buf.push(VAL_TRUE),
        Value::Number(Number::PosInt(n)) => {
            buf.push(VAL_POS_INT);
            put_varint(buf, *n);
        }
        Value::Number(Number::NegInt(n)) => {
            buf.push(VAL_NEG_INT);
            put_varint(buf, zigzag(*n));
        }
        Value::Number(Number::Float(f)) => {
            buf.push(VAL_FLOAT);
            buf.extend_from_slice(&f.to_le_bytes());
        }
        Value::String(s) => {
            buf.push(VAL_STRING);
            put_string(buf, s);
        }
        Value::Array(items) if all_floats(items) => {
            buf.push(VAL_F64_ARRAY);
            put_varint(buf, items.len() as u64);
            for item in items {
                if let Value::Number(Number::Float(f)) = item {
                    buf.extend_from_slice(&f.to_le_bytes());
                }
            }
        }
        Value::Array(items) => {
            buf.push(VAL_ARRAY);
            put_varint(buf, items.len() as u64);
            for item in items {
                put_value(buf, item);
            }
        }
        Value::Object(map) => {
            buf.push(VAL_OBJECT);
            put_varint(buf, map.len() as u64);
            for (k, val) in map {
                put_string(buf, k);
                put_value(buf, val);
            }
        }
    }
}

fn get_value(r: &mut BinReader<'_>, depth: usize) -> Result<Value, ProtoError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(garbage("binary value nests too deeply"));
    }
    match r.u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_FALSE => Ok(Value::Bool(false)),
        VAL_TRUE => Ok(Value::Bool(true)),
        VAL_POS_INT => Ok(Value::Number(Number::PosInt(r.varint()?))),
        VAL_NEG_INT => Ok(Value::Number(Number::NegInt(unzigzag(r.varint()?)))),
        VAL_FLOAT => Ok(Value::Number(Number::Float(r.f64()?))),
        VAL_STRING => Ok(Value::String(r.string()?)),
        VAL_ARRAY => {
            let n = r.len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_value(r, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        VAL_F64_ARRAY => {
            let n = r.len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(Value::Number(Number::Float(r.f64()?)));
            }
            Ok(Value::Array(items))
        }
        VAL_OBJECT => {
            let n = r.len()?;
            let mut map = serde::Map::new();
            for _ in 0..n {
                let k = r.string()?;
                map.insert(k, get_value(r, depth + 1)?);
            }
            Ok(Value::Object(map))
        }
        tag => Err(garbage(format!("unknown binary value tag {tag:#04x}"))),
    }
}

const TAG_HELLO: u8 = 0;
const TAG_HELLO_ACK: u8 = 1;
const TAG_DISPATCH: u8 = 2;
const TAG_RESULT: u8 = 3;
const TAG_CANCEL: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;

fn status_to_byte(s: JobStatus) -> u8 {
    match s {
        JobStatus::Succeeded => 0,
        JobStatus::Crashed => 1,
        JobStatus::Errored => 2,
        JobStatus::TimedOut => 3,
        JobStatus::Orphaned => 4,
        JobStatus::Corrupt => 5,
    }
}

fn status_from_byte(b: u8) -> Result<JobStatus, ProtoError> {
    Ok(match b {
        0 => JobStatus::Succeeded,
        1 => JobStatus::Crashed,
        2 => JobStatus::Errored,
        3 => JobStatus::TimedOut,
        4 => JobStatus::Orphaned,
        5 => JobStatus::Corrupt,
        _ => return Err(garbage(format!("unknown job status byte {b}"))),
    })
}

fn put_binary_payload(buf: &mut Vec<u8>, frame: &Frame) {
    match frame {
        Frame::Hello { payload } => {
            buf.push(TAG_HELLO);
            put_value(buf, payload);
        }
        Frame::HelloAck {
            slots,
            error,
            epoch,
        } => {
            buf.push(TAG_HELLO_ACK);
            put_varint(buf, *slots as u64);
            match error {
                None => buf.push(0),
                Some(reason) => {
                    buf.push(1);
                    put_string(buf, reason);
                }
            }
            match epoch {
                None => buf.push(0),
                Some(e) => {
                    buf.push(1);
                    put_varint(buf, *e);
                }
            }
        }
        Frame::Dispatch { job_id, payload } => {
            buf.push(TAG_DISPATCH);
            put_varint(buf, *job_id);
            put_value(buf, payload);
        }
        Frame::Result {
            job_id,
            status,
            output,
        } => {
            buf.push(TAG_RESULT);
            put_varint(buf, *job_id);
            buf.push(status_to_byte(*status));
            put_value(buf, output);
        }
        Frame::Cancel { job_id } => {
            buf.push(TAG_CANCEL);
            put_varint(buf, *job_id);
        }
        Frame::Heartbeat { seq } => {
            buf.push(TAG_HEARTBEAT);
            put_varint(buf, *seq);
        }
        Frame::Shutdown => buf.push(TAG_SHUTDOWN),
    }
}

fn decode_binary_payload(payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = BinReader::new(payload);
    let frame = match r.u8()? {
        TAG_HELLO => Frame::Hello {
            payload: get_value(&mut r, 0)?,
        },
        TAG_HELLO_ACK => {
            let slots = r.varint()? as usize;
            let error = match r.u8()? {
                0 => None,
                1 => Some(r.string()?),
                b => return Err(garbage(format!("bad option byte {b}"))),
            };
            // Optional tail (see the module docs): a peer predating
            // session epochs ends the payload here.
            let epoch = if r.done() {
                None
            } else {
                match r.u8()? {
                    0 => None,
                    1 => Some(r.varint()?),
                    b => return Err(garbage(format!("bad option byte {b}"))),
                }
            };
            Frame::HelloAck {
                slots,
                error,
                epoch,
            }
        }
        TAG_DISPATCH => Frame::Dispatch {
            job_id: r.varint()?,
            payload: get_value(&mut r, 0)?,
        },
        TAG_RESULT => Frame::Result {
            job_id: r.varint()?,
            status: status_from_byte(r.u8()?)?,
            output: get_value(&mut r, 0)?,
        },
        TAG_CANCEL => Frame::Cancel {
            job_id: r.varint()?,
        },
        TAG_HEARTBEAT => Frame::Heartbeat { seq: r.varint()? },
        TAG_SHUTDOWN => Frame::Shutdown,
        tag => return Err(garbage(format!("unknown binary frame tag {tag}"))),
    };
    if !r.done() {
        return Err(garbage("trailing bytes after binary frame"));
    }
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Encoder / decoder with reusable scratch buffers
// ---------------------------------------------------------------------------

/// Encodes frames into a reused scratch buffer, so steady-state framing
/// is allocation-free in either codec. One encoder per connection write
/// half: encoding into one buffer keeps concurrent writers (the worker's
/// result and heartbeat threads) atomic per frame — each frame is one
/// syscall-sized `write_all` under the writer lock.
#[derive(Debug)]
pub struct FrameEncoder {
    codec: Codec,
    buf: Vec<u8>,
}

impl FrameEncoder {
    /// A new encoder writing frames in `codec`.
    pub fn new(codec: Codec) -> Self {
        FrameEncoder {
            codec,
            buf: Vec::with_capacity(256),
        }
    }

    /// The codec this encoder currently writes.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Switches the write codec (used once, after handshake negotiation).
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// Encodes `frame` into the scratch buffer and returns the full wire
    /// bytes (length prefix included), valid until the next call.
    pub fn encode(&mut self, frame: &Frame) -> &[u8] {
        self.buf.clear();
        self.buf.extend_from_slice(&[0u8; 4]);
        match self.codec {
            Codec::Json => {
                self.buf.push(WIRE_VERSION);
                serde_json::to_writer(&mut self.buf, frame)
                    .expect("frame serialization is infallible");
            }
            Codec::Binary => {
                self.buf.push(WIRE_VERSION_BINARY);
                put_binary_payload(&mut self.buf, frame);
            }
        }
        let body_len = self.buf.len() - 4;
        assert!(body_len <= MAX_FRAME, "frame exceeds MAX_FRAME");
        self.buf[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
        &self.buf
    }

    /// Encodes `frame` and writes it to `w` as a single `write_all`.
    pub fn write_to<W: Write>(&mut self, w: &mut W, frame: &Frame) -> Result<(), ProtoError> {
        self.encode(frame);
        w.write_all(&self.buf)?;
        Ok(())
    }
}

/// Decodes frames from a stream into a reused body buffer. Accepts both
/// codecs on every frame and remembers which one the last frame used, so
/// the handshake can detect what the peer speaks.
#[derive(Debug)]
pub struct FrameDecoder {
    body: Vec<u8>,
    last_codec: Codec,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A new decoder; `last_codec` starts as [`Codec::Json`].
    pub fn new() -> Self {
        FrameDecoder {
            body: Vec::with_capacity(256),
            last_codec: Codec::Json,
        }
    }

    /// The codec of the most recently decoded frame.
    pub fn last_codec(&self) -> Codec {
        self.last_codec
    }

    /// Reads one frame from `r`. Returns [`ProtoError::Closed`] on a
    /// clean EOF at a frame boundary; every other failure names what
    /// went wrong.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> Result<Frame, ProtoError> {
        let mut header = [0u8; 4];
        if !read_exact_or_eof(r, &mut header)? {
            return Err(ProtoError::Closed);
        }
        let body_len = u32::from_be_bytes(header) as usize;
        if body_len == 0 {
            return Err(garbage("zero-length frame body"));
        }
        if body_len > MAX_FRAME {
            return Err(ProtoError::Oversized { len: body_len });
        }
        self.body.clear();
        self.body.resize(body_len, 0);
        match read_exact_or_eof(r, &mut self.body)? {
            true => {}
            false => {
                return Err(ProtoError::Truncated {
                    expected: body_len,
                    got: 0,
                })
            }
        }
        match self.body[0] {
            WIRE_VERSION => {
                self.last_codec = Codec::Json;
                let payload = std::str::from_utf8(&self.body[1..])
                    .map_err(|_| garbage("payload is not UTF-8"))?;
                serde_json::from_str::<Frame>(payload).map_err(|e| garbage(e.to_string()))
            }
            WIRE_VERSION_BINARY => {
                self.last_codec = Codec::Binary;
                decode_binary_payload(&self.body[1..])
            }
            got => Err(ProtoError::BadVersion { got }),
        }
    }
}

/// Encodes one frame into its full wire representation (length prefix
/// included), ready for a single `write_all`. Allocates a fresh buffer;
/// steady-state paths hold a [`FrameEncoder`] instead.
pub fn encode_frame_as(frame: &Frame, codec: Codec) -> Vec<u8> {
    let mut enc = FrameEncoder::new(codec);
    enc.encode(frame);
    enc.buf
}

/// JSON-codec [`encode_frame_as`], kept for handshake paths and tests.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_as(frame, Codec::Json)
}

/// Writes one JSON-codec frame to `w` (single `write_all`).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtoError> {
    w.write_all(&encode_frame(frame))?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF before
/// the first byte (`Ok(false)`) from a mid-buffer EOF (`Truncated`).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ProtoError::Truncated {
                    expected: buf.len(),
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Reads one frame from `r` in either codec. Returns
/// [`ProtoError::Closed`] on a clean EOF at a frame boundary; every
/// other failure names what went wrong. Steady-state paths hold a
/// [`FrameDecoder`] to reuse the body buffer.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
    FrameDecoder::new().read_from(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use serde_json::json;
    use std::io::Cursor;

    fn all_variants() -> Vec<Frame> {
        vec![
            Frame::Hello {
                payload: json!({"bench": "counting-ones", "seed": 7, "sleep_ms": 0}),
            },
            Frame::HelloAck {
                slots: 1,
                error: None,
                epoch: None,
            },
            Frame::HelloAck {
                slots: 0,
                error: Some("unknown benchmark `nope`".to_string()),
                epoch: None,
            },
            Frame::HelloAck {
                slots: 4,
                error: None,
                epoch: Some(3),
            },
            Frame::Dispatch {
                job_id: 42,
                payload: json!({"config": vec![1, 0, 1], "resource": 9.0}),
            },
            Frame::Result {
                job_id: 42,
                status: JobStatus::Succeeded,
                output: json!({"value": 0.25, "test_value": 0.3, "cost": 1.5}),
            },
            Frame::Result {
                job_id: 43,
                status: JobStatus::Errored,
                output: Value::Null,
            },
            Frame::Cancel { job_id: 42 },
            Frame::Heartbeat { seq: 9001 },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for codec in [Codec::Json, Codec::Binary] {
            for frame in all_variants() {
                let buf = encode_frame_as(&frame, codec);
                let mut cur = Cursor::new(buf);
                let back = read_frame(&mut cur).unwrap();
                assert_eq!(back, frame, "{codec} codec");
            }
        }
    }

    #[test]
    fn frames_round_trip_back_to_back_on_one_stream() {
        // Alternate codecs on one stream: the decoder dispatches on the
        // per-frame version byte, so a mixed stream is legal.
        let mut buf = Vec::new();
        let mut enc_json = FrameEncoder::new(Codec::Json);
        let mut enc_bin = FrameEncoder::new(Codec::Binary);
        for (i, frame) in all_variants().iter().enumerate() {
            let enc = if i % 2 == 0 {
                &mut enc_json
            } else {
                &mut enc_bin
            };
            enc.write_to(&mut buf, frame).unwrap();
        }
        let mut cur = Cursor::new(buf);
        let mut dec = FrameDecoder::new();
        for (i, frame) in all_variants().iter().enumerate() {
            assert_eq!(&dec.read_from(&mut cur).unwrap(), frame);
            let want = if i % 2 == 0 {
                Codec::Json
            } else {
                Codec::Binary
            };
            assert_eq!(dec.last_codec(), want);
        }
        assert_eq!(dec.read_from(&mut cur).unwrap_err(), ProtoError::Closed);
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut cur).unwrap_err(), ProtoError::Closed);
    }

    #[test]
    fn torn_write_is_truncated() {
        // Mirror of the WAL torn-tail tests: cut the encoded frame at
        // every possible byte boundary, in both codecs, for every frame
        // type, and demand a typed error — never a bogus frame or a
        // panic.
        for codec in [Codec::Json, Codec::Binary] {
            for frame in all_variants() {
                let full = encode_frame_as(&frame, codec);
                for cut in 1..full.len() {
                    let mut cur = Cursor::new(full[..cut].to_vec());
                    let err = read_frame(&mut cur).unwrap_err();
                    assert!(
                        matches!(err, ProtoError::Truncated { .. }),
                        "{codec} {frame:?} cut at {cut}: got {err:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::Oversized {
                len: u32::MAX as usize
            }
        );
    }

    #[test]
    fn zero_length_body_is_garbage() {
        let mut cur = Cursor::new(0u32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::Garbage(_)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = encode_frame(&Frame::Shutdown);
        buf[4] = WIRE_VERSION_BINARY + 1;
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::BadVersion {
                got: WIRE_VERSION_BINARY + 1
            }
        );
    }

    #[test]
    fn garbage_payload_is_rejected() {
        for payload in ["not json at all", "{}", "{\"NoSuchFrame\": 1}", "[1,2]"] {
            let body_len = 1 + payload.len();
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body_len as u32).to_be_bytes());
            buf.push(WIRE_VERSION);
            buf.extend_from_slice(payload.as_bytes());
            let mut cur = Cursor::new(buf);
            assert!(
                matches!(read_frame(&mut cur).unwrap_err(), ProtoError::Garbage(_)),
                "payload {payload:?} should be garbage"
            );
        }
    }

    #[test]
    fn non_utf8_payload_is_garbage() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.push(WIRE_VERSION);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::Garbage(_)
        ));
    }

    #[test]
    fn binary_garbage_is_rejected_not_panicked() {
        // Corrupt the binary body at every byte position with every
        // bit flipped once; the decoder must return a typed error or a
        // (different) well-formed frame, never panic or loop.
        let nested = Value::Array(vec![
            Value::Number(Number::PosInt(1)),
            Value::Number(Number::NegInt(-2)),
            Value::Number(Number::Float(3.5)),
            Value::String("s".to_string()),
            Value::Null,
            Value::Bool(true),
            json!({"k": vec![0.25, 0.5]}),
        ]);
        let mut obj = serde::Map::new();
        obj.insert("nested".to_string(), nested);
        let frame = Frame::Result {
            job_id: u64::MAX,
            status: JobStatus::Corrupt,
            output: Value::Object(obj),
        };
        let full = encode_frame_as(&frame, Codec::Binary);
        for pos in 4..full.len() {
            for bit in 0..8 {
                let mut buf = full.clone();
                buf[pos] ^= 1 << bit;
                let mut cur = Cursor::new(buf);
                let _ = read_frame(&mut cur);
            }
        }
        // Truncating the *body* (with a matching length prefix) is
        // interior garbage, not a torn write.
        for cut in 5..full.len() {
            let mut buf = full[..cut].to_vec();
            let body_len = (cut - 4) as u32;
            buf[..4].copy_from_slice(&body_len.to_be_bytes());
            let mut cur = Cursor::new(buf);
            assert!(
                matches!(read_frame(&mut cur).unwrap_err(), ProtoError::Garbage(_)),
                "interior cut at {cut}"
            );
        }
    }

    #[test]
    fn binary_trailing_bytes_are_garbage() {
        let mut buf = encode_frame_as(&Frame::Heartbeat { seq: 7 }, Codec::Binary);
        buf.push(0);
        let body_len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&body_len.to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::Garbage(_)
        ));
    }

    #[test]
    fn f64_arrays_take_the_raw_fast_path_and_round_trip_bitwise() {
        let floats: Vec<f64> = vec![0.1, -1.5e308, 5e-324, 0.0, -0.0, 1.0 / 3.0];
        let frame = Frame::Dispatch {
            job_id: 1,
            payload: json!({"config": floats.clone()}),
        };
        let buf = encode_frame_as(&frame, Codec::Binary);
        // The fast path ships 8 bytes per element with no per-element
        // tag: length prefix (4) + version + frame tag + job_id varint
        // + object tag + entry count + "config" key (1 + 6) + array tag
        // + element count + 8 bytes per float, exactly.
        let expected = 4 + 1 + 1 + 1 + 1 + 1 + (1 + 6) + 1 + 1 + 8 * floats.len();
        assert_eq!(buf.len(), expected);
        let mut cur = Cursor::new(buf);
        let back = read_frame(&mut cur).unwrap();
        match &back {
            Frame::Dispatch { payload, .. } => {
                let arr = payload["config"].as_array().unwrap();
                for (got, want) in arr.iter().zip(&floats) {
                    assert_eq!(got.as_f64().unwrap().to_bits(), want.to_bits());
                }
            }
            other => panic!("wrong frame {other:?}"),
        }
        assert_eq!(back, frame);
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let frame = Frame::Heartbeat { seq: v };
            let buf = encode_frame_as(&frame, Codec::Binary);
            let mut cur = Cursor::new(buf);
            assert_eq!(read_frame(&mut cur).unwrap(), frame);
        }
    }

    #[test]
    fn encoder_scratch_buffer_is_reused() {
        let mut enc = FrameEncoder::new(Codec::Binary);
        let big = Frame::Dispatch {
            job_id: 1,
            payload: json!({"config": vec![0.5f64; 64]}),
        };
        enc.encode(&big);
        let cap = enc.buf.capacity();
        for seq in 0..1000 {
            enc.encode(&Frame::Heartbeat { seq });
        }
        assert_eq!(enc.buf.capacity(), cap, "scratch buffer was reallocated");
    }

    /// A finite, non-integral float: odd mantissa times a negative power
    /// of two is never a whole number, so the JSON text keeps a fraction
    /// and parses back as a float. (JSON renders integral floats as bare
    /// integers and non-finite floats as null — both are documented
    /// JSON-side collapses the binary codec does not share, so the
    /// equivalence property is stated over the common domain.)
    fn arb_float(rng: &mut StdRng) -> f64 {
        let mantissa: i64 = rng.gen_range(-(1i64 << 52)..(1i64 << 52)) | 1;
        let exp: i32 = rng.gen_range(-60..0);
        mantissa as f64 * 2f64.powi(exp)
    }

    /// Builds an arbitrary `Value` tree from an RNG.
    fn arb_value(rng: &mut StdRng, depth: usize) -> Value {
        let pick = if depth >= 3 {
            rng.gen_range(0..6)
        } else {
            rng.gen_range(0..8)
        };
        match pick {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_range(0..2) == 1),
            2 => Value::Number(Number::PosInt(rng.gen::<u64>())),
            3 => Value::Number(Number::NegInt(-(rng.gen_range(1..i64::MAX)))),
            4 => Value::Number(Number::Float(arb_float(rng))),
            5 => {
                let n = rng.gen_range(0..12);
                Value::String((0..n).map(|_| rng.gen_range(b' '..b'~') as char).collect())
            }
            6 => {
                let n = rng.gen_range(0..5);
                // Half the arrays are all-float, to exercise tag 0x08.
                if rng.gen_range(0..2) == 0 {
                    Value::Array(
                        (0..n)
                            .map(|_| Value::Number(Number::Float(arb_float(rng))))
                            .collect(),
                    )
                } else {
                    Value::Array((0..n).map(|_| arb_value(rng, depth + 1)).collect())
                }
            }
            _ => {
                let n = rng.gen_range(0..5);
                let mut map = serde::Map::new();
                for i in 0..n {
                    map.insert(format!("k{i}"), arb_value(rng, depth + 1));
                }
                Value::Object(map)
            }
        }
    }

    fn arb_frame(rng: &mut StdRng) -> Frame {
        match rng.gen_range(0..7) {
            0 => Frame::Hello {
                payload: arb_value(rng, 0),
            },
            1 => Frame::HelloAck {
                slots: rng.gen_range(0..64),
                error: if rng.gen_range(0..2) == 0 {
                    None
                } else {
                    Some("reason".to_string())
                },
                epoch: if rng.gen_range(0..2) == 0 {
                    None
                } else {
                    Some(rng.gen::<u64>())
                },
            },
            2 => Frame::Dispatch {
                job_id: rng.gen::<u64>(),
                payload: arb_value(rng, 0),
            },
            3 => Frame::Result {
                job_id: rng.gen::<u64>(),
                status: status_from_byte(rng.gen_range(0..6)).unwrap(),
                output: arb_value(rng, 0),
            },
            4 => Frame::Cancel {
                job_id: rng.gen::<u64>(),
            },
            5 => Frame::Heartbeat {
                seq: rng.gen::<u64>(),
            },
            _ => Frame::Shutdown,
        }
    }

    proptest::proptest! {
        /// JSON↔binary equivalence: any frame decodes to the same value
        /// through either codec, and a JSON-encoded frame re-encoded in
        /// binary (and vice versa) survives unchanged. This is the
        /// contract that lets a mixed-version fleet interoperate.
        #[test]
        fn json_and_binary_codecs_are_equivalent(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..8 {
                let frame = arb_frame(&mut rng);
                let via_json = read_frame(&mut Cursor::new(encode_frame_as(&frame, Codec::Json)))
                    .expect("json decode");
                let via_bin = read_frame(&mut Cursor::new(encode_frame_as(&frame, Codec::Binary)))
                    .expect("binary decode");
                proptest::prop_assert_eq!(&via_json, &frame);
                proptest::prop_assert_eq!(&via_bin, &frame);
                // Cross-transcode: decode from one codec, re-encode in
                // the other, decode again.
                let cross = read_frame(&mut Cursor::new(encode_frame_as(&via_json, Codec::Binary)))
                    .expect("cross decode");
                proptest::prop_assert_eq!(&cross, &frame);
            }
        }
    }

    #[test]
    fn helloack_without_epoch_tail_decodes_as_none() {
        // A binary HelloAck from a peer predating session epochs ends
        // right after opt_str(error); the decoder must accept it.
        let mut body = vec![WIRE_VERSION_BINARY, TAG_HELLO_ACK];
        put_varint(&mut body, 2); // slots
        body.push(0); // error: None
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        let frame = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(
            frame,
            Frame::HelloAck {
                slots: 2,
                error: None,
                epoch: None,
            }
        );
        // Same story in JSON: a missing "epoch" key is None.
        let payload = r#"{"HelloAck": {"slots": 2, "error": null}}"#;
        let mut buf = ((payload.len() + 1) as u32).to_be_bytes().to_vec();
        buf.push(WIRE_VERSION);
        buf.extend_from_slice(payload.as_bytes());
        let frame = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(
            frame,
            Frame::HelloAck {
                slots: 2,
                error: None,
                epoch: None,
            }
        );
    }

    proptest::proptest! {
        /// Decoder hostility: a stream of pure random bytes must produce
        /// typed [`ProtoError`]s (or, vanishingly rarely, a well-formed
        /// frame) — never a panic, hang, or huge allocation.
        #[test]
        fn random_bytes_never_panic_the_decoder(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..256usize);
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=255u64) as u8).collect();
            let mut cur = Cursor::new(bytes);
            let mut dec = FrameDecoder::new();
            // Drain the stream: each read either yields a frame or a
            // typed error; stop at the first error (connections are
            // torn down there, never resynchronized).
            loop {
                match dec.read_from(&mut cur) {
                    Ok(_) => continue,
                    Err(ProtoError::Closed) => break,
                    Err(
                        ProtoError::Truncated { .. }
                        | ProtoError::Oversized { .. }
                        | ProtoError::BadVersion { .. }
                        | ProtoError::Garbage(_)
                        | ProtoError::Io(_),
                    ) => break,
                }
            }
        }

        /// Same hostility aimed past the framing layer: random payload
        /// bytes wrapped in a *valid* length prefix and version byte, so
        /// the JSON and binary payload decoders themselves absorb the
        /// garbage.
        #[test]
        fn random_payloads_fail_typed_in_both_codecs(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            for version in [WIRE_VERSION, WIRE_VERSION_BINARY] {
                let n = rng.gen_range(1..128usize);
                let mut body = vec![version];
                for _ in 0..n {
                    body.push(rng.gen_range(0..=255u64) as u8);
                }
                let mut buf = (body.len() as u32).to_be_bytes().to_vec();
                buf.extend_from_slice(&body);
                let mut cur = Cursor::new(buf);
                match read_frame(&mut cur) {
                    // Random bytes occasionally spell a real frame
                    // (e.g. a binary Heartbeat is 2 meaningful bytes);
                    // that is fine — the property is "no panic, typed
                    // error otherwise".
                    Ok(_) => {}
                    Err(ProtoError::Garbage(_)) => {}
                    Err(other) => {
                        proptest::prop_assert!(
                            false,
                            "version {} payload should fail as Garbage, got {:?}",
                            version,
                            other
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn errors_display_and_convert() {
        let e: ProtoError = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe").into();
        assert!(e.to_string().contains("socket error"));
        assert!(ProtoError::Closed.to_string().contains("closed"));
        assert!(ProtoError::BadVersion { got: 9 }.to_string().contains('9'));
        let src: &dyn std::error::Error = &ProtoError::Oversized { len: 1 };
        assert!(src.to_string().contains("oversized"));
        assert_eq!(Codec::Json.to_string(), "json");
        assert_eq!(Codec::Binary.to_string(), "binary");
    }
}
