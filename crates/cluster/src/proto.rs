//! The distributed substrate's wire protocol: framed serde-JSON over TCP.
//!
//! This module is the *normative implementation* of DESIGN.md §16 — the
//! frame grammar here and the prose spec there must stay in lockstep.
//!
//! # Frame grammar
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! frame   := length body
//! length  := u32, big-endian — byte length of `body` (≥ 1, ≤ MAX_FRAME)
//! body    := version payload
//! version := u8 — WIRE_VERSION (currently 1)
//! payload := UTF-8 JSON encoding of one `Frame` value
//!            (externally tagged: {"Dispatch": {...}}, "Shutdown", …)
//! ```
//!
//! The length prefix covers the version byte, so `payload` is exactly
//! `length - 1` bytes. A reader that sees a bad length, a bad version, or
//! unparseable JSON reports a typed [`ProtoError`] and the connection is
//! torn down — frames are never resynchronized mid-stream, mirroring how
//! the WAL refuses interior-tampered records rather than guessing.
//!
//! # Message set
//!
//! | Frame | Direction | Purpose |
//! |---|---|---|
//! | [`Frame::Hello`] | driver → worker | opens a session; carries an application payload (benchmark name, seed, …) the worker uses to build its evaluator |
//! | [`Frame::HelloAck`] | worker → driver | accepts (slot count) or rejects (error string) the session |
//! | [`Frame::Dispatch`] | driver → worker | one job: driver-assigned id plus an opaque serialized payload |
//! | [`Frame::Result`] | worker → driver | terminal outcome of a dispatched job |
//! | [`Frame::Cancel`] | driver → worker | the driver gave up on a job (lease expiry); the eventual `Result`, if any, will be dropped as stale |
//! | [`Frame::Heartbeat`] | worker → driver | liveness beacon, sent every heartbeat interval — including *while evaluating* |
//! | [`Frame::Shutdown`] | driver → worker | end of session; the worker closes the connection |
//!
//! Payloads ride as [`serde::Value`] trees so the protocol stays
//! non-generic: the driver serializes the job type it owns, the worker
//! deserializes into whatever its evaluator accepts, and a version-1
//! frame never needs to know either concrete type.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

use crate::sim::JobStatus;

/// Protocol version carried in every frame's first body byte. Bump on
/// any incompatible change to the frame grammar or message set.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame body (version byte + JSON payload). Large
/// enough for any config/eval in this workspace with orders of magnitude
/// to spare; small enough that a corrupt length prefix cannot make the
/// reader allocate gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// One protocol message. See the module docs for the frame grammar and
/// the direction/purpose of each variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Session open (driver → worker). `payload` is application data the
    /// worker's session factory interprets (e.g. benchmark name + seed).
    Hello {
        /// Application handshake data, opaque to the protocol layer.
        payload: Value,
    },
    /// Session accept/reject (worker → driver). `slots` is how many jobs
    /// the worker runs concurrently (currently always 1); a `Some` in
    /// `error` rejects the session and the driver must not dispatch.
    HelloAck {
        /// Concurrent job capacity this worker offers.
        slots: usize,
        /// `Some(reason)` when the worker rejects the handshake.
        error: Option<String>,
    },
    /// One unit of work (driver → worker).
    Dispatch {
        /// Driver-assigned id; echoed verbatim in the matching `Result`.
        job_id: u64,
        /// Serialized job, opaque to the protocol layer.
        payload: Value,
    },
    /// Terminal outcome of a dispatched job (worker → driver).
    Result {
        /// The id from the matching `Dispatch`.
        job_id: u64,
        /// How the evaluation ended.
        status: JobStatus,
        /// Serialized output; `Value::Null` when the job produced none.
        output: Value,
    },
    /// The driver abandoned a job (worker → results for it are stale).
    Cancel {
        /// The id of the abandoned job.
        job_id: u64,
    },
    /// Liveness beacon (worker → driver), sent on a timer independent of
    /// the evaluation loop so long-running jobs don't look like deaths.
    Heartbeat {
        /// Monotone per-connection sequence number.
        seq: u64,
    },
    /// End of session (driver → worker); the worker replies by closing
    /// the connection (and exiting, under `--once`).
    Shutdown,
}

/// Typed framing/decoding failure. Every variant means the connection is
/// unusable from this point on — the caller tears it down.
#[derive(Debug, PartialEq)]
pub enum ProtoError {
    /// The peer closed the connection cleanly between frames (EOF at a
    /// frame boundary). The only non-fault way a stream ends.
    Closed,
    /// The stream ended mid-frame: a torn write or a mid-frame crash.
    Truncated {
        /// Bytes the frame header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`] (corrupt header or a
    /// non-protocol peer).
    Oversized {
        /// The declared body length.
        len: usize,
    },
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The payload is not valid JSON, or is JSON that does not decode as
    /// a [`Frame`] (includes the empty body: a frame has at least a
    /// version byte and two payload bytes).
    Garbage(String),
    /// An underlying socket error.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed by peer"),
            ProtoError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            ProtoError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds {MAX_FRAME}")
            }
            ProtoError::BadVersion { got } => {
                write!(f, "bad protocol version {got} (want {WIRE_VERSION})")
            }
            ProtoError::Garbage(msg) => write!(f, "garbage frame: {msg}"),
            ProtoError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e.to_string())
    }
}

/// Encodes one frame into its full wire representation (length prefix
/// included), ready for a single `write_all`. Encoding into one buffer
/// keeps concurrent writers (the worker's result and heartbeat threads)
/// atomic per frame: each frame is one syscall-sized write under a lock.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let json = serde_json::to_string(frame).expect("frame serialization is infallible");
    let body_len = 1 + json.len();
    assert!(body_len <= MAX_FRAME, "frame exceeds MAX_FRAME");
    let mut buf = Vec::with_capacity(4 + body_len);
    buf.extend_from_slice(&(body_len as u32).to_be_bytes());
    buf.push(WIRE_VERSION);
    buf.extend_from_slice(json.as_bytes());
    buf
}

/// Writes one frame to `w` (single `write_all` of the encoded buffer).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtoError> {
    w.write_all(&encode_frame(frame))?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF before
/// the first byte (`Ok(false)`) from a mid-buffer EOF (`Truncated`).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ProtoError::Truncated {
                    expected: buf.len(),
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Reads one frame from `r`. Returns [`ProtoError::Closed`] on a clean
/// EOF at a frame boundary; every other failure names what went wrong.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
    let mut header = [0u8; 4];
    if !read_exact_or_eof(r, &mut header)? {
        return Err(ProtoError::Closed);
    }
    let body_len = u32::from_be_bytes(header) as usize;
    if body_len == 0 {
        return Err(ProtoError::Garbage("zero-length frame body".to_string()));
    }
    if body_len > MAX_FRAME {
        return Err(ProtoError::Oversized { len: body_len });
    }
    let mut body = vec![0u8; body_len];
    match read_exact_or_eof(r, &mut body)? {
        true => {}
        false => {
            return Err(ProtoError::Truncated {
                expected: body_len,
                got: 0,
            })
        }
    }
    if body[0] != WIRE_VERSION {
        return Err(ProtoError::BadVersion { got: body[0] });
    }
    let payload = std::str::from_utf8(&body[1..])
        .map_err(|_| ProtoError::Garbage("payload is not UTF-8".to_string()))?;
    serde_json::from_str::<Frame>(payload).map_err(|e| ProtoError::Garbage(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::io::Cursor;

    fn all_variants() -> Vec<Frame> {
        vec![
            Frame::Hello {
                payload: json!({"bench": "counting-ones", "seed": 7, "sleep_ms": 0}),
            },
            Frame::HelloAck {
                slots: 1,
                error: None,
            },
            Frame::HelloAck {
                slots: 0,
                error: Some("unknown benchmark `nope`".to_string()),
            },
            Frame::Dispatch {
                job_id: 42,
                payload: json!({"config": vec![1, 0, 1], "resource": 9.0}),
            },
            Frame::Result {
                job_id: 42,
                status: JobStatus::Succeeded,
                output: json!({"value": 0.25, "test_value": 0.3, "cost": 1.5}),
            },
            Frame::Result {
                job_id: 43,
                status: JobStatus::Errored,
                output: Value::Null,
            },
            Frame::Cancel { job_id: 42 },
            Frame::Heartbeat { seq: 9001 },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for frame in all_variants() {
            let buf = encode_frame(&frame);
            let mut cur = Cursor::new(buf);
            let back = read_frame(&mut cur).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn frames_round_trip_back_to_back_on_one_stream() {
        let mut buf = Vec::new();
        for frame in all_variants() {
            write_frame(&mut buf, &frame).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for frame in all_variants() {
            assert_eq!(read_frame(&mut cur).unwrap(), frame);
        }
        assert_eq!(read_frame(&mut cur).unwrap_err(), ProtoError::Closed);
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut cur).unwrap_err(), ProtoError::Closed);
    }

    #[test]
    fn torn_write_is_truncated() {
        // Mirror of the WAL torn-tail tests: cut the encoded frame at
        // every possible byte boundary and demand a typed error, never a
        // bogus frame or a panic.
        let full = encode_frame(&Frame::Dispatch {
            job_id: 7,
            payload: json!({"x": 1.5}),
        });
        for cut in 1..full.len() {
            let mut cur = Cursor::new(full[..cut].to_vec());
            let err = read_frame(&mut cur).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated { .. }),
                "cut at {cut}: got {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::Oversized {
                len: u32::MAX as usize
            }
        );
    }

    #[test]
    fn zero_length_body_is_garbage() {
        let mut cur = Cursor::new(0u32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::Garbage(_)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = encode_frame(&Frame::Shutdown);
        buf[4] = WIRE_VERSION + 1;
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::BadVersion {
                got: WIRE_VERSION + 1
            }
        );
    }

    #[test]
    fn garbage_payload_is_rejected() {
        for payload in ["not json at all", "{}", "{\"NoSuchFrame\": 1}", "[1,2]"] {
            let body_len = 1 + payload.len();
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body_len as u32).to_be_bytes());
            buf.push(WIRE_VERSION);
            buf.extend_from_slice(payload.as_bytes());
            let mut cur = Cursor::new(buf);
            assert!(
                matches!(read_frame(&mut cur).unwrap_err(), ProtoError::Garbage(_)),
                "payload {payload:?} should be garbage"
            );
        }
    }

    #[test]
    fn non_utf8_payload_is_garbage() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.push(WIRE_VERSION);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur).unwrap_err(),
            ProtoError::Garbage(_)
        ));
    }

    #[test]
    fn errors_display_and_convert() {
        let e: ProtoError = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe").into();
        assert!(e.to_string().contains("socket error"));
        assert!(ProtoError::Closed.to_string().contains("closed"));
        assert!(ProtoError::BadVersion { got: 9 }.to_string().contains('9'));
        let src: &dyn std::error::Error = &ProtoError::Oversized { len: 1 };
        assert!(src.to_string().contains("oversized"));
    }
}
