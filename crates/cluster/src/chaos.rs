//! A deterministic TCP fault proxy for partition drills.
//!
//! Sits between a [`TcpCluster`](crate::TcpCluster) driver and one
//! worker, forwarding bytes both ways and injecting *scheduled* network
//! faults: latency spikes, bandwidth throttling, blackhole (partition)
//! windows, connection resets, and half-open stalls. The schedule is a
//! serde [`ChaosPlan`] — wall-clock windows relative to proxy launch —
//! so a drill replays the same fault sequence every run, the same way
//! [`FaultModel`](crate::FaultModel) makes *job* failures a
//! deterministic function of the seed.
//!
//! The proxy is deliberately dumb about the wire protocol: it never
//! parses frames, it only moves (or refuses to move) bytes. That keeps
//! it honest — everything the driver and worker survive, they survive
//! at the socket level, exactly as they would behind a misbehaving
//! network.
//!
//! # Fault semantics
//!
//! - [`ChaosFault::Latency`] — every forwarded chunk waits `ms` first.
//! - [`ChaosFault::Throttle`] — chunks are paced to `bytes_per_sec`.
//! - [`ChaosFault::Blackhole`] — a full partition: nothing moves in
//!   either direction until the window closes, *including* close
//!   propagation (a peer hanging up mid-partition is invisible to the
//!   other side until the network heals, just like real packet loss).
//!   New connections are accepted and immediately dropped, so a
//!   redialing driver fails fast and keeps retrying past the window.
//! - [`ChaosFault::Reset`] — established connections are torn down the
//!   next time a chunk crosses them (connection reset by peer).
//! - [`ChaosFault::HalfOpen`] — the worker→driver direction stalls
//!   while driver→worker keeps flowing: the driver's writes succeed
//!   into the void, and only its heartbeat lease can notice.
//!
//! At each window's start the proxy bumps a `chaos.<kind>` counter and
//! emits a [`ChaosInjected`](hypertune_telemetry::Event::ChaosInjected)
//! event, so `trace-report` can show the drill schedule next to the
//! reconnects it caused.
//!
//! # Quickstart
//!
//! ```no_run
//! use hypertune_cluster::chaos::{ChaosFault, ChaosPlan, ChaosProxy, ScheduledFault};
//! use hypertune_telemetry::TelemetryHandle;
//!
//! // 2s partition starting 1s in.
//! let plan = ChaosPlan {
//!     faults: vec![ScheduledFault {
//!         at_ms: 1000,
//!         for_ms: 2000,
//!         fault: ChaosFault::Blackhole,
//!     }],
//! };
//! let proxy = ChaosProxy::launch("127.0.0.1:7070", plan, TelemetryHandle::disabled()).unwrap();
//! // Point the driver at proxy.addr() instead of the worker.
//! println!("dial {} to reach 127.0.0.1:7070 through the chaos", proxy.addr());
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hypertune_telemetry::{Event, TelemetryHandle};

/// One network fault kind the proxy can inject.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ChaosFault {
    /// Every forwarded chunk is delayed by `ms` milliseconds.
    Latency {
        /// Added one-way delay per chunk, in milliseconds.
        ms: u64,
    },
    /// Forwarding is paced to at most `bytes_per_sec`.
    Throttle {
        /// Bandwidth cap, in bytes per second.
        bytes_per_sec: u64,
    },
    /// Full partition: nothing crosses in either direction, close
    /// propagation included; new connections are dropped on accept.
    Blackhole,
    /// Established connections are reset at the next chunk.
    Reset,
    /// The worker→driver direction stalls; driver→worker still flows.
    HalfOpen,
}

impl ChaosFault {
    /// Counter/event tag for this fault kind.
    pub fn tag(&self) -> &'static str {
        match self {
            ChaosFault::Latency { .. } => "latency",
            ChaosFault::Throttle { .. } => "throttle",
            ChaosFault::Blackhole => "blackhole",
            ChaosFault::Reset => "reset",
            ChaosFault::HalfOpen => "half_open",
        }
    }
}

/// One fault window on the drill timeline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScheduledFault {
    /// Window start, in milliseconds after [`ChaosProxy::launch`].
    pub at_ms: u64,
    /// Window length in milliseconds.
    pub for_ms: u64,
    /// What misbehaves during the window.
    pub fault: ChaosFault,
}

impl ScheduledFault {
    fn active_at(&self, now_ms: u64) -> bool {
        self.at_ms <= now_ms && now_ms < self.at_ms.saturating_add(self.for_ms)
    }
}

/// A replayable drill schedule: fault windows on a shared clock that
/// starts when the proxy launches. Windows may overlap; the first
/// matching entry wins at any instant.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosPlan {
    /// The scheduled fault windows.
    pub faults: Vec<ScheduledFault>,
}

impl ChaosPlan {
    /// A plan that never injects anything (the proxy degenerates to a
    /// plain TCP forwarder).
    pub fn none() -> Self {
        Self::default()
    }

    /// One blackhole window: a partition of `for_ms` starting `at_ms`
    /// after launch — the canonical drill.
    pub fn partition(at_ms: u64, for_ms: u64) -> Self {
        Self {
            faults: vec![ScheduledFault {
                at_ms,
                for_ms,
                fault: ChaosFault::Blackhole,
            }],
        }
    }
}

/// Shared clock + schedule the accept loop and every pump consult.
struct Shared {
    plan: ChaosPlan,
    start: Instant,
    stop: AtomicBool,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn active(&self) -> Option<&ScheduledFault> {
        let now = self.now_ms();
        self.plan.faults.iter().find(|f| f.active_at(now))
    }

    fn blackhole_active(&self) -> bool {
        matches!(self.active().map(|f| &f.fault), Some(ChaosFault::Blackhole))
    }

    /// Parks the calling pump until no blackhole window is active (or
    /// the proxy is shutting down).
    fn wait_out_blackhole(&self) {
        while self.blackhole_active() && !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// A running chaos proxy fronting one upstream address. Dropping it
/// stops the accept loop and tears down every proxied connection.
pub struct ChaosProxy {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts proxying it to
    /// `upstream` under `plan`. Fault-window starts are announced on
    /// `telemetry` (`chaos.<kind>` counters + `ChaosInjected` events)
    /// even if no traffic crosses during the window.
    pub fn launch(
        upstream: impl Into<String>,
        plan: ChaosPlan,
        telemetry: TelemetryHandle,
    ) -> std::io::Result<Self> {
        let upstream = upstream.into();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let shared = Arc::new(Shared {
            plan,
            start: Instant::now(),
            stop: AtomicBool::new(false),
        });
        // Announcer: telemetry at each window start, traffic or not.
        {
            let shared = Arc::clone(&shared);
            let mut windows: Vec<(u64, &'static str)> = shared
                .plan
                .faults
                .iter()
                .map(|f| (f.at_ms, f.fault.tag()))
                .collect();
            windows.sort_unstable();
            std::thread::spawn(move || {
                for (at_ms, tag) in windows {
                    loop {
                        if shared.stop.load(Ordering::Relaxed) {
                            return;
                        }
                        if shared.now_ms() >= at_ms {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    telemetry.counter_add(&format!("chaos.{tag}"), 1);
                    telemetry.emit_now_with(|| Event::ChaosInjected { kind: tag.into() });
                }
            });
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            accept_loop(listener, &upstream, &accept_shared);
        });
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — point the driver here instead of at
    /// the worker.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, upstream: &str, shared: &Arc<Shared>) {
    let mut pumps = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((down, _)) => {
                if shared.blackhole_active() {
                    // Partition: the connection "reaches" the proxy and
                    // dies at once, so a redialing driver gets a fast
                    // typed failure instead of a hang, and retries past
                    // the window.
                    drop(down);
                    continue;
                }
                let Ok(up) = TcpStream::connect_timeout(
                    &match upstream.parse() {
                        Ok(sock) => sock,
                        Err(_) => break,
                    },
                    Duration::from_secs(2),
                ) else {
                    drop(down);
                    continue;
                };
                down.set_nodelay(true).ok();
                up.set_nodelay(true).ok();
                // Short read timeouts so pumps notice `stop` promptly.
                down.set_read_timeout(Some(Duration::from_millis(50))).ok();
                up.set_read_timeout(Some(Duration::from_millis(50))).ok();
                let (Ok(down2), Ok(up2)) = (down.try_clone(), up.try_clone()) else {
                    continue;
                };
                let s1 = Arc::clone(shared);
                let s2 = Arc::clone(shared);
                pumps.push(std::thread::spawn(move || {
                    pump(down, up, Direction::DriverToWorker, &s1)
                }));
                pumps.push(std::thread::spawn(move || {
                    pump(up2, down2, Direction::WorkerToDriver, &s2)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for h in pumps {
        let _ = h.join();
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    DriverToWorker,
    WorkerToDriver,
}

/// Moves bytes `src` → `dst` one chunk at a time, consulting the drill
/// schedule before each delivery. Exits (shutting both sockets) on
/// close, reset injection, or proxy stop — but a close observed during
/// a blackhole window is *held* until the window ends, because a real
/// partition hides hangups too.
fn pump(mut src: TcpStream, mut dst: TcpStream, dir: Direction, shared: &Arc<Shared>) {
    let mut buf = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                shared.wait_out_blackhole();
                break;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                shared.wait_out_blackhole();
                break;
            }
        };
        match shared.active().map(|f| f.fault.clone()) {
            Some(ChaosFault::Latency { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            Some(ChaosFault::Throttle { bytes_per_sec }) => {
                let secs = n as f64 / bytes_per_sec.max(1) as f64;
                std::thread::sleep(Duration::from_secs_f64(secs.min(5.0)));
            }
            Some(ChaosFault::Blackhole) => shared.wait_out_blackhole(),
            Some(ChaosFault::Reset) => break,
            Some(ChaosFault::HalfOpen) if dir == Direction::WorkerToDriver => {
                // Stall this direction until the window closes; the
                // driver→worker side keeps flowing.
                while !shared.stop.load(Ordering::Relaxed)
                    && matches!(
                        shared.active().map(|f| &f.fault),
                        Some(ChaosFault::HalfOpen)
                    )
                {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Some(ChaosFault::HalfOpen) => {}
            None => {}
        }
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if dst.write_all(&buf[..n]).is_err() {
            shared.wait_out_blackhole();
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// An upstream echo server good for one connection at a time.
    fn echo_server() -> (String, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let t_stop = Arc::clone(&stop);
        listener.set_nonblocking(true).unwrap();
        std::thread::spawn(move || loop {
            if t_stop.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((mut s, _)) => {
                    s.set_read_timeout(Some(Duration::from_millis(50))).ok();
                    let mut buf = [0u8; 1024];
                    loop {
                        match s.read(&mut buf) {
                            Ok(0) => break,
                            Ok(n) => {
                                if s.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                            {
                                if t_stop.load(Ordering::Relaxed) {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        });
        (addr, stop)
    }

    #[test]
    fn plain_plan_forwards_transparently() {
        let (upstream, stop) = echo_server();
        let proxy =
            ChaosProxy::launch(upstream, ChaosPlan::none(), TelemetryHandle::disabled()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ping").unwrap();
        let mut back = [0u8; 4];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");
        stop.store(true, Ordering::Relaxed);
    }

    #[test]
    fn blackhole_window_stalls_and_heals() {
        let (upstream, stop) = echo_server();
        let plan = ChaosPlan::partition(0, 300);
        let proxy = ChaosProxy::launch(upstream, plan, TelemetryHandle::disabled()).unwrap();
        // New connections die instantly during the window.
        let t0 = Instant::now();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let mut back = [0u8; 4];
        assert!(
            c.read_exact(&mut back).is_err(),
            "mid-partition connections are dropped"
        );
        assert!(t0.elapsed() < Duration::from_millis(250), "fail fast");
        // After the window the proxy is transparent again.
        std::thread::sleep(Duration::from_millis(350));
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"pong").unwrap();
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"pong");
        stop.store(true, Ordering::Relaxed);
    }

    #[test]
    fn reset_window_tears_established_connections() {
        let (upstream, stop) = echo_server();
        let plan = ChaosPlan {
            faults: vec![ScheduledFault {
                at_ms: 100,
                for_ms: 200,
                fault: ChaosFault::Reset,
            }],
        };
        let proxy = ChaosProxy::launch(upstream, plan, TelemetryHandle::disabled()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"before").unwrap();
        let mut back = [0u8; 6];
        c.read_exact(&mut back).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        // The next chunk through the proxy hits the reset window.
        let _ = c.write_all(b"during");
        let dead = c.read_exact(&mut back).is_err();
        assert!(dead, "reset must kill the established connection");
        stop.store(true, Ordering::Relaxed);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = ChaosPlan {
            faults: vec![
                ScheduledFault {
                    at_ms: 100,
                    for_ms: 50,
                    fault: ChaosFault::Latency { ms: 20 },
                },
                ScheduledFault {
                    at_ms: 200,
                    for_ms: 400,
                    fault: ChaosFault::Blackhole,
                },
                ScheduledFault {
                    at_ms: 700,
                    for_ms: 100,
                    fault: ChaosFault::Throttle { bytes_per_sec: 512 },
                },
                ScheduledFault {
                    at_ms: 900,
                    for_ms: 100,
                    fault: ChaosFault::HalfOpen,
                },
                ScheduledFault {
                    at_ms: 1100,
                    for_ms: 10,
                    fault: ChaosFault::Reset,
                },
            ],
        };
        let s = serde_json::to_string(&plan).unwrap();
        let back: ChaosPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn window_starts_are_announced_once() {
        use hypertune_telemetry::Telemetry;
        let (upstream, stop) = echo_server();
        let handle = Telemetry::new().build();
        let plan = ChaosPlan {
            faults: vec![ScheduledFault {
                at_ms: 0,
                for_ms: 50,
                fault: ChaosFault::Latency { ms: 1 },
            }],
        };
        let proxy = ChaosProxy::launch(upstream, plan, handle.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(120));
        drop(proxy);
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.counter("chaos.latency"), Some(1));
        stop.store(true, Ordering::Relaxed);
    }
}
