use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A model of worker heterogeneity: multiplies nominal job durations by a
/// random slowdown factor, reproducing the stragglers that make
/// synchronous successive halving waste resources (Figure 1 of the paper).
#[derive(Debug, Clone)]
pub struct StragglerModel {
    /// Probability that a given job lands on a straggling worker.
    prob: f64,
    /// Maximum slowdown factor for straggling jobs; the factor is drawn
    /// uniformly from `[1, max_slowdown]`.
    max_slowdown: f64,
    rng: StdRng,
}

impl StragglerModel {
    /// No stragglers: every job runs at its nominal duration.
    pub fn none() -> Self {
        Self {
            prob: 0.0,
            max_slowdown: 1.0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Stragglers with the given occurrence probability and maximum
    /// slowdown, driven by a seeded RNG for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]` or `max_slowdown < 1`.
    pub fn new(prob: f64, max_slowdown: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob must be in [0, 1]");
        assert!(max_slowdown >= 1.0, "max_slowdown must be >= 1");
        Self {
            prob,
            max_slowdown,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the effective duration for a job of nominal `duration`.
    pub fn apply(&mut self, duration: f64) -> f64 {
        if self.prob > 0.0 && self.rng.gen::<f64>() < self.prob {
            let factor = 1.0 + self.rng.gen::<f64>() * (self.max_slowdown - 1.0);
            duration * factor
        } else {
            duration
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let mut m = StragglerModel::none();
        for &d in &[0.0, 1.0, 17.5] {
            assert_eq!(m.apply(d), d);
        }
    }

    #[test]
    fn slowdowns_bounded() {
        let mut m = StragglerModel::new(1.0, 3.0, 42);
        for _ in 0..1000 {
            let d = m.apply(10.0);
            assert!((10.0..=30.0).contains(&d), "duration {d}");
        }
    }

    #[test]
    fn probability_respected_roughly() {
        let mut m = StragglerModel::new(0.25, 5.0, 7);
        let slowed = (0..4000).filter(|_| m.apply(1.0) > 1.0).count();
        // 25% ± generous tolerance.
        assert!((800..=1200).contains(&slowed), "slowed {slowed}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StragglerModel::new(0.5, 4.0, 11);
        let mut b = StragglerModel::new(0.5, 4.0, 11);
        for _ in 0..100 {
            assert_eq!(a.apply(2.0), b.apply(2.0));
        }
    }

    #[test]
    #[should_panic(expected = "prob")]
    fn invalid_probability_panics() {
        StragglerModel::new(1.5, 2.0, 0);
    }

    #[test]
    #[should_panic(expected = "max_slowdown")]
    fn invalid_slowdown_panics() {
        StragglerModel::new(0.5, 0.5, 0);
    }
}
