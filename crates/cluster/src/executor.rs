//! A real threaded executor with the same submit/complete contract as the
//! simulator.
//!
//! [`ThreadPool`] runs an evaluation function on `n` OS threads fed by a
//! crossbeam channel. Tuning methods drive it exactly like
//! [`crate::SimCluster`] — submit up to `n` jobs, then pull completions —
//! so the schedulers in `hypertune-core` are substrate-agnostic. Used by
//! the runnable examples to demonstrate genuinely parallel tuning.
//!
//! Fault injection mirrors the simulator: a [`FaultModel`] attached with
//! [`ThreadPool::with_faults`] is drawn from on the *driver* thread at
//! submission (so the fault sequence is deterministic in submission order,
//! independent of thread scheduling), and the verdict travels with the job
//! to surface in [`PoolResult::status`]. Failed jobs carry no output.
//! Since OS threads cannot be safely preempted, a
//! [`Hang`](crate::fault::Fault::Hang) here behaves as a crash: the job is
//! abandoned rather than stretched.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use hypertune_telemetry::{Event, TelemetryHandle};

use crate::fault::{Fault, FaultModel};
use crate::sim::{fault_kind, ClusterError, JobStatus};

/// A completed job from the pool.
#[derive(Debug)]
pub struct PoolResult<J, O> {
    /// The submitted payload.
    pub job: J,
    /// The evaluation function's output. `None` when the job failed
    /// before producing one (crash, error, hang); `Some` for successes
    /// and for corrupt results (present but flagged unusable via
    /// [`PoolResult::status`]).
    pub output: Option<O>,
    /// How the job ended; anything but `Succeeded` is a failure.
    pub status: JobStatus,
    /// Index of the worker thread that ran the job.
    pub worker: usize,
}

impl<J, O> PoolResult<J, O> {
    /// `true` when the job produced a usable result.
    pub fn is_ok(&self) -> bool {
        !self.status.is_failure()
    }
}

enum Message<J> {
    Run(J, JobStatus),
    Shutdown,
}

/// A fixed pool of worker threads evaluating jobs with a shared function.
pub struct ThreadPool<J, O> {
    job_tx: Sender<Message<J>>,
    result_rx: Receiver<PoolResult<J, O>>,
    handles: Vec<JoinHandle<()>>,
    n_workers: usize,
    in_flight: usize,
    faults: FaultModel,
    telemetry: TelemetryHandle,
}

impl<J, O> ThreadPool<J, O>
where
    J: Send + Clone + 'static,
    O: Send + 'static,
{
    /// Spawns `n_workers` threads running `eval` on submitted jobs.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0`.
    pub fn new<F>(n_workers: usize, eval: F) -> Self
    where
        F: Fn(&J) -> O + Send + Sync + 'static,
    {
        assert!(n_workers > 0, "pool needs at least one worker");
        let (job_tx, job_rx) = unbounded::<Message<J>>();
        let (result_tx, result_rx) = unbounded::<PoolResult<J, O>>();
        let eval = Arc::new(eval);
        let handles = (0..n_workers)
            .map(|worker| {
                let job_rx: Receiver<Message<J>> = job_rx.clone();
                let result_tx = result_tx.clone();
                let eval = Arc::clone(&eval);
                std::thread::spawn(move || {
                    while let Ok(Message::Run(job, status)) = job_rx.recv() {
                        // Doomed jobs are abandoned without evaluating:
                        // the real work died with the (simulated) worker.
                        // Corrupt jobs evaluate — the output exists, it
                        // just must be discarded by the driver.
                        let output = match status {
                            JobStatus::Succeeded | JobStatus::Corrupt => Some(eval(&job)),
                            _ => None,
                        };
                        // The receiver may be gone during shutdown; that's
                        // fine, just stop.
                        if result_tx
                            .send(PoolResult {
                                job,
                                output,
                                status,
                                worker,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                })
            })
            .collect();
        Self {
            job_tx,
            result_rx,
            handles,
            n_workers,
            in_flight: 0,
            faults: FaultModel::none(),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a fault model; each subsequent submission draws one
    /// (possible) fault from it.
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry handle; drawn faults are reported as
    /// [`Event::FaultInjected`], stamped with the handle's own clock
    /// (this substrate has no virtual time). The default (disabled)
    /// handle makes this a no-op.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Number of jobs submitted but not yet returned.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Number of free workers (pool capacity minus in-flight jobs).
    pub fn idle_workers(&self) -> usize {
        self.n_workers - self.in_flight
    }

    /// Submits a job; errors when every worker is already busy, mirroring
    /// [`crate::SimCluster::submit`].
    pub fn submit(&mut self, job: J) -> Result<(), ClusterError> {
        if self.in_flight >= self.n_workers {
            return Err(ClusterError::NoIdleWorker);
        }
        let drawn = self.faults.draw();
        if let Some(fault) = &drawn {
            let kind = fault_kind(fault);
            self.telemetry
                .emit_now_with(|| Event::FaultInjected { kind });
        }
        let status = match drawn {
            None => JobStatus::Succeeded,
            Some(Fault::Crash { .. }) | Some(Fault::Hang { .. }) => JobStatus::Crashed,
            Some(Fault::Error) => JobStatus::Errored,
            Some(Fault::Corrupt) => JobStatus::Corrupt,
        };
        self.job_tx
            .send(Message::Run(job, status))
            .expect("workers outlive the pool handle");
        self.in_flight += 1;
        Ok(())
    }

    /// Blocks until the next job finishes; returns
    /// [`ClusterError::Quiescent`] when nothing is in flight (mirroring
    /// [`crate::SimCluster::next_completion`] and its loop invariant).
    pub fn next_completion(&mut self) -> Result<PoolResult<J, O>, ClusterError> {
        if self.in_flight == 0 {
            return Err(ClusterError::Quiescent);
        }
        let r = self
            .result_rx
            .recv()
            .expect("workers outlive the pool handle");
        self.in_flight -= 1;
        Ok(r)
    }
}

impl<J, O> Drop for ThreadPool<J, O> {
    fn drop(&mut self) {
        for _ in 0..self.handles.len() {
            // Ignore send failures: workers may already have exited.
            let _ = self.job_tx.send(Message::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn evaluates_jobs_in_parallel() {
        let mut pool = ThreadPool::new(4, |j: &u64| j * 2);
        for j in 0..4u64 {
            pool.submit(j).unwrap();
        }
        let mut outs = Vec::new();
        while let Ok(r) = pool.next_completion() {
            assert!(r.is_ok());
            assert_eq!(r.output, Some(r.job * 2));
            outs.push(r.output.unwrap());
        }
        outs.sort_unstable();
        assert_eq!(outs, vec![0, 2, 4, 6]);
    }

    #[test]
    fn rejects_oversubscription() {
        let mut pool = ThreadPool::new(2, |_: &u8| {
            std::thread::sleep(std::time::Duration::from_millis(20))
        });
        pool.submit(1).unwrap();
        pool.submit(2).unwrap();
        assert_eq!(pool.submit(3), Err(ClusterError::NoIdleWorker));
        pool.next_completion().unwrap();
        assert!(pool.submit(3).is_ok());
        while pool.next_completion().is_ok() {}
    }

    #[test]
    fn next_completion_quiescent_when_idle() {
        let mut pool: ThreadPool<u8, u8> = ThreadPool::new(1, |j| *j);
        assert_eq!(pool.next_completion().unwrap_err(), ClusterError::Quiescent);
    }

    #[test]
    fn all_workers_used_under_load() {
        static SEEN: AtomicUsize = AtomicUsize::new(0);
        let mut pool = ThreadPool::new(3, |_: &usize| {
            SEEN.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        let mut done = 0;
        let mut submitted = 0;
        while done < 30 {
            while submitted < 30 && pool.submit(submitted).is_ok() {
                submitted += 1;
            }
            if pool.next_completion().is_ok() {
                done += 1;
            }
        }
        assert_eq!(SEEN.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let pool = ThreadPool::new(2, |j: &u8| *j);
        drop(pool); // must not hang or panic
    }

    #[test]
    fn pipeline_keeps_workers_busy() {
        // A submit-on-complete loop should process many jobs with a small
        // pool without deadlocking.
        let mut pool = ThreadPool::new(2, |j: &u32| j + 1);
        pool.submit(0).unwrap();
        pool.submit(1).unwrap();
        let mut completed = 0;
        let mut next_job = 2;
        while completed < 50 {
            let r = pool.next_completion().unwrap();
            assert_eq!(r.output, Some(r.job + 1));
            completed += 1;
            if next_job < 50 {
                pool.submit(next_job).unwrap();
                next_job += 1;
            }
        }
    }

    #[test]
    fn crashed_jobs_report_failure_without_output() {
        let mut pool = ThreadPool::new(2, |j: &u8| *j)
            .with_faults(FaultModel::new(FaultSpec::crashes(1.0), 5));
        pool.submit(7).unwrap();
        let r = pool.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Crashed);
        assert_eq!(r.output, None);
        assert!(!r.is_ok());
        // The slot is free again for a retry.
        assert_eq!(pool.idle_workers(), 2);
    }

    #[test]
    fn corrupt_jobs_carry_flagged_output() {
        let mut pool = ThreadPool::new(1, |j: &u8| *j)
            .with_faults(FaultModel::new(FaultSpec::corrupt(1.0), 5));
        pool.submit(9).unwrap();
        let r = pool.next_completion().unwrap();
        assert_eq!(r.status, JobStatus::Corrupt);
        assert_eq!(r.output, Some(9));
        assert!(!r.is_ok());
    }

    #[test]
    fn fault_sequence_deterministic_in_submission_order() {
        let spec = FaultSpec::crashes(0.5);
        let run = |seed: u64| {
            let mut pool =
                ThreadPool::new(1, |j: &u32| *j).with_faults(FaultModel::new(spec, seed));
            let mut statuses = Vec::new();
            for j in 0..40 {
                pool.submit(j).unwrap();
                statuses.push(pool.next_completion().unwrap().status);
            }
            statuses
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should diverge");
    }
}
